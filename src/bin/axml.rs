//! `axml` — a command-line front end to the lazy AXML query engine.
//!
//! ```text
//! axml query --doc doc.xml --query '/hotels/hotel/name' \
//!            [--world world.xml] [--schema schema.txt] \
//!            [--strategy nfq|lpq|topdown|naive] [--typing none|lenient|exact] \
//!            [--push] [--fguide] [--no-parallel] [--speculate] [--stats] \
//!            [--no-interning] [--no-index] \
//!            [--retries N] [--timeout-ms X] [--fault-seed N] [--fail-prob P] \
//!            [--latency-ms X] \
//!            [--deadline-ms X] [--hedge-threshold-ms X] [--hedge-quantile F] \
//!            [--shed-inflight N] [--shed-ewma-ms X] \
//!            [--cache] [--cache-ttl-ms X] [--cache-capacity N] [--cache-bytes N] \
//!            [--trace-json PATH] [--trace-summary] \
//!            [--out results|doc]
//! axml session --doc doc.xml --world world.xml \
//!              --query Q1 [--query Q2 ...] [--idle-ms X] [--persist] \
//!              [--sessions N] [--workers N] [--sched-seed N] \
//!              [--latency-ms X] \
//!              [--deadline-ms X] [--hedge-threshold-ms X] [--hedge-quantile F] \
//!              [--shed-inflight N] [--shed-ewma-ms X] \
//!              [--cache-ttl-ms X] [--cache-capacity N] [--cache-bytes N] \
//!              [--cache-shards N] \
//!              [--durable DIR] [--checkpoint-every N] [--fsync always|never|every:N] \
//!              [--quiet] [--stats] [--trace] [--trace-json PATH] [--trace-summary]
//! axml subscribe --doc doc.xml --world world.xml \
//!                --query Q1 [--query Q2 ...] [--horizon-ms X] \
//!                [--watch-ms X] [--max-refires N] [--refresh-depth N] \
//!                [--history N] [--latency-ms X] \
//!                [--cache-ttl-ms X] [--cache-capacity N] [--cache-bytes N] \
//!                [--deltas-json PATH] [--quiet] [--stats] \
//!                [--trace-json PATH] [--trace-summary]
//! axml recover DIR                               # replay WALs, report per-doc
//! axml validate --doc doc.xml --schema schema.txt
//! axml termination --doc doc.xml --schema schema.txt
//! axml materialize --doc doc.xml --world world.xml [--max-calls N]
//! axml explain --query '/a//b[c="v"]'           # LPQs, NFQs, layers
//! ```
//!
//! Documents use the `<axml:call service="…">` convention, schemas the
//! DTD-like syntax of Figure 2, and world files the declarative service
//! format of `axml-services::worldfile`.

use activexml::core::{
    build_lpqs, build_nfqs, compute_layers, plural, Engine, EngineConfig, HedgeConfig, ShedConfig,
    Speculation, Strategy, Typing,
};
use activexml::obs::{aggregate, to_jsonl, RingSink};
use activexml::query::{construct_results, parse_query, render, EvalOptions, Pattern};
use activexml::schema::{parse_schema, Schema};
use activexml::services::{load_registry, FaultProfile, Registry};
use activexml::store::{
    CacheConfig, CallCache, DocumentStore, DurabilityOptions, FsDir, FsyncPolicy, LogDir,
    PlanCacheConfig, RecoveryReport, SessionOptions,
};
use activexml::xml::{parse, to_xml_with, Document, SerializeOptions};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("axml: {msg}");
            ExitCode::FAILURE
        }
    }
}

struct Opts {
    flags: Vec<String>,
    values: HashMap<String, Vec<String>>,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Opts, String> {
        let mut flags = Vec::new();
        let mut values: HashMap<String, Vec<String>> = HashMap::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            let Some(name) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument {a:?}"));
            };
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    values
                        .entry(name.to_string())
                        .or_default()
                        .push(it.next().unwrap().clone());
                }
                _ => flags.push(name.to_string()),
            }
        }
        Ok(Opts { flags, values })
    }

    /// The last occurrence of a single-valued option.
    fn value(&self, name: &str) -> Option<&str> {
        self.values
            .get(name)
            .and_then(|v| v.last())
            .map(String::as_str)
    }

    /// Every occurrence of a repeatable option, in order.
    fn values_of(&self, name: &str) -> &[String] {
        self.values.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.value(name)
            .ok_or_else(|| format!("missing required option --{name}"))
    }

    fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    let Some((cmd, rest)) = args.split_first() else {
        print_usage();
        return Ok(());
    };
    if cmd == "recover" {
        // `recover` takes its store directory as a positional argument.
        return cmd_recover(rest);
    }
    let opts = Opts::parse(rest)?;
    match cmd.as_str() {
        "query" => cmd_query(&opts),
        "session" => cmd_session(&opts),
        "subscribe" => cmd_subscribe(&opts),
        "relevant" => cmd_relevant(&opts),
        "validate" => cmd_validate(&opts),
        "termination" => cmd_termination(&opts),
        "materialize" => cmd_materialize(&opts),
        "explain" => cmd_explain(&opts),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; try `axml help`")),
    }
}

fn print_usage() {
    println!(
        "axml — lazy query evaluation for Active XML (SIGMOD 2004)\n\n\
         commands:\n\
         \x20 query        evaluate a tree-pattern query lazily\n\
         \x20 session      evaluate a stream of queries with a shared call cache\n\
         \x20 subscribe    register standing queries and stream answer deltas\n\
         \x20 relevant     list the calls relevant for a query (Prop. 1)\n\
         \x20 validate     check a document against a schema\n\
         \x20 termination  static termination analysis of a document's calls\n\
         \x20 materialize  invoke every call to a fixpoint\n\
         \x20 explain      print the LPQs, NFQs and layers of a query\n\
         \x20 recover      replay a durable store's write-ahead logs and report\n\n\
         run `axml <command>` without options to see what it needs."
    );
}

fn load_doc(opts: &Opts) -> Result<Document, String> {
    let path = opts.require("doc")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn load_schema(opts: &Opts) -> Result<Option<Schema>, String> {
    match opts.value("schema") {
        None => Ok(None),
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            parse_schema(&text)
                .map(Some)
                .map_err(|e| format!("{path}: {e}"))
        }
    }
}

fn load_world(opts: &Opts) -> Result<Registry, String> {
    match opts.value("world") {
        None => Ok(Registry::new()),
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
            load_registry(&doc).map_err(|e| format!("{path}: {e}"))
        }
    }
}

/// Applies the retry-policy and fault-injection options to a registry.
///
/// `--retries` and `--timeout-ms` tune the retry policy; `--fault-seed N`
/// (default: the `AXML_FAULT_SEED` environment variable, used by CI to
/// run everything under injected faults) enables a deterministic chaos
/// profile on every service, with failure probability `--fail-prob`
/// (default 0.3). Seed 0 — or no seed — keeps invocations fault-free.
/// `--latency-ms X` gives every service a simulated per-call network
/// latency (world-file services default to zero cost) — without it,
/// `--deadline-ms`, `--hedge-threshold-ms` and `--shed-ewma-ms` have
/// nothing to measure.
fn apply_fault_opts(registry: &mut Registry, opts: &Opts) -> Result<(), String> {
    if let Some(v) = opts.value("latency-ms") {
        let ms: f64 = v
            .parse()
            .map_err(|_| format!("--latency-ms expects milliseconds, got {v:?}"))?;
        registry.set_default_profile(activexml::services::NetProfile::latency(ms));
    }
    let mut policy = registry.retry_policy();
    if let Some(v) = opts.value("retries") {
        policy.max_retries = v
            .parse()
            .map_err(|_| format!("--retries expects a number, got {v:?}"))?;
    }
    if let Some(v) = opts.value("timeout-ms") {
        policy.timeout_ms = v
            .parse()
            .map_err(|_| format!("--timeout-ms expects milliseconds, got {v:?}"))?;
    }
    registry.set_retry_policy(policy);
    let seed: u64 = match opts.value("fault-seed") {
        Some(v) => v
            .parse()
            .map_err(|_| format!("--fault-seed expects a number, got {v:?}"))?,
        None => std::env::var("AXML_FAULT_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
    };
    if seed != 0 {
        let fail_prob: f64 = match opts.value("fail-prob") {
            Some(v) => v
                .parse()
                .map_err(|_| format!("--fail-prob expects a probability, got {v:?}"))?,
            None => 0.3,
        };
        registry.set_default_fault_profile(FaultProfile::chaos(seed, fail_prob));
    }
    Ok(())
}

fn load_query(opts: &Opts) -> Result<Pattern, String> {
    let src = opts.require("query")?;
    parse_query(src).map_err(|e| e.to_string())
}

/// Builds the cross-query call-cache configuration from `--cache-ttl-ms`
/// (validity window, default: never expires), `--cache-capacity`
/// (max entries) and `--cache-bytes` (max serialized result bytes).
fn cache_config(opts: &Opts) -> Result<CacheConfig, String> {
    let mut config = CacheConfig::default();
    if let Some(v) = opts.value("cache-ttl-ms") {
        config.default_ttl_ms = v
            .parse()
            .map_err(|_| format!("--cache-ttl-ms expects milliseconds, got {v:?}"))?;
    }
    if let Some(v) = opts.value("cache-capacity") {
        config.max_entries = v
            .parse()
            .map_err(|_| format!("--cache-capacity expects a number, got {v:?}"))?;
    }
    if let Some(v) = opts.value("cache-bytes") {
        config.max_bytes = v
            .parse()
            .map_err(|_| format!("--cache-bytes expects a number, got {v:?}"))?;
    }
    if let Some(v) = opts.value("cache-shards") {
        let shards: usize = v
            .parse()
            .map_err(|_| format!("--cache-shards expects a number, got {v:?}"))?;
        config = config.with_shards(shards);
    }
    Ok(config)
}

/// Whether sessions consult the store's shared compiled-plan cache:
/// `--plan-cache on|off` (default on). Bare `--plan-cache` and
/// `--no-plan-cache` are accepted too. Purely a performance knob —
/// answers, traces and stats are byte-identical either way.
fn wants_plan_cache(opts: &Opts) -> Result<bool, String> {
    if opts.flag("no-plan-cache") {
        return Ok(false);
    }
    match opts.value("plan-cache") {
        None | Some("on") => Ok(true),
        Some("off") => Ok(false),
        Some(other) => Err(format!("--plan-cache expects on|off, got {other:?}")),
    }
}

/// Builds the compiled-plan cache configuration from
/// `--plan-cache-capacity` (max cached plans before LRU eviction).
fn plan_config(opts: &Opts) -> Result<PlanCacheConfig, String> {
    let mut config = PlanCacheConfig::default();
    if let Some(v) = opts.value("plan-cache-capacity") {
        config.capacity = v
            .parse()
            .map_err(|_| format!("--plan-cache-capacity expects a number, got {v:?}"))?;
    }
    Ok(config)
}

/// Builds the durability configuration from `--checkpoint-every N`
/// (publications between full-document checkpoints, 0 = never; default 8)
/// and `--fsync always|never|every:N` (when appended WAL frames are
/// acknowledged to disk; default `always`).
fn durability_options(opts: &Opts) -> Result<DurabilityOptions, String> {
    let mut options = DurabilityOptions::default();
    if let Some(v) = opts.value("checkpoint-every") {
        options.checkpoint_every = v
            .parse()
            .map_err(|_| format!("--checkpoint-every expects a count, got {v:?}"))?;
    }
    if let Some(v) = opts.value("fsync") {
        options.fsync = FsyncPolicy::parse(v)?;
    }
    Ok(options)
}

/// Opens (or creates) the durable store behind `--durable DIR`.
///
/// A missing directory starts a fresh durable store. An existing
/// directory with write-ahead logs is *recovered first* — replay stops at
/// the first invalid frame, and an unrecoverable log (no intact
/// checkpoint prefix) is a hard error with the offending file and offset,
/// never a silently empty store.
fn open_durable_store(opts: &Opts, dir: &str) -> Result<DocumentStore, String> {
    let options = durability_options(opts)?;
    let cache = cache_config(opts)?;
    let plans = plan_config(opts)?;
    let path = std::path::Path::new(dir);
    let fs = if path.exists() {
        FsDir::open(path).map_err(|e| e.to_string())?
    } else {
        FsDir::create(path).map_err(|e| e.to_string())?
    };
    if fs.list().map_err(|e| e.to_string())?.is_empty() {
        return Ok(DocumentStore::durable_with_configs(
            Box::new(fs),
            options,
            cache,
            plans,
        ));
    }
    let (store, report) = DocumentStore::recover_with_configs(Box::new(fs), options, cache, plans)
        .map_err(|e| e.to_string())?;
    if let Some(err) = report.first_error() {
        return Err(err.to_string());
    }
    print_recovery_summary(&report);
    Ok(store)
}

fn print_recovery_summary(report: &RecoveryReport) {
    for d in &report.docs {
        if let Some(err) = &d.error {
            println!("-- {}: UNRECOVERABLE ({err})", d.name);
            continue;
        }
        println!(
            "-- recovered {}: v{} ({} frames, checkpoint v{}, {} splice(s) replayed{}{})",
            d.name,
            d.recovered_version,
            d.frames,
            d.checkpoint_version,
            d.splices_replayed,
            if d.watermarks.is_empty() {
                String::new()
            } else {
                format!(", {} watermark(s)", d.watermarks.len())
            },
            match (&d.truncated_at, &d.truncate_reason) {
                (Some(off), Some(reason)) => format!("; tail truncated at offset {off}: {reason}"),
                _ => String::new(),
            }
        );
    }
    println!(
        "== recovery: {} document(s), {} splice(s) replayed{}",
        report.docs.len(),
        report.splices_replayed(),
        if report.any_truncated() {
            ", torn tail discarded"
        } else {
            ", log intact"
        }
    );
}

/// `axml recover DIR` — replay the write-ahead logs of a durable store
/// directory and report what survives, without serving anything. A torn
/// tail (crash mid-append) is normal: recovery truncates it and exits 0.
/// A missing directory, an empty one, or a log with no intact checkpoint
/// prefix is an error: one-line diagnostic, nonzero exit.
fn cmd_recover(args: &[String]) -> Result<(), String> {
    let mut dir: Option<&str> = None;
    let mut rest: Vec<String> = Vec::new();
    for a in args {
        if !a.starts_with("--") && dir.is_none() {
            dir = Some(a);
        } else {
            rest.push(a.clone());
        }
    }
    let Some(dir) = dir else {
        return Err("usage: axml recover DIR [--checkpoint-every N] [--fsync MODE]".into());
    };
    let opts = Opts::parse(&rest)?;
    let path = std::path::Path::new(dir);
    if !path.is_dir() {
        return Err(format!("store directory {dir:?} does not exist"));
    }
    let fs = FsDir::open(path).map_err(|e| e.to_string())?;
    if fs.list().map_err(|e| e.to_string())?.is_empty() {
        return Err(format!("no write-ahead logs in {dir:?}"));
    }
    let (_store, report) = DocumentStore::recover(Box::new(fs), durability_options(&opts)?)
        .map_err(|e| e.to_string())?;
    print_recovery_summary(&report);
    if let Some(err) = report.first_error() {
        return Err(err.to_string());
    }
    Ok(())
}

/// Whether any cache option was given (`--cache` alone enables the
/// defaults; any `--cache-*` value implies `--cache`).
fn wants_cache(opts: &Opts) -> bool {
    opts.flag("cache")
        || opts.value("cache-ttl-ms").is_some()
        || opts.value("cache-capacity").is_some()
        || opts.value("cache-bytes").is_some()
}

fn engine_config(opts: &Opts) -> Result<EngineConfig, String> {
    let strategy = match opts.value("strategy").unwrap_or("nfq") {
        "nfq" => Strategy::Nfq,
        "lpq" => Strategy::Lpq,
        "topdown" => Strategy::TopDown,
        "naive" => Strategy::Naive,
        other => return Err(format!("unknown strategy {other:?}")),
    };
    let typing = match opts.value("typing").unwrap_or("exact") {
        "none" => Typing::None,
        "lenient" => Typing::Lenient,
        "exact" => Typing::Exact,
        other => return Err(format!("unknown typing {other:?}")),
    };
    let max_invocations = match opts.value("max-calls") {
        None => 100_000,
        Some(v) => v
            .parse()
            .map_err(|_| format!("--max-calls expects a number, got {v:?}"))?,
    };
    let deadline_ms = match opts.value("deadline-ms") {
        None => f64::INFINITY,
        Some(v) => v
            .parse()
            .map_err(|_| format!("--deadline-ms expects milliseconds, got {v:?}"))?,
    };
    let mut hedge = HedgeConfig::default();
    if let Some(v) = opts.value("hedge-threshold-ms") {
        hedge.threshold_ms = v
            .parse()
            .map_err(|_| format!("--hedge-threshold-ms expects milliseconds, got {v:?}"))?;
    }
    if let Some(v) = opts.value("hedge-quantile") {
        hedge.latency_factor = v
            .parse()
            .map_err(|_| format!("--hedge-quantile expects a factor, got {v:?}"))?;
    }
    let mut shed = ShedConfig::default();
    if let Some(v) = opts.value("shed-inflight") {
        shed.max_inflight_per_batch = v
            .parse()
            .map_err(|_| format!("--shed-inflight expects a number, got {v:?}"))?;
    }
    if let Some(v) = opts.value("shed-ewma-ms") {
        shed.ewma_limit_ms = v
            .parse()
            .map_err(|_| format!("--shed-ewma-ms expects milliseconds, got {v:?}"))?;
    }
    Ok(EngineConfig {
        strategy,
        typing,
        use_fguide: opts.flag("fguide"),
        push_queries: opts.flag("push"),
        parallel: !opts.flag("no-parallel"),
        layering: true,
        simplify_layers: true,
        relax_xpath: opts.flag("relax"),
        max_invocations,
        containment_pruning: !opts.flag("no-containment"),
        enforce_output_types: opts.flag("enforce-types"),
        incremental_detection: opts.flag("incremental"),
        trace: opts.flag("trace"),
        real_threads: opts.flag("threads"),
        speculation: if opts.flag("speculate") {
            Speculation::Always
        } else {
            Speculation::Off
        },
        deadline_ms,
        hedge,
        shed,
        eval_options: EvalOptions {
            interning: !opts.flag("no-interning"),
            index: !opts.flag("no-index"),
        },
        ..EngineConfig::default()
    })
}

/// Builds the structured-trace collector when `--trace-json` or
/// `--trace-summary` asks for one. Events are collected in memory during
/// the run and written out afterwards, so one stream serves both outputs.
fn trace_collector(opts: &Opts) -> Option<RingSink> {
    (opts.value("trace-json").is_some() || opts.flag("trace-summary")).then(RingSink::unbounded)
}

/// Writes the collected stream: `--trace-json PATH` gets the
/// deterministic JSONL encoding (byte-identical across same-seed runs);
/// `--trace-summary` prints the aggregated per-service/per-layer metrics
/// to stderr.
fn finish_trace(opts: &Opts, ring: &RingSink) -> Result<(), String> {
    let events = ring.events();
    if let Some(path) = opts.value("trace-json") {
        std::fs::write(path, to_jsonl(&events)).map_err(|e| format!("writing {path}: {e}"))?;
    }
    if opts.flag("trace-summary") {
        eprint!("{}", aggregate(&events));
    }
    Ok(())
}

fn cmd_query(opts: &Opts) -> Result<(), String> {
    let mut doc = load_doc(opts)?;
    let query = load_query(opts)?;
    let mut registry = load_world(opts)?;
    apply_fault_opts(&mut registry, opts)?;
    let schema = load_schema(opts)?;
    let config = engine_config(opts)?;
    let cache = if wants_cache(opts) {
        Some(CallCache::new(cache_config(opts)?))
    } else {
        None
    };
    let ring = trace_collector(opts);
    let mut engine = Engine::new(&registry, config);
    if let Some(s) = &schema {
        engine = engine.with_schema(s);
    }
    if let Some(c) = &cache {
        engine = engine.with_cache(c);
    }
    if let Some(r) = &ring {
        engine = engine.with_observer(r);
    }
    let report = engine.evaluate(&mut doc, &query);
    if let Some(r) = &ring {
        finish_trace(opts, r)?;
    }
    if !report.complete {
        eprintln!(
            "warning: partial answer — {} call(s) failed permanently, \
             {} refused by open breaker, {} shed by the admission gate, \
             {} unknown service(s){}",
            report.stats.failed_calls,
            report.stats.breaker_skips,
            report.stats.shed_skips,
            report.stats.skipped_unknown,
            if report.stats.deadline_exceeded {
                ", deadline exceeded"
            } else if report.stats.truncated {
                ", budget exhausted"
            } else {
                ""
            }
        );
    }
    if opts.flag("stats") {
        eprintln!("{}", report.stats);
    }
    if opts.flag("trace") {
        print_trace(&report.trace);
    }
    let pretty = SerializeOptions {
        pretty: true,
        declaration: false,
    };
    match opts.value("out").unwrap_or("results") {
        "results" => {
            let out = construct_results(&doc, &query, &report.result);
            println!("{}", to_xml_with(&out, pretty));
        }
        "doc" => println!("{}", to_xml_with(&doc, pretty)),
        other => return Err(format!("--out expects results|doc, got {other:?}")),
    }
    Ok(())
}

fn print_trace(trace: &[activexml::core::TraceEvent]) {
    for e in trace {
        eprintln!(
            "round {:>3}  {:<20} at /{}{}{}{}{}  ({:.1} ms, {} attempt{})",
            e.round,
            e.service,
            e.path,
            if e.cached { "  [CACHED]" } else { "" },
            if e.hedged { "  [HEDGED]" } else { "" },
            if e.pushed { "  [pushed]" } else { "" },
            if e.ok { "" } else { "  [FAILED]" },
            e.cost_ms,
            e.attempts,
            plural(e.attempts, "s")
        );
    }
}

/// A stream of queries against one document through the store's session
/// machinery (reconstructed §7): the call cache and the simulated clock
/// persist across queries, so repeated work is served at zero network
/// cost. `--idle-ms X` inserts simulated idle time between consecutive
/// queries (aging cached entries toward their `--cache-ttl-ms` horizon);
/// `--persist` materializes results into the stored document instead of
/// evaluating each query on a snapshot.
fn cmd_session(opts: &Opts) -> Result<(), String> {
    let doc = load_doc(opts)?;
    let sources = opts.values_of("query");
    if sources.is_empty() {
        return Err("session needs at least one --query".into());
    }
    let queries: Vec<Pattern> = sources
        .iter()
        .map(|src| parse_query(src).map_err(|e| format!("{src:?}: {e}")))
        .collect::<Result<_, _>>()?;
    let mut registry = load_world(opts)?;
    apply_fault_opts(&mut registry, opts)?;
    let schema = load_schema(opts)?;
    let options = SessionOptions {
        engine: engine_config(opts)?,
        snapshot_per_query: !opts.flag("persist"),
        plan_cache: wants_plan_cache(opts)?,
    };
    let plan_cache_on = options.plan_cache;
    let idle_ms: f64 = match opts.value("idle-ms") {
        None => 0.0,
        Some(v) => v
            .parse()
            .map_err(|_| format!("--idle-ms expects milliseconds, got {v:?}"))?,
    };

    let sessions: usize = match opts.value("sessions") {
        None => 1,
        Some(v) => v
            .parse()
            .map_err(|_| format!("--sessions expects a count, got {v:?}"))?,
    };

    let ring = trace_collector(opts);
    let mut store = match opts.value("durable") {
        None => DocumentStore::with_configs(cache_config(opts)?, plan_config(opts)?),
        Some(dir) => open_durable_store(opts, dir)?,
    };
    // A recovered store already holds the document at its pre-crash
    // version; only a fresh store takes the `--doc` file as version 0.
    if store.versioned("doc").is_none() {
        store.insert("doc", doc);
    }

    if sessions > 1 {
        return serve_sessions(opts, &store, &registry, schema.as_ref(), options, &queries);
    }

    let mut session = store
        .session("doc", &registry, schema.as_ref(), options)
        .expect("document just inserted");
    if let Some(r) = &ring {
        session = session.with_observer(r);
    }

    let mut total_invoked = 0;
    for (i, query) in queries.iter().enumerate() {
        if i > 0 && idle_ms > 0.0 {
            session.advance_clock(idle_ms);
        }
        let report = session.query(query);
        let s = &report.stats;
        total_invoked += s.calls_invoked;
        println!("-- query {}: {}", i + 1, render(query));
        println!(
            "   calls={}  cache: {} hits / {} misses / {} expired  \
             sim={:.1} ms  clock={:.1} ms{}",
            s.calls_invoked,
            s.cache_hits,
            s.cache_misses,
            s.cache_stale,
            s.sim_time_ms,
            report.clock_ms,
            if report.complete { "" } else { "  [PARTIAL]" }
        );
        if opts.flag("trace") {
            print_trace(&report.trace);
        }
        if opts.flag("stats") {
            eprintln!("{s}");
        }
        if !opts.flag("quiet") {
            for row in &report.answers {
                println!("   {}", row.join(" | "));
            }
        }
    }
    let cs = session.cache().stats();
    println!(
        "== session: {} queries, {} invocations, cache {} hits / {} misses / {} expired \
         ({:.0}% hit rate), {} entries live ({} bytes)",
        queries.len(),
        total_invoked,
        cs.hits,
        cs.misses,
        cs.stale,
        cs.hit_rate() * 100.0,
        session.cache().len(),
        session.cache().total_bytes()
    );
    if plan_cache_on {
        let ps = store.plans().stats();
        println!(
            "== plans: {} compiled, {} hits / {} misses ({:.0}% hit rate), {} live",
            ps.compiles,
            ps.hits,
            ps.misses,
            ps.hit_rate() * 100.0,
            store.plans().len()
        );
    }
    if let Some(manager) = store.durability() {
        let ds = manager.stats();
        println!(
            "== wal: {} append(s) ({} synced), {} checkpoint(s), acked v{}",
            ds.appends,
            ds.synced_appends,
            ds.checkpoints,
            manager.acked_version("doc").unwrap_or(0)
        );
        if let Some(err) = manager.failure("doc") {
            return Err(format!("write-ahead log failed during session: {err}"));
        }
    }
    if let Some(r) = &ring {
        finish_trace(opts, r)?;
    }
    Ok(())
}

/// Continuous AXML from the command line: registers every `--query` as a
/// standing subscription over the stored document and drives the
/// refresh/reconcile loop for `--horizon-ms` of simulated time. Each
/// cache-TTL lapse (`--cache-ttl-ms`, or per-service windows from the
/// world file's defaults) triggers a refresh that re-invokes exactly the
/// lapsed calls; subscribers whose scope a new version cannot affect
/// skip it without evaluation. Answer deltas stream to stdout (and to
/// `--deltas-json PATH` as JSONL). `--watch-ms` sets the idle polling
/// tick, `--max-refires` bounds total re-invocations per subscription,
/// `--refresh-depth` bounds the calls any single refresh may chase.
fn cmd_subscribe(opts: &Opts) -> Result<(), String> {
    use activexml::sub::{SubscriptionEngine, SubscriptionOptions};

    let doc = load_doc(opts)?;
    let sources = opts.values_of("query");
    if sources.is_empty() {
        return Err("subscribe needs at least one --query".into());
    }
    let queries: Vec<Pattern> = sources
        .iter()
        .map(|src| parse_query(src).map_err(|e| format!("{src:?}: {e}")))
        .collect::<Result<_, _>>()?;
    let mut registry = load_world(opts)?;
    apply_fault_opts(&mut registry, opts)?;
    let schema = load_schema(opts)?;

    let mut options = SubscriptionOptions {
        engine: engine_config(opts)?,
        ..SubscriptionOptions::default()
    };
    if let Some(v) = opts.value("watch-ms") {
        options.watch_ms = v
            .parse()
            .ok()
            .filter(|ms: &f64| *ms > 0.0)
            .ok_or_else(|| format!("--watch-ms expects positive milliseconds, got {v:?}"))?;
    }
    if let Some(v) = opts.value("max-refires") {
        options.max_refires = v
            .parse()
            .map_err(|_| format!("--max-refires expects a count, got {v:?}"))?;
    }
    if let Some(v) = opts.value("refresh-depth") {
        options.refresh_depth = v
            .parse()
            .map_err(|_| format!("--refresh-depth expects a count, got {v:?}"))?;
    }
    if let Some(v) = opts.value("history") {
        options.history_capacity = v
            .parse()
            .map_err(|_| format!("--history expects a count, got {v:?}"))?;
    }
    let horizon_ms: f64 = match opts.value("horizon-ms") {
        None => 1_000.0,
        Some(v) => v
            .parse()
            .map_err(|_| format!("--horizon-ms expects milliseconds, got {v:?}"))?,
    };

    let ring = trace_collector(opts);
    let mut store = match opts.value("durable") {
        None => DocumentStore::with_cache_config(cache_config(opts)?),
        Some(dir) => open_durable_store(opts, dir)?,
    };
    if store.versioned("doc").is_none() {
        store.insert("doc", doc);
    }
    let mut engine =
        SubscriptionEngine::over_store(&store, "doc", &registry, schema.as_ref(), options)
            .expect("document just inserted");
    if let Some(r) = &ring {
        engine = engine.with_observer(r);
    }

    for (i, query) in queries.iter().enumerate() {
        let name = format!("sub-{}", i + 1);
        let initial = engine.subscribe(name.clone(), query.clone());
        println!(
            "-- {name}: {} ({} initial rows)",
            render(query),
            initial.len()
        );
        if !opts.flag("quiet") {
            for row in &initial {
                println!("   {}", row.join(" | "));
            }
        }
    }

    let deltas = engine.run_until(horizon_ms);
    for d in &deltas {
        println!(
            "@{:.1} ms  {}  v{}{}  +{} -{} rows{}",
            d.sim_ms,
            d.subscription,
            d.version,
            if d.full_reeval { "  [full]" } else { "" },
            d.added.len(),
            d.removed.len(),
            match d.latency_ms {
                Some(l) => format!("  ({l:.1} ms after lapse)"),
                None => String::new(),
            }
        );
        if !opts.flag("quiet") {
            for row in &d.added {
                println!("   + {}", row.join(" | "));
            }
            for row in &d.removed {
                println!("   - {}", row.join(" | "));
            }
        }
    }
    if let Some(path) = opts.value("deltas-json") {
        let mut out = String::new();
        for d in &deltas {
            out.push_str(&d.to_json());
            out.push('\n');
        }
        std::fs::write(path, out).map_err(|e| format!("writing {path}: {e}"))?;
    }

    let stats = engine.stats();
    println!(
        "== subscribe: {} subscription(s), {} refresh(es), {} version(s) published, \
         {} delta(s), {} version(s) scope-skipped, {} re-invocation(s), clock {:.1} ms",
        queries.len(),
        stats.refreshes,
        stats.publications,
        stats.deltas_emitted,
        stats.versions_skipped,
        stats.refresh_invocations,
        engine.clock_ms()
    );
    if opts.flag("stats") {
        for s in engine.status() {
            eprintln!(
                "{}: watermark v{}, {} rows, {} delta(s), {} skipped, {} refire(s) left",
                s.name,
                s.watermark,
                s.rows,
                s.deltas_emitted,
                s.versions_skipped,
                match s.refires_left {
                    usize::MAX => "unbounded".to_string(),
                    n => n.to_string(),
                }
            );
        }
    }
    if let Some(r) = &ring {
        finish_trace(opts, r)?;
    }
    Ok(())
}

/// The multi-tenant path of `axml session` (`--sessions N`): N sessions,
/// each running the full query stream against the stored document, on the
/// store's scheduler — the work-stealing pool (`--workers`), or the
/// seeded deterministic interleaving (`--sched-seed`, single-threaded and
/// reproducible).
fn serve_sessions(
    opts: &Opts,
    store: &DocumentStore,
    registry: &Registry,
    schema: Option<&Schema>,
    options: SessionOptions,
    queries: &[Pattern],
) -> Result<(), String> {
    use activexml::store::{SchedulerMode, SessionSpec};

    let sessions: usize = opts
        .value("sessions")
        .expect("caller checked --sessions")
        .parse()
        .unwrap();
    let workers: usize = match opts.value("workers") {
        None => 4,
        Some(v) => v
            .parse()
            .map_err(|_| format!("--workers expects a count, got {v:?}"))?,
    };
    let mode = match opts.value("sched-seed") {
        None => SchedulerMode::Concurrent { workers },
        Some(v) => SchedulerMode::DeterministicSeeded {
            seed: v
                .parse()
                .map_err(|_| format!("--sched-seed expects a number, got {v:?}"))?,
        },
    };
    let specs: Vec<SessionSpec> = (0..sessions)
        .map(|i| {
            let mut spec = SessionSpec::new(format!("session-{i}"), "doc", queries.to_vec());
            spec.options = options.clone();
            spec
        })
        .collect();

    let report = store.serve(&specs, registry, schema, &mode, None);
    for s in &report.sessions {
        let invoked: usize = s.queries.iter().map(|q| q.calls_invoked).sum();
        let hits: usize = s.queries.iter().map(|q| q.cache_hits).sum();
        let partial = s.queries.iter().filter(|q| !q.complete).count();
        println!(
            "-- {}: {} queries, {} invocations, {} cache hits, clock {:.1} ms{}",
            s.name,
            s.queries.len(),
            invoked,
            hits,
            s.clock_ms,
            if partial == 0 {
                String::new()
            } else {
                format!("  [{partial} PARTIAL]")
            }
        );
        if !opts.flag("quiet") {
            for (i, q) in s.queries.iter().enumerate() {
                for row in &q.answers {
                    println!("   q{} {}", i + 1, row.join(" | "));
                }
            }
        }
    }
    let hist = report.latency_histogram();
    let cs = store.cache().stats();
    let sched = match &mode {
        SchedulerMode::Concurrent { workers } => format!("{workers} workers"),
        SchedulerMode::DeterministicSeeded { seed } => format!("seeded interleaving {seed}"),
    };
    println!(
        "== serve: {} sessions x {} queries on {sched}: {:.1} q/s \
         (p50 {:.2} ms, p99 {:.2} ms, wall {:.1} ms), cache {} hits / {} misses \
         across {} shard(s)",
        sessions,
        queries.len(),
        report.queries_per_sec(),
        hist.quantile(0.5),
        hist.quantile(0.99),
        report.wall_ms,
        cs.hits,
        cs.misses,
        store.cache().shard_count()
    );
    Ok(())
}

/// Contribution #1 of the paper, standalone: list the calls of the
/// document that are relevant for the query (Prop. 1 / §5 refined).
fn cmd_relevant(opts: &Opts) -> Result<(), String> {
    let doc = load_doc(opts)?;
    let query = load_query(opts)?;
    let schema = load_schema(opts)?;
    let mode = match opts.value("typing").unwrap_or("exact") {
        "lenient" => activexml::schema::SatMode::Lenient,
        _ => activexml::schema::SatMode::Exact,
    };
    let relevant = activexml::core::relevant_calls(&doc, &query, schema.as_ref(), mode);
    let total = doc.calls().len();
    println!(
        "{} of {} embedded calls are relevant for the query:",
        relevant.len(),
        total
    );
    for (node, id, service) in relevant {
        let path = doc
            .parent(node)
            .map(|p| doc.path_labels(p).join("/"))
            .unwrap_or_default();
        println!("  {id:?}  {service:<24} at /{path}");
    }
    Ok(())
}

fn cmd_validate(opts: &Opts) -> Result<(), String> {
    let doc = load_doc(opts)?;
    let schema = load_schema(opts)?.ok_or("validate needs --schema")?;
    let errors = activexml::schema::validate(&doc, &schema);
    if errors.is_empty() {
        println!(
            "valid: {} nodes, {} pending calls",
            doc.len(),
            doc.calls().len()
        );
        Ok(())
    } else {
        for e in &errors {
            eprintln!("invalid: {e}");
        }
        Err(format!("{} validation error(s)", errors.len()))
    }
}

fn cmd_termination(opts: &Opts) -> Result<(), String> {
    let doc = load_doc(opts)?;
    let schema = load_schema(opts)?.ok_or("termination needs --schema")?;
    match activexml::schema::check_document(&schema, &doc) {
        activexml::schema::Termination::Terminates { max_depth } => {
            println!("terminates: call chains are at most {max_depth} deep");
            Ok(())
        }
        activexml::schema::Termination::PossiblyDiverges { cycle } => {
            let names: Vec<&str> = cycle.iter().map(|l| l.as_str()).collect();
            Err(format!("possibly diverges: cycle {}", names.join(" -> ")))
        }
        activexml::schema::Termination::Unknown { function } => {
            Err(format!("unknown: function {function} is not declared"))
        }
    }
}

fn cmd_materialize(opts: &Opts) -> Result<(), String> {
    let mut doc = load_doc(opts)?;
    let mut registry = load_world(opts)?;
    apply_fault_opts(&mut registry, opts)?;
    let config = EngineConfig {
        max_invocations: match opts.value("max-calls") {
            None => 100_000,
            Some(v) => v.parse().map_err(|_| "--max-calls expects a number")?,
        },
        ..EngineConfig::naive()
    };
    // materialization = naive completion for the match-anything query
    let query = parse_query("/*").map_err(|e| e.to_string())?;
    let stats = Engine::new(&registry, config).complete_for(&mut doc, &query);
    eprintln!("{stats}");
    println!(
        "{}",
        to_xml_with(
            &doc,
            SerializeOptions {
                pretty: true,
                declaration: false
            }
        )
    );
    Ok(())
}

fn cmd_explain(opts: &Opts) -> Result<(), String> {
    let query = load_query(opts)?;
    println!("query: {}", render(&query));
    println!("\nLPQs (§3.1):");
    for lpq in build_lpqs(&query) {
        println!("  {}", render(&lpq.pattern));
    }
    let nfqs = build_nfqs(&query);
    println!("\nNFQs (§3.2, one per query node):");
    for nfq in &nfqs {
        println!("  lin={:<30} {}", nfq.lin.to_string(), render(&nfq.pattern));
    }
    let layers = compute_layers(&nfqs);
    println!("\ninfluence layers (§4.3, topological order):");
    for (i, (layer, independent)) in layers.layers.iter().zip(&layers.independent).enumerate() {
        let lins: Vec<String> = layer.iter().map(|&j| nfqs[j].lin.to_string()).collect();
        println!(
            "  layer {i}{}: {}",
            if *independent {
                " (✳ independent)"
            } else {
                ""
            },
            lins.join(", ")
        );
    }
    Ok(())
}
