#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # activexml — Lazy Query Evaluation for Active XML
//!
//! Facade crate re-exporting the whole workspace: the XML substrate, the
//! schema/typing substrate, tree-pattern queries, the simulated Web-service
//! layer, and the lazy query-evaluation engine that is the subject of
//! *Lazy Query Evaluation for Active XML* (Abiteboul, Benjelloun, Cautis,
//! Manolescu, Milo, Preda — SIGMOD 2004).
//!
//! See the `examples/` directory for runnable walkthroughs and `DESIGN.md`
//! for the architecture.

pub use axml_core as core;
pub use axml_gen as gen;
pub use axml_obs as obs;
pub use axml_query as query;
pub use axml_schema as schema;
pub use axml_services as services;
pub use axml_store as store;
pub use axml_sub as sub;
pub use axml_xml as xml;
