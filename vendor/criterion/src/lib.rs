//! Offline stand-in for the `criterion` crate (0.5 API subset).
//!
//! The build environment cannot reach a crates.io mirror, so the
//! workspace patches `criterion` to this vendored implementation. It runs
//! each benchmark a small, fixed number of iterations and prints mean
//! wall-clock time per iteration — enough for the `cargo bench` targets
//! to build, run, and emit comparable numbers, without criterion's
//! statistical machinery.
//!
//! Set `CRITERION_STUB_ITERS` to raise the measured iteration count when
//! more stable numbers are wanted.

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// Benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `name/parameter` identifier.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An identifier from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation for a benchmark (accepted, echoed in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Measurement driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    /// Mean nanoseconds per iteration, filled in by `iter`/`iter_with_setup`.
    mean_ns: f64,
}

impl Bencher {
    /// Time `routine`, called `self.iters` times after one warm-up.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }

    /// Time `routine` on fresh input from `setup`; setup time is excluded.
    pub fn iter_with_setup<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
    ) {
        black_box(routine(setup()));
        let mut total_ns = 0u128;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total_ns += start.elapsed().as_nanos();
        }
        self.mean_ns = total_ns as f64 / self.iters as f64;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub uses a fixed iteration
    /// count instead of criterion's sampling.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters: self.criterion.iters,
            mean_ns: 0.0,
        };
        f(&mut bencher);
        self.report(&id, bencher.mean_ns);
        self
    }

    /// Run a benchmark over a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            iters: self.criterion.iters,
            mean_ns: 0.0,
        };
        f(&mut bencher, input);
        self.report(&id, bencher.mean_ns);
        self
    }

    fn report(&self, id: &BenchmarkId, mean_ns: f64) {
        let mut line = format!("{}/{}: {:>12.0} ns/iter", self.name, id.id, mean_ns);
        if let Some(tp) = self.throughput {
            let per_sec = |n: u64| n as f64 / (mean_ns / 1e9);
            match tp {
                Throughput::Bytes(n) => {
                    line.push_str(&format!("  ({:.1} MiB/s)", per_sec(n) / (1024.0 * 1024.0)));
                }
                Throughput::Elements(n) => {
                    line.push_str(&format!("  ({:.0} elem/s)", per_sec(n)));
                }
            }
        }
        println!("{line}");
    }

    /// End the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark harness handle.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        let iters = std::env::var("CRITERION_STUB_ITERS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(5);
        Criterion { iters: iters.max(1) }
    }
}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name_owned = name.to_string();
        self.benchmark_group(name_owned).bench_function(name, f);
        self
    }
}

/// Bundle benchmark functions into a runnable group (mirrors
/// `criterion_group!`, simple form).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` for a benchmark binary (mirrors `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo passes --bench (and test harness flags); ignore them.
            $($group();)+
        }
    };
}
