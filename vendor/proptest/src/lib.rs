//! Offline stand-in for the `proptest` crate (1.x API subset).
//!
//! The build environment has no route to a crates.io mirror, so the
//! workspace patches `proptest` to this vendored implementation. It keeps
//! the same API shape — `proptest!`, `prop_oneof!`, `prop_assert*!`,
//! `Strategy`/`BoxedStrategy`, `proptest::collection::vec`,
//! `prop_recursive`, `ProptestConfig` — but generates values by seeded
//! sampling without shrinking. Failures report the case seed so a run can
//! be replayed exactly; regression files checked in by the real proptest
//! are consumed as extra deterministic seeds (each `cc <hex>` line is
//! hashed into a seed and replayed first).
//!
//! Environment knobs:
//! * `PROPTEST_CASES` — override the number of cases per property.
//! * `PROPTEST_BASE_SEED` — shift every derived case seed (used by the
//!   fault-injection CI job to explore a different schedule each run).

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Define property tests. Mirrors `proptest::proptest!`.
///
/// Supports the forms used in this workspace:
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u64..100, v in collection::vec(any::<bool>(), 0..9)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal muncher: one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let strategy = ($($strat,)+);
            $crate::test_runner::run_cases(
                &config,
                file!(),
                stringify!($name),
                &strategy,
                |($($arg,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items!(($config) $($rest)*);
    };
}

/// Choose uniformly between strategies producing the same value type.
/// Mirrors `proptest::prop_oneof!` (unweighted form).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert inside a property; failure aborts only the current case with a
/// replayable message. Mirrors `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            let message = format!($($fmt)*);
            let message = format!("{} at {}:{}", message, file!(), line!());
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(message),
            );
        }
    };
}

/// Equality assertion inside a property. Mirrors `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left, right, format!($($fmt)*)
        );
    }};
}

/// Inequality assertion inside a property. Mirrors `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Discard the current case when an assumption does not hold.
/// Mirrors `proptest::prop_assume!`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
