//! Collection strategies (subset of `proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Inclusive-lower, exclusive-upper bound on collection sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Generate vectors of values from `element` (mirrors `collection::vec`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
