//! Case execution: seeded RNG, configuration, error type, and the runner
//! invoked by the `proptest!` macro expansion.

use crate::strategy::Strategy;
use std::cell::RefCell;
use std::fmt;
use std::path::PathBuf;

/// Deterministic splitmix64 RNG driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Construct from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        };
        let _ = rng.next_u64();
        rng
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-property configuration (subset of `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Run `cases` random cases (mirrors `ProptestConfig::with_cases`).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property is violated.
    Fail(String),
    /// The generated input does not satisfy an assumption; the case is
    /// skipped rather than failed.
    Reject(String),
}

impl TestCaseError {
    /// A failed property.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected (skipped) input.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

/// Result type of a single property case.
pub type TestCaseResult = Result<(), TestCaseError>;

thread_local! {
    static CURRENT_CASE: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Prints replay info if the property body panics (rather than returning
/// a `TestCaseError`), so panicking cases are as replayable as failing
/// ones.
struct PanicReporter;

impl Drop for PanicReporter {
    fn drop(&mut self) {
        if std::thread::panicking() {
            CURRENT_CASE.with(|c| {
                if let Some(info) = c.borrow().as_ref() {
                    eprintln!("proptest: panicked during {info}");
                }
            });
        }
    }
}

fn fnv64(data: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in data.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Locate the sibling `.proptest-regressions` file for a test source path.
/// `file!()` paths are workspace-relative while tests may run with the
/// package directory as CWD, so progressively strip leading components.
fn regression_file(source: &str) -> Option<PathBuf> {
    let base = source.strip_suffix(".rs").unwrap_or(source);
    let name = format!("{base}.proptest-regressions");
    let mut candidate = PathBuf::from(&name);
    loop {
        if candidate.is_file() {
            return Some(candidate);
        }
        let mut comps = candidate.components();
        comps.next()?;
        let rest = comps.as_path();
        if rest.as_os_str().is_empty() {
            return None;
        }
        candidate = rest.to_path_buf();
    }
}

/// Extra deterministic seeds from a checked-in regression file. Each
/// `cc <token> ...` line (the real-proptest persistence format) hashes to
/// one replay seed; lines that do not parse are ignored.
fn regression_seeds(source: &str) -> Vec<u64> {
    let Some(path) = regression_file(source) else {
        return Vec::new();
    };
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let line = line.trim();
            let token = line.strip_prefix("cc ")?;
            let token = token.split_whitespace().next()?;
            Some(fnv64(token))
        })
        .collect()
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Run all cases of one property. Called from the `proptest!` expansion.
///
/// Seeds are derived deterministically from the source file, the property
/// name, and the case index, so a failure message's seed replays exactly.
/// `PROPTEST_CASES` overrides the case count; `PROPTEST_BASE_SEED` shifts
/// every seed (giving CI an independent exploration per configured value).
pub fn run_cases<S, F>(config: &ProptestConfig, source_file: &str, name: &str, strategy: &S, mut test: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> TestCaseResult,
{
    let cases = env_u64("PROPTEST_CASES")
        .map(|n| n as u32)
        .unwrap_or(config.cases);
    let base = fnv64(source_file)
        ^ fnv64(name).rotate_left(17)
        ^ env_u64("PROPTEST_BASE_SEED").unwrap_or(0);

    let replays = regression_seeds(source_file);
    let fresh = (0..cases as u64).map(|i| splitmix(base.wrapping_add(i)));
    let mut rejects = 0u32;

    for (idx, seed) in replays.into_iter().chain(fresh).enumerate() {
        CURRENT_CASE.with(|c| {
            *c.borrow_mut() = Some(format!("{name} case #{idx} (seed {seed:#018x})"));
        });
        let guard = PanicReporter;
        let mut rng = TestRng::from_seed(seed);
        let value = strategy.sample(&mut rng);
        let outcome = test(value);
        drop(guard);
        CURRENT_CASE.with(|c| *c.borrow_mut() = None);
        match outcome {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => rejects += 1,
            Err(TestCaseError::Fail(reason)) => {
                panic!(
                    "proptest: property {name} failed at case #{idx} \
                     (seed {seed:#018x}, replay with PROPTEST_BASE_SEED if shifted):\n{reason}"
                );
            }
        }
    }
    if rejects > cases / 2 {
        eprintln!("proptest: {name}: {rejects} of {cases} cases rejected by assumptions");
    }
}
