//! Value-generation strategies (sampling subset of `proptest::strategy`).

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::Arc;

/// A recipe for generating values of `Self::Value` from a seeded RNG.
///
/// Unlike real proptest there is no shrinking; a strategy is just a
/// deterministic sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keep only values for which `f` returns true (resampling a bounded
    /// number of times, then keeping the last value regardless).
    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }

    /// Build recursive values: `recurse` receives the strategy for the
    /// previous depth and returns the strategy for one level deeper. The
    /// `_desired_size`/`_expected_branch` hints are accepted for API
    /// compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut current = self.clone().boxed();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            // at each level, half the mass stays on the shallower strategy
            current = Union::new(vec![self.clone().boxed(), deeper]).boxed();
        }
        current
    }
}

/// Type-erased, cheaply cloneable strategy (mirrors `BoxedStrategy`).
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Object-safe sampling, implemented for every `Strategy`.
trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// Always yields a clone of the given value (mirrors `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Result of [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..64 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        self.inner.sample(rng)
    }
}

/// Uniform choice among same-typed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Union<T> {
    /// Build from a non-empty list of alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

/// Types with a canonical "any value" strategy (subset of `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.f64_unit()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for a type (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.f64_unit() * (self.end - self.start)
    }
}

/// Character pool for the string strategy: printable ASCII (including
/// XML-hostile punctuation) plus a couple of multi-byte code points.
const STRING_CHARS: &[char] = &[
    'a', 'b', 'c', 'x', 'y', 'z', 'A', 'Z', '0', '1', '9', ' ', '<', '>', '&', '"', '\'', '/',
    '\\', '[', ']', '(', ')', '=', ';', ':', '!', '?', '-', '_', '.', ',', '$', '*', 'é', 'λ',
    '試', '𝄞',
];

/// String literals act as regex strategies in proptest; this subset
/// ignores the pattern's structure and produces arbitrary short strings of
/// printable characters (the workspace only uses `"\\PC*"`-style patterns
/// for never-panics robustness tests, where breadth matters more than
/// regex fidelity).
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let len = rng.below(48) as usize;
        (0..len)
            .map(|_| STRING_CHARS[rng.below(STRING_CHARS.len() as u64) as usize])
            .collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident/$idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0);
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
    (A/0, B/1, C/2, D/3, E/4);
    (A/0, B/1, C/2, D/3, E/4, F/5);
}
