//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment for this workspace has no network access to a
//! crates.io mirror, so the workspace patches `rand` to this vendored
//! implementation. It provides exactly the surface the workspace uses:
//! `StdRng::seed_from_u64`, `Rng::gen_range` over integer/float ranges,
//! `Rng::gen_bool`, and `Rng::gen::<f64>()`.
//!
//! The generator is splitmix64 — statistically fine for the synthetic
//! workload generation and property tests this workspace performs, and
//! fully deterministic for a given seed. It makes no attempt to be
//! value-compatible with upstream `rand`; only API-compatible.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

/// Seedable construction (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce (stands in for the `Standard`
/// distribution of upstream rand).
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::standard_sample(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draw a value of type `T` (upstream: the `Standard` distribution).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Draw uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // one warm-up scramble so nearby seeds diverge immediately
            let mut rng = StdRng {
                state: seed ^ 0x5851_f42d_4c95_7f2d,
            };
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0..1000), b.gen_range(0..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(0..=4usize);
            assert!(w <= 4);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
