//! The function-call guide (Section 6.2): a dataguide-style summary of the
//! paths leading to service calls, used to detect relevant calls without
//! rescanning the document.
//!
//! ```text
//! cargo run --example fguide_demo --release
//! ```

use activexml::core::{build_nfqs, filter_candidates, FGuide};
use activexml::gen::scenario::{figure4_query, generate, ScenarioParams};
use std::time::Instant;

fn main() {
    let sc = generate(&ScenarioParams {
        hotels: 2000,
        ..Default::default()
    });
    let doc = sc.doc;
    println!("document: {} nodes, {} calls", doc.len(), doc.calls().len());

    let t = Instant::now();
    let guide = FGuide::build(&doc);
    println!(
        "F-guide: {} nodes ({}x more compact), built in {:.2} ms, {} extents",
        guide.len(),
        doc.len() / guide.len(),
        t.elapsed().as_secs_f64() * 1e3,
        guide.total_extent()
    );

    let query = figure4_query();
    let nfqs = build_nfqs(&query);

    // candidate detection on the document vs via the guide
    let t = Instant::now();
    let mut via_doc = 0usize;
    for nfq in &nfqs {
        via_doc += activexml::query::eval(&nfq.pattern, &doc)
            .bindings_of(nfq.output)
            .len();
    }
    let doc_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let mut via_guide = 0usize;
    for nfq in &nfqs {
        let cands: Vec<_> = guide
            .eval_linear(&doc, &nfq.lin, nfq.via)
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        via_guide += filter_candidates(nfq, &doc, &cands).len();
    }
    let guide_ms = t.elapsed().as_secs_f64() * 1e3;

    println!(
        "relevant-call detection (one NFQA round over {} NFQs):",
        nfqs.len()
    );
    println!("  full NFQ evaluation on the document: {via_doc:>6} calls in {doc_ms:>8.2} ms");
    println!("  guide lookup + residual filtering:   {via_guide:>6} calls in {guide_ms:>8.2} ms");
    assert_eq!(via_doc, via_guide, "the guide is exact");
    println!("  speedup: {:.1}x", doc_ms / guide_ms);
}
