//! Exchanging AXML documents (the closing remark of Section 1: "our
//! technique can be used to evaluate queries on exchanged AXML data").
//!
//! A *sender* completes a document for the recipient's query — invoking
//! only the calls that query needs — then ships the (still partially
//! intensional) document. The *recipient* answers the query by plain
//! snapshot evaluation, with zero service interaction.
//!
//! ```text
//! cargo run --example exchange
//! ```

use activexml::core::{Engine, EngineConfig};
use activexml::gen::scenario::{figure1, figure4_query};
use activexml::query::eval;
use activexml::xml::{parse, to_xml};

fn main() {
    let query = figure4_query();
    let s = figure1();
    let mut doc = s.doc;
    println!(
        "sender holds an AXML document: {} nodes, {} embedded calls",
        doc.len(),
        doc.calls().len()
    );

    // the sender materializes exactly what the recipient's query needs
    let engine = Engine::new(&s.registry, EngineConfig::default()).with_schema(&s.schema);
    let stats = engine.complete_for(&mut doc, &query);
    println!(
        "sender completed the document for the query: {} calls invoked, {} still pending",
        stats.calls_invoked,
        doc.calls().len()
    );

    // ship it as plain XML text (the calls travel as <axml:call> elements)
    let wire = to_xml(&doc);
    println!("shipped {} bytes", wire.len());

    // the recipient parses and evaluates — no services in sight
    let received = parse(&wire).expect("wire format is well-formed XML");
    let answers = eval(&query, &received);
    println!(
        "\nrecipient evaluates the query offline: {} answers",
        answers.len()
    );
    for tuple in activexml::query::render_result(&received, &answers) {
        println!("  {}", tuple.join(" @ "));
    }

    // the pending calls in the shipped document are exactly the ones the
    // query does not need — another peer with different interests could
    // continue the lazy evaluation from here
    let pending: Vec<String> = received
        .calls()
        .iter()
        .map(|&c| received.call_info(c).unwrap().1.to_string())
        .collect();
    println!("\nstill intensional on the wire: {pending:?}");
}
