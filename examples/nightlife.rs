//! The introduction's motivating scenario: a city night-life site with
//! movies and restaurants, both partly intensional. The query only asks
//! about movies:
//!
//! ```text
//! /goingout/movies//show[title="The Hours"]/schedule
//! ```
//!
//! so "there is no point in invoking any calls found below
//! /goingout/restaurants" (§1) — the lazy engine never touches them, and
//! even the position-only LPQ analysis prunes them.
//!
//! ```text
//! cargo run --example nightlife
//! ```

use activexml::core::{Engine, EngineConfig};
use activexml::query::parse_query;
use activexml::services::{Registry, StaticService};
use activexml::xml::parse;

fn main() {
    // the site: movie theaters behind getShows, restaurants behind
    // getRestaurants, reviews behind getReviews (off-path too)
    let doc_src = r#"
      <goingout>
        <movies>
          <theater><name>Odeon</name>
            <axml:call service="getShows">Odeon</axml:call>
          </theater>
          <theater><name>Rex</name>
            <axml:call service="getShows">Rex</axml:call>
          </theater>
        </movies>
        <restaurants>
          <axml:call service="getRestaurants">downtown</axml:call>
          <axml:call service="getRestaurants">uptown</axml:call>
        </restaurants>
      </goingout>"#;

    let mut registry = Registry::new();
    registry.register(StaticService::new(
        "getShows",
        parse(
            "<show><title>The Hours</title><schedule>20:30</schedule></show>\
             <show><title>Solaris</title><schedule>22:00</schedule></show>",
        )
        .unwrap(),
    ));
    registry.register(StaticService::new(
        "getRestaurants",
        parse("<restaurant><name>Huge result we never need</name></restaurant>").unwrap(),
    ));

    let query = parse_query("/goingout/movies//show[title=\"The Hours\"]/schedule").unwrap();

    for (name, config) in [
        ("naive", EngineConfig::naive()),
        ("lazy (LPQ)", EngineConfig::lpq()),
        ("lazy (NFQ)", EngineConfig::nfq_plain()),
    ] {
        let mut doc = parse(doc_src).unwrap();
        let report = Engine::new(&registry, config).evaluate(&mut doc, &query);
        let restaurants_fetched = report
            .stats
            .invoked_by_service
            .get("getRestaurants")
            .copied()
            .unwrap_or(0);
        println!(
            "{name:<12} calls={} (getRestaurants: {restaurants_fetched}) answers={}",
            report.stats.calls_invoked,
            report.result.len()
        );
        for tuple in activexml::query::render_result(&doc, &report.result) {
            println!("             schedule element found: {}", tuple.join(", "));
        }
    }
}
