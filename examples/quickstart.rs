//! Quickstart: the paper's running example end to end.
//!
//! Builds the Figure 1 document (four hotels, ten embedded service calls),
//! runs the Figure 4 query — "names and addresses of five-star restaurants
//! near five-star Best Western hotels" — and compares the naive
//! materialize-everything strategy against the lazy typed-NFQ engine.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use activexml::core::{Engine, EngineConfig};
use activexml::gen::scenario::{figure1, figure4_query};
use activexml::query::render_result;

fn main() {
    let query = figure4_query();
    println!("query: {}", activexml::query::render(&query));

    // -- naive: invoke every call recursively, then evaluate -------------
    let s = figure1();
    let mut doc = s.doc;
    let naive = Engine::new(&s.registry, EngineConfig::naive())
        .with_schema(&s.schema)
        .evaluate(&mut doc, &query);
    println!("\n--- naive strategy ---");
    println!("{}", naive.stats);

    // -- lazy: typed NFQs, layering, parallel batches, pushed queries ----
    let s = figure1();
    let mut doc = s.doc;
    let lazy = Engine::new(&s.registry, EngineConfig::default())
        .with_schema(&s.schema)
        .evaluate(&mut doc, &query);
    println!("--- lazy strategy (typed NFQ + layers + push) ---");
    println!("{}", lazy.stats);

    println!("answers:");
    for tuple in render_result(&doc, &lazy.result) {
        println!("  {}", tuple.join(" @ "));
    }
    assert_eq!(naive.result.len(), lazy.result.len());
    println!(
        "\nsame {} answers, {}x fewer calls, {:.1}x fewer bytes",
        lazy.result.len(),
        naive.stats.calls_invoked as f64 / lazy.stats.calls_invoked as f64,
        naive.stats.bytes_transferred as f64 / lazy.stats.bytes_transferred as f64
    );
}
