//! A second domain: an XMark-flavored auction site. Bids and seller
//! profiles are intensional; the query only cares about bids on one item
//! category, so the seller-profile calls are never invoked, and typing
//! keeps `getSellerInfo` out of the bid positions.
//!
//! ```text
//! cargo run --example auctions
//! ```

use activexml::core::{Engine, EngineConfig, Strategy, Typing};
use activexml::gen::auctions::{auction_query, generate_auctions, AuctionParams};
use activexml::query::render_result;

fn main() {
    let params = AuctionParams {
        auctions: 200,
        categories: 8,
        bids_per_auction: 6,
        ..Default::default()
    };
    let query = auction_query();
    println!("query: {}", activexml::query::render(&query));

    println!(
        "\n{:<24} {:>8} {:>10} {:>10} {:>8}",
        "strategy", "calls", "getBids", "sellers", "answers"
    );
    for (name, config) in [
        ("naive", EngineConfig::naive()),
        (
            "lazy LPQ",
            EngineConfig {
                parallel: true,
                ..EngineConfig::lpq()
            },
        ),
        (
            "lazy NFQ",
            EngineConfig {
                strategy: Strategy::Nfq,
                typing: Typing::None,
                push_queries: false,
                ..EngineConfig::default()
            },
        ),
        (
            "lazy NFQ + types",
            EngineConfig {
                push_queries: false,
                ..EngineConfig::default()
            },
        ),
        ("lazy NFQ + types+push", EngineConfig::default()),
    ] {
        let sc = generate_auctions(&params);
        let mut doc = sc.doc.clone();
        let report = Engine::new(&sc.registry, config)
            .with_schema(&sc.schema)
            .evaluate(&mut doc, &query);
        println!(
            "{:<24} {:>8} {:>10} {:>10} {:>8}",
            name,
            report.stats.calls_invoked,
            report.stats.invoked_by_service.get("getBids").unwrap_or(&0),
            report
                .stats
                .invoked_by_service
                .get("getSellerInfo")
                .unwrap_or(&0),
            report.result.len()
        );
    }

    // show a few answers
    let sc = generate_auctions(&params);
    let mut doc = sc.doc.clone();
    let report = Engine::new(&sc.registry, EngineConfig::default())
        .with_schema(&sc.schema)
        .evaluate(&mut doc, &query);
    println!("\nfirst answers (amount, bidder):");
    for tuple in render_result(&doc, &report.result).into_iter().take(5) {
        println!("  {}", tuple.join(", "));
    }
}
