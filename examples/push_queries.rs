//! Pushing queries to providers (Section 7).
//!
//! Instead of fetching every nearby restaurant and filtering locally, the
//! engine ships the subquery
//! `//restaurant[rating="*****"][name=$X][address=$Y]` with the call; the
//! provider answers with only the contributing part (pruned-result mode)
//! or with `<tuple>` bindings, exactly like the paper's example output:
//!
//! ```text
//! <tuple><x>In Delis</x><y>2nd Ave.</y></tuple>
//! ```
//!
//! ```text
//! cargo run --example push_queries
//! ```

use activexml::core::{Engine, EngineConfig};
use activexml::gen::scenario::{figure4_query, generate, ScenarioParams};
use activexml::query::{parse_query, EdgeKind};
use activexml::services::{bindings_result, NetProfile};
use activexml::xml::to_xml;

fn main() {
    // ---- provider-side view: what a pushed query does to one result ----
    let full_result = activexml::xml::parse(
        "<restaurant><name>In Delis</name><address>2nd Ave.</address>\
           <rating>*****</rating><menu><dish>pastrami</dish><dish>rye</dish></menu>\
         </restaurant>\
         <restaurant><name>Grease</name><address>9th Ave.</address>\
           <rating>*</rating></restaurant>\
         <restaurant><name>The Capital</name><address>2nd Ave.</address>\
           <rating>*****</rating></restaurant>",
    )
    .unwrap();
    let subquery =
        parse_query("/restaurant[rating=\"*****\"][name=$X][address=$Y] -> $X,$Y").unwrap();
    println!("full result: {} bytes", to_xml(&full_result).len());
    let pruned = activexml::services::prune_result(&subquery, &full_result, EdgeKind::Child);
    println!(
        "pruned-result mode: {} bytes\n{}",
        to_xml(&pruned).len(),
        to_xml(&pruned)
    );
    let bindings = bindings_result(&subquery, &full_result, EdgeKind::Child);
    println!("\nbindings mode:\n{}", to_xml(&bindings));

    // ---- engine-level effect across a whole workload -------------------
    println!("\nselectivity sweep (5-star fraction of served restaurants):");
    println!(
        "{:<12} {:>12} {:>12} {:>10}",
        "selectivity", "bytes plain", "bytes push", "saving"
    );
    for sel in [0.05, 0.25, 1.0] {
        let query = figure4_query();
        let mut bytes = [0usize; 2];
        for (i, push) in [false, true].into_iter().enumerate() {
            let mut sc = generate(&ScenarioParams {
                hotels: 60,
                restos_per_hotel: 8,
                five_star_resto_fraction: sel,
                ..Default::default()
            });
            sc.registry.set_default_profile(NetProfile {
                latency_ms: 20.0,
                bytes_per_ms: 10.0,
            });
            let mut doc = sc.doc.clone();
            let report = Engine::new(
                &sc.registry,
                EngineConfig {
                    push_queries: push,
                    ..EngineConfig::default()
                },
            )
            .with_schema(&sc.schema)
            .evaluate(&mut doc, &query);
            bytes[i] = report.stats.bytes_transferred;
        }
        println!(
            "{:<12} {:>12} {:>12} {:>9.1}x",
            sel,
            bytes[0],
            bytes[1],
            bytes[0] as f64 / bytes[1] as f64
        );
    }
}
