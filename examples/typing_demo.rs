//! Type-based pruning (Section 5): using service signatures to rule out
//! calls whose output type cannot contribute to the query, including
//! through *derived instances* (nested calls expanded recursively).
//!
//! ```text
//! cargo run --example typing_demo
//! ```

use activexml::core::{build_nfq, Engine, EngineConfig, TypeRefiner, Typing};
use activexml::gen::scenario::{figure1, figure4_query};
use activexml::query::{PLabel, Pattern};
use activexml::schema::SatMode;

fn node_named(q: &Pattern, name: &str) -> activexml::query::PNodeId {
    q.node_ids()
        .find(|&i| matches!(&q.node(i).label, PLabel::Const(l) if l.as_str() == name))
        .unwrap()
}

fn main() {
    let s = figure1();
    let q = figure4_query();

    // which services *satisfy* the restaurant subquery?
    println!("subquery: //restaurant[name=$X][address=$Y][rating=\"*****\"]");
    let restaurant = node_named(&q, "restaurant");
    for mode in [SatMode::Exact, SatMode::Lenient] {
        let mut refiner = TypeRefiner::new(&s.schema, &q, mode);
        let verdicts: Vec<String> = [
            "getHotels",
            "getRating",
            "getNearbyRestos",
            "getNearbyMuseums",
        ]
        .iter()
        .map(|f| format!("{f}={}", refiner.satisfies(f, restaurant)))
        .collect();
        println!("  {mode:?}: {}", verdicts.join("  "));
    }

    // the refined NFQ of Figure 7
    let nfq = build_nfq(&q, restaurant);
    let mut refiner = TypeRefiner::new(&s.schema, &q, SatMode::Exact);
    let refined = refiner
        .refine(
            &nfq,
            &[
                "getHotels".into(),
                "getRating".into(),
                "getNearbyRestos".into(),
                "getNearbyMuseums".into(),
            ],
        )
        .unwrap();
    println!(
        "\nrefined NFQ (cf. Figure 7):\n  {}",
        activexml::query::render(&refined.pattern)
    );

    // engine effect on Figure 1: untyped vs typed invocation counts
    println!("\nFigure 1 + Figure 4 query, calls invoked:");
    for (name, typing) in [
        ("untyped", Typing::None),
        ("lenient", Typing::Lenient),
        ("exact", Typing::Exact),
    ] {
        let s = figure1();
        let mut doc = s.doc;
        let report = Engine::new(
            &s.registry,
            EngineConfig {
                typing,
                push_queries: false,
                ..EngineConfig::default()
            },
        )
        .with_schema(&s.schema)
        .evaluate(&mut doc, &q);
        println!(
            "  {name:<8} {} calls  ({:?})",
            report.stats.calls_invoked,
            report
                .stats
                .invoked_by_service
                .iter()
                .map(|(k, v)| format!("{k}:{v}"))
                .collect::<Vec<_>>()
        );
    }
    println!("\nthe paper's relevant set for Figure 1 is {{1, 3, 4, 10}} — four of the");
    println!("ten embedded calls — plus one call that becomes relevant dynamically");
    println!("(the rating of restaurant Jo, returned inside call 4's result).");
}
