//! End-to-end flows through the public facade: XML text in, services
//! registered, lazy evaluation, XML text out.

use activexml::core::{Engine, EngineConfig};
use activexml::query::parse_query;
use activexml::schema::parse_schema;
use activexml::services::{FnService, NetProfile, Registry, TableService};
use activexml::xml::{parse, to_xml, Forest};

#[test]
fn auction_site_walkthrough() {
    // a second domain: an auction site where current bids are intensional
    let doc_src = r#"
      <site>
        <auctions>
          <auction><item>Fender Stratocaster</item>
            <bids><axml:call service="getBids">strat-1</axml:call></bids>
          </auction>
          <auction><item>Dusty Encyclopedia</item>
            <bids><axml:call service="getBids">ency-9</axml:call></bids>
          </auction>
        </auctions>
        <people><axml:call service="getSellers">all</axml:call></people>
      </site>"#;
    let mut registry = Registry::new();
    let mut bids = TableService::new("getBids");
    bids.insert(
        "strat-1",
        parse(
            "<bid><amount>1200</amount><bidder>ana</bidder></bid>\
               <bid><amount>900</amount><bidder>bob</bidder></bid>",
        )
        .unwrap(),
    );
    bids.insert(
        "ency-9",
        parse("<bid><amount>3</amount><bidder>cal</bidder></bid>").unwrap(),
    );
    registry.register(bids);
    registry.register(FnService::new("getSellers", |_req: &_| {
        parse("<person><name>zoe</name></person>").unwrap()
    }));

    let q = parse_query(
        "/site/auctions/auction[item=\"Fender Stratocaster\"]/bids/bid[amount=$A] -> $A",
    )
    .unwrap();
    let mut doc = parse(doc_src).unwrap();
    let report = Engine::new(&registry, EngineConfig::default()).evaluate(&mut doc, &q);
    // only the Stratocaster bids call fires; the encyclopedia and the
    // sellers stay untouched
    assert_eq!(report.stats.calls_invoked, 1);
    assert_eq!(report.result.len(), 2);
    let answers: Vec<Vec<String>> = activexml::query::render_result(&doc, &report.result);
    assert!(answers.contains(&vec!["1200".to_string()]));
    assert!(answers.contains(&vec!["900".to_string()]));
    // the lazy document still has the other calls, serialized back out
    let xml = to_xml(&doc);
    assert!(xml.contains("service=\"getBids\">ency-9"));
    assert!(xml.contains("service=\"getSellers\""));
}

#[test]
fn schema_guided_run_with_parsed_schema() {
    let schema = parse_schema(
        "root catalog\n\
         function getPrice = in: data, out: data\n\
         element catalog = product*\n\
         element product = name.price\n\
         element name = data\n\
         element price = (data | getPrice)\n",
    )
    .unwrap();
    let mut registry = Registry::new();
    let mut prices = TableService::new("getPrice");
    for (k, v) in [("p1", "10"), ("p2", "20")] {
        let mut f = Forest::new();
        f.add_root_text(v);
        prices.insert(k, f);
    }
    registry.register(prices);
    registry.set_default_profile(NetProfile::latency(10.0));

    let mut doc = parse(
        "<catalog>\
           <product><name>widget</name>\
             <price><axml:call service=\"getPrice\">p1</axml:call></price></product>\
           <product><name>gadget</name>\
             <price><axml:call service=\"getPrice\">p2</axml:call></price></product>\
         </catalog>",
    )
    .unwrap();
    assert!(activexml::schema::validate(&doc, &schema).is_empty());

    // ask for the widget's price: only p1 is fetched
    let q = parse_query("/catalog/product[name=\"widget\"]/price/$P -> $P").unwrap();
    let report = Engine::new(&registry, EngineConfig::default())
        .with_schema(&schema)
        .evaluate(&mut doc, &q);
    assert_eq!(report.stats.calls_invoked, 1);
    assert_eq!(report.stats.sim_time_ms, 10.0);
    let answers = activexml::query::render_result(&doc, &report.result);
    assert_eq!(answers, vec![vec!["10".to_string()]]);
    assert!(activexml::schema::validate(&doc, &schema).is_empty());
}

#[test]
fn intensional_answers_chain_until_complete() {
    // a service whose answer contains another call (dynamic arrival)
    let mut registry = Registry::new();
    registry.register(FnService::new("outer", |_req: &_| {
        parse("<wrap><axml:call service=\"inner\"/></wrap>").unwrap()
    }));
    registry.register(FnService::new("inner", |_req: &_| {
        parse("<leaf>gold</leaf>").unwrap()
    }));
    let mut doc = parse("<r><axml:call service=\"outer\"/></r>").unwrap();
    let q = parse_query("/r/wrap/leaf/$V -> $V").unwrap();
    let report = Engine::new(&registry, EngineConfig::default()).evaluate(&mut doc, &q);
    assert_eq!(report.stats.calls_invoked, 2);
    assert_eq!(
        activexml::query::render_result(&doc, &report.result),
        vec![vec!["gold".to_string()]]
    );
}

#[test]
fn non_terminating_workload_hits_the_budget() {
    // a service that always returns another call to itself — the paper's
    // §2 termination caveat: computation halts at the configured limit
    let mut registry = Registry::new();
    registry.register(FnService::new("loopy", |_req: &_| {
        parse("<again><axml:call service=\"loopy\"/></again>").unwrap()
    }));
    let mut doc = parse("<r><axml:call service=\"loopy\"/></r>").unwrap();
    let q = parse_query("/r//leaf").unwrap();
    let report = Engine::new(
        &registry,
        EngineConfig {
            max_invocations: 25,
            ..EngineConfig::naive()
        },
    )
    .evaluate(&mut doc, &q);
    assert!(report.stats.truncated);
    assert_eq!(report.stats.calls_invoked, 25);
    doc.check_integrity().unwrap();
}

#[test]
fn trace_oracle_holds_across_strategies() {
    // laziness and layer-order soundness, checked from the structured
    // trace alone, for every call-finding family on the standard workload
    use activexml::gen::{figure4_query, generate, ScenarioParams};
    use activexml::obs::{check_all, RingSink};

    let configs = [
        ("naive", EngineConfig::naive()),
        ("lpq", EngineConfig::lpq()),
        ("nfq_plain", EngineConfig::nfq_plain()),
        ("lazy-default", EngineConfig::default()),
    ];
    for (name, config) in configs {
        let mut sc = generate(&ScenarioParams::default());
        sc.registry.set_default_profile(NetProfile::latency(10.0));
        let ring = RingSink::unbounded();
        let report = Engine::new(&sc.registry, config)
            .with_schema(&sc.schema)
            .with_observer(&ring)
            .evaluate(&mut sc.doc, &figure4_query());
        let violations = check_all(&ring.events(), Some(&report.stats.view()));
        assert!(
            violations.is_empty(),
            "{name}: trace-oracle violations:\n{}",
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn facade_reexports_compose() {
    // everything reachable from the facade crate
    let _ = activexml::xml::Document::with_root("r");
    let _ = activexml::query::parse_query("/r").unwrap();
    let _ = activexml::schema::figure2_schema();
    let _ = activexml::services::Registry::new();
    let _ = activexml::core::EngineConfig::default();
    let _ = activexml::gen::ScenarioParams::default();
}

#[test]
fn attribute_queries_work_through_the_at_encoding() {
    // XML attributes become @name children (parser docs); the query
    // syntax accepts @-names, so attribute filters compose end-to-end
    let doc = parse(
        "<movies><movie year=\"2002\"><title>The Hours</title></movie>\
                 <movie year=\"1999\"><title>Magnolia</title></movie></movies>",
    )
    .unwrap();
    let q = parse_query("/movies/movie[@year=\"2002\"]/title/$T -> $T").unwrap();
    let r = activexml::query::eval(&q, &doc);
    assert_eq!(
        activexml::query::render_result(&doc, &r),
        vec![vec!["The Hours".to_string()]]
    );
}
