//! Golden structured-trace snapshots: the paper-walkthrough (Figure 1)
//! scenario's event stream is pinned byte-for-byte as JSONL under the
//! default schedule, under a threaded parallel schedule, and under a
//! deterministic fault seed. Each case also asserts two-run determinism,
//! parse-back round-tripping, and trace-oracle cleanliness against the
//! engine's own accounting.
//!
//! Regenerate the pinned files with `AXML_UPDATE_GOLDEN=1 cargo test`.

use activexml::core::{Engine, EngineConfig, EngineStats};
use activexml::gen::{figure1, figure4_query};
use activexml::obs::{assert_clean, parse_jsonl, to_jsonl, EventKind, RingSink};
use activexml::services::{FaultProfile, NetProfile};
use std::path::PathBuf;

/// Runs the Figure 1 walkthrough under `config` (and optional faults) with
/// an observer attached; returns the deterministic JSONL and the stats.
fn run(config: EngineConfig, faults: Option<FaultProfile>) -> (String, EngineStats) {
    let mut sc = figure1();
    sc.registry.set_default_profile(NetProfile::latency(10.0));
    if let Some(f) = faults {
        sc.registry.set_default_fault_profile(f);
    }
    let ring = RingSink::unbounded();
    let engine = Engine::new(&sc.registry, config.clone())
        .with_schema(&sc.schema)
        .with_observer(&ring);
    let report = engine.evaluate(&mut sc.doc, &figure4_query());
    let events = ring.events();
    if config.trace {
        // the legacy TraceEvent vector is a projection of the stream
        let invocations = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Invocation { .. }))
            .count();
        assert_eq!(report.trace.len(), invocations);
    }
    (to_jsonl(&events), report.stats)
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, config: EngineConfig, faults: Option<FaultProfile>) {
    let (first, stats) = run(config.clone(), faults);
    let (second, _) = run(config, faults);
    assert_eq!(first, second, "{name}: two same-seed runs diverged");

    let events = parse_jsonl(&first).expect("trace JSONL parses back");
    assert_eq!(
        to_jsonl(&events),
        first,
        "{name}: parse/serialize round-trip"
    );
    assert_clean(&events, Some(&stats.view()));

    let path = golden_path(name);
    if std::env::var("AXML_UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &first).unwrap();
        return;
    }
    let pinned = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}\nrun with AXML_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        first, pinned,
        "{name}: trace diverged from the pinned golden; if the change is \
         intended, regenerate with AXML_UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_default_schedule() {
    check_golden("figure1_default.jsonl", EngineConfig::default(), None);
}

#[test]
fn golden_threaded_parallel_batches() {
    check_golden(
        "figure1_threads.jsonl",
        EngineConfig {
            parallel: true,
            real_threads: true,
            trace: true,
            ..EngineConfig::default()
        },
        None,
    );
}

/// The hot-path machinery must be trace-invisible: the *same* golden file
/// as the default schedule, byte for byte, with delta-scoped incremental
/// detection on and with the whole hot path off. No new golden is pinned —
/// divergence from `figure1_default.jsonl` is the failure.
#[test]
fn golden_default_schedule_is_eval_mode_invariant() {
    use activexml::query::EvalOptions;
    check_golden(
        "figure1_default.jsonl",
        EngineConfig {
            incremental_detection: true,
            ..EngineConfig::default()
        },
        None,
    );
    check_golden(
        "figure1_default.jsonl",
        EngineConfig {
            eval_options: EvalOptions {
                interning: false,
                index: false,
            },
            ..EngineConfig::default()
        },
        None,
    );
}

/// The compiled-plan layer must be trace-invisible: `use_plans: false`
/// (pure interpreter) reproduces the *same* golden file as the default
/// schedule, whose pinned bytes already exercise the compiled path
/// (`use_plans` defaults to on). No new golden is pinned — divergence
/// from `figure1_default.jsonl` is the failure.
#[test]
fn golden_default_schedule_is_plan_mode_invariant() {
    check_golden(
        "figure1_default.jsonl",
        EngineConfig {
            use_plans: false,
            ..EngineConfig::default()
        },
        None,
    );
}

/// A warm cross-session plan cache must be trace-invisible too: fetching
/// the Figure 4 plan from a [`PlanCache`] (cold compile, then a cache
/// hit) and evaluating with the shared plan reproduces the default
/// golden byte for byte, both times. Plan-cache probe events go to the
/// cache's own sink, never into the engine's query span.
#[test]
fn golden_default_schedule_through_a_warm_plan_cache() {
    use activexml::store::{PlanCache, PlanCacheConfig};

    let plans = PlanCache::new(PlanCacheConfig::default());
    let pinned = std::fs::read_to_string(golden_path("figure1_default.jsonl"))
        .expect("figure1_default.jsonl is pinned");
    for fetch in 0..2 {
        let mut sc = figure1();
        sc.registry.set_default_profile(NetProfile::latency(10.0));
        let config = EngineConfig::default();
        let plan = plans.fetch(&figure4_query(), Some(&sc.schema), &config);
        let ring = RingSink::unbounded();
        let engine = Engine::new(&sc.registry, config)
            .with_schema(&sc.schema)
            .with_plan(plan)
            .with_observer(&ring);
        let report = engine.evaluate(&mut sc.doc, &figure4_query());
        assert_clean(&ring.events(), Some(&report.stats.view()));
        assert_eq!(
            to_jsonl(&ring.events()),
            pinned,
            "fetch {fetch} diverged from the pinned golden"
        );
    }
    let stats = plans.stats();
    assert_eq!(
        (stats.compiles, stats.hits),
        (1, 1),
        "second fetch must be a warm hit"
    );
}

#[test]
fn golden_fault_seed_1() {
    check_golden(
        "figure1_faults.jsonl",
        EngineConfig::default(),
        Some(FaultProfile::chaos(1, 0.3)),
    );
}

/// The versioned-publication layer must be trace-invisible too: pushing
/// the Figure 1 document through a full snapshot → COW working copy →
/// publish → re-snapshot round trip and evaluating the result reproduces
/// `figure1_default.jsonl` byte for byte. The shared page structure a
/// snapshot hands out is an evaluation-identical document, not merely an
/// equivalent one.
#[test]
fn golden_default_schedule_survives_the_snapshot_layer() {
    use activexml::xml::VersionedDocument;

    let mut sc = figure1();
    sc.registry.set_default_profile(NetProfile::latency(10.0));
    let versioned = VersionedDocument::new(sc.doc);
    let round_trip = versioned.snapshot().to_document();
    versioned.publish(round_trip);
    assert_eq!(versioned.version(), 1);
    let snapshot = versioned.snapshot();
    snapshot
        .check_integrity()
        .expect("published version intact");
    let mut doc = snapshot.to_document();

    let ring = RingSink::unbounded();
    let engine = Engine::new(&sc.registry, EngineConfig::default())
        .with_schema(&sc.schema)
        .with_observer(&ring);
    let report = engine.evaluate(&mut doc, &figure4_query());
    let events = ring.events();
    assert_clean(&events, Some(&report.stats.view()));
    let jsonl = to_jsonl(&events);
    let pinned = std::fs::read_to_string(golden_path("figure1_default.jsonl"))
        .expect("figure1_default.jsonl is pinned");
    assert_eq!(
        jsonl, pinned,
        "the snapshot/publish round trip changed the Figure 1 trace"
    );
}
