//! Integration tests for the `axml` CLI binary: file-driven workloads
//! (document + world file + schema) through the real executable.

use std::io::Write;
use std::process::Command;

fn axml() -> Command {
    Command::new(env!("CARGO_BIN_EXE_axml"))
}

struct TempFiles {
    dir: std::path::PathBuf,
}

impl TempFiles {
    fn new(tag: &str) -> TempFiles {
        let dir = std::env::temp_dir().join(format!("axml-cli-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        TempFiles { dir }
    }

    fn write(&self, name: &str, content: &str) -> String {
        let path = self.dir.join(name);
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(content.as_bytes()).unwrap();
        path.to_string_lossy().into_owned()
    }
}

impl Drop for TempFiles {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

const DOC: &str = r#"<hotels>
  <hotel><name>Best Western</name><address>a1</address>
    <rating><axml:call service="getRating">a1</axml:call></rating>
    <nearby><axml:call service="getNearbyRestos">a1</axml:call></nearby>
  </hotel>
  <hotel><name>Pennsylvania</name><address>a2</address>
    <rating><axml:call service="getRating">a2</axml:call></rating>
    <nearby><axml:call service="getNearbyRestos">a2</axml:call></nearby>
  </hotel>
</hotels>"#;

const WORLD: &str = r#"<world>
  <service name="getRating">
    <entry key="a1"><result>*****</result></entry>
    <entry key="a2"><result>**</result></entry>
  </service>
  <service name="getNearbyRestos">
    <entry key="a1"><result><restaurant><name>In Delis</name><address>x</address><rating>*****</rating></restaurant></result></entry>
    <entry key="a2"><result><restaurant><name>Penn Grill</name><address>y</address><rating>*****</rating></restaurant></result></entry>
  </service>
</world>"#;

const SCHEMA: &str = "root hotels\n\
function getRating       = in: data, out: data\n\
function getNearbyRestos = in: data, out: restaurant*\n\
element hotels     = hotel*\n\
element hotel      = name.address.rating.nearby\n\
element nearby     = (restaurant | getNearbyRestos)*\n\
element restaurant = name.address.rating\n\
element name       = data\n\
element address    = data\n\
element rating     = (data | getRating)\n";

const QUERY: &str = "/hotels/hotel[rating=\"*****\"]/nearby//restaurant[name=$X] -> $X";

#[test]
fn query_command_produces_results_xml() {
    let t = TempFiles::new("query");
    let doc = t.write("doc.xml", DOC);
    let world = t.write("world.xml", WORLD);
    let schema = t.write("schema.txt", SCHEMA);
    let out = axml()
        .args([
            "query", "--doc", &doc, "--world", &world, "--schema", &schema, "--query", QUERY,
            "--stats",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("<x>In Delis</x>"), "{stdout}");
    assert!(!stdout.contains("Penn Grill"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("calls: 3"), "{stderr}");
}

#[test]
fn query_out_doc_prints_partially_materialized_document() {
    let t = TempFiles::new("outdoc");
    let doc = t.write("doc.xml", DOC);
    let world = t.write("world.xml", WORLD);
    let out = axml()
        .args([
            "query", "--doc", &doc, "--world", &world, "--query", QUERY, "--out", "doc",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // the lazy document has In Delis materialized and the Pennsylvania
    // restaurants call still pending
    assert!(stdout.contains("In Delis"), "{stdout}");
    assert!(stdout.contains("axml:call"), "{stdout}");
}

#[test]
fn validate_command() {
    let t = TempFiles::new("validate");
    let doc = t.write("doc.xml", DOC);
    let schema = t.write("schema.txt", SCHEMA);
    let out = axml()
        .args(["validate", "--doc", &doc, "--schema", &schema])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("valid"));

    let bad = t.write("bad.xml", "<hotels><mystery/></hotels>");
    let out = axml()
        .args(["validate", "--doc", &bad, "--schema", &schema])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("mystery"));
}

#[test]
fn termination_command() {
    let t = TempFiles::new("term");
    let doc = t.write("doc.xml", DOC);
    let schema = t.write("schema.txt", SCHEMA);
    let out = axml()
        .args(["termination", "--doc", &doc, "--schema", &schema])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("terminates"));

    let loopy_schema = t.write(
        "loopy.txt",
        "function f = in: data, out: f?\nelement hotels = data\n",
    );
    let loopy_doc = t.write("loopy.xml", "<hotels><axml:call service=\"f\"/></hotels>");
    let out = axml()
        .args([
            "termination",
            "--doc",
            &loopy_doc,
            "--schema",
            &loopy_schema,
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("diverges"));
}

#[test]
fn materialize_command() {
    let t = TempFiles::new("mat");
    let doc = t.write("doc.xml", DOC);
    let world = t.write("world.xml", WORLD);
    let out = axml()
        .args(["materialize", "--doc", &doc, "--world", &world])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !stdout.contains("axml:call"),
        "fully materialized: {stdout}"
    );
    assert!(stdout.contains("Penn Grill"));
}

#[test]
fn explain_command() {
    let out = axml().args(["explain", "--query", QUERY]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("LPQs"));
    assert!(stdout.contains("NFQs"));
    assert!(stdout.contains("influence layers"));
}

#[test]
fn helpful_errors() {
    let out = axml().args(["query"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--doc"));

    let out = axml().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = axml().output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("commands:"));
}

#[test]
fn trace_json_is_deterministic_and_parses_back() {
    let t = TempFiles::new("trace");
    let doc = t.write("doc.xml", DOC);
    let world = t.write("world.xml", WORLD);
    let schema = t.write("schema.txt", SCHEMA);
    let run = |out_name: &str| {
        let trace = t.dir.join(out_name).to_string_lossy().into_owned();
        let out = axml()
            .args([
                "query",
                "--doc",
                &doc,
                "--world",
                &world,
                "--schema",
                &schema,
                "--query",
                QUERY,
                "--threads",
                "--fault-seed",
                "1",
                "--trace-json",
                &trace,
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::fs::read_to_string(&trace).unwrap()
    };
    let first = run("a.jsonl");
    let second = run("b.jsonl");
    assert_eq!(
        first, second,
        "same-seed traces must be byte-identical (threaded batches included)"
    );
    let events = activexml::obs::parse_jsonl(&first).expect("trace parses back");
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, activexml::obs::EventKind::QueryEnd { .. })));
    let violations = activexml::obs::check_all(&events, None);
    assert!(
        violations.is_empty(),
        "CLI trace fails the oracle:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn relevant_command_lists_relevant_calls() {
    let t = TempFiles::new("relevant");
    let doc = t.write("doc.xml", DOC);
    let schema = t.write("schema.txt", SCHEMA);
    let out = axml()
        .args([
            "relevant", "--doc", &doc, "--schema", &schema, "--query", QUERY,
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("of 4 embedded calls"), "{stdout}");
    assert!(stdout.contains("getNearbyRestos"), "{stdout}");
}

#[test]
fn deadline_flag_degrades_to_a_partial_answer_with_a_distinct_cause() {
    let t = TempFiles::new("deadline");
    let doc = t.write("doc.xml", DOC);
    let world = t.write("world.xml", WORLD);
    let out = axml()
        .args([
            "query",
            "--doc",
            &doc,
            "--world",
            &world,
            "--query",
            QUERY,
            "--deadline-ms",
            "0",
            "--stats",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("partial answer"), "{stderr}");
    assert!(stderr.contains("deadline exceeded"), "{stderr}");
    assert!(
        stderr.contains("[DEADLINE]"),
        "stats marker missing: {stderr}"
    );
}

#[test]
fn hedge_and_shed_flags_keep_traces_deterministic() {
    let t = TempFiles::new("hedge");
    let doc = t.write("doc.xml", DOC);
    let world = t.write("world.xml", WORLD);
    let schema = t.write("schema.txt", SCHEMA);
    let run = |out_name: &str| {
        let trace = t.dir.join(out_name).to_string_lossy().into_owned();
        let out = axml()
            .args([
                "query",
                "--doc",
                &doc,
                "--world",
                &world,
                "--schema",
                &schema,
                "--query",
                QUERY,
                "--threads",
                "--fault-seed",
                "1",
                "--latency-ms",
                "40",
                "--deadline-ms",
                "5000",
                "--hedge-threshold-ms",
                "10",
                "--shed-inflight",
                "1",
                "--trace",
                "--trace-json",
                &trace,
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            std::fs::read_to_string(&trace).unwrap(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    };
    let (first, stderr) = run("a.jsonl");
    let (second, _) = run("b.jsonl");
    assert_eq!(
        first, second,
        "same-seed hedged traces must be byte-identical (threaded batches included)"
    );
    let events = activexml::obs::parse_jsonl(&first).expect("trace parses back");
    let hedges = events
        .iter()
        .filter(|e| matches!(e.kind, activexml::obs::EventKind::Hedge { .. }))
        .count();
    let sheds = events
        .iter()
        .filter(|e| matches!(e.kind, activexml::obs::EventKind::Shed { .. }))
        .count();
    assert!(hedges > 0, "a 10 ms trigger under 40 ms latency must hedge");
    assert!(sheds > 0, "an in-flight limit of 1 must shed");
    assert!(
        stderr.contains("[HEDGED]"),
        "trace marker missing: {stderr}"
    );
    let violations = activexml::obs::check_all(&events, None);
    assert!(
        violations.is_empty(),
        "CLI hedged trace fails the oracle:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Two identical `session` runs with the plan cache warm (the second
/// `--query` repeats the first, so its plan fetch is a hit) must emit
/// byte-identical trace JSONL — and the same bytes again with
/// `--no-plan-cache`, because the compiled-plan layer is trace-invisible.
#[test]
fn session_traces_are_deterministic_with_a_warm_plan_cache() {
    let t = TempFiles::new("session-plans");
    let doc = t.write("doc.xml", DOC);
    let world = t.write("world.xml", WORLD);
    let run = |out_name: &str, extra: &[&str]| {
        let trace = t.dir.join(out_name).to_string_lossy().into_owned();
        let mut args = vec![
            "session",
            "--doc",
            &doc,
            "--world",
            &world,
            "--query",
            QUERY,
            "--query",
            QUERY,
            "--trace-json",
            &trace,
        ];
        args.extend_from_slice(extra);
        let out = axml().args(&args).output().unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            std::fs::read_to_string(&trace).unwrap(),
            String::from_utf8_lossy(&out.stdout).into_owned(),
        )
    };
    let (first, stdout) = run("a.jsonl", &[]);
    let (second, _) = run("b.jsonl", &[]);
    assert_eq!(
        first, second,
        "same session runs with a plan cache must trace identically"
    );
    // the repeated query hit the cached plan, and the summary says so
    assert!(
        stdout.contains("== plans: 1 compiled, 1 hits / 1 misses"),
        "plan summary missing or wrong:\n{stdout}"
    );
    let (without, stdout_off) = run("c.jsonl", &["--no-plan-cache"]);
    assert_eq!(
        first, without,
        "disabling the plan cache changed the session trace"
    );
    assert!(
        !stdout_off.contains("== plans:"),
        "--no-plan-cache still printed a plan summary:\n{stdout_off}"
    );
    let events = activexml::obs::parse_jsonl(&first).expect("trace parses back");
    let violations = activexml::obs::check_all(&events, None);
    assert!(
        violations.is_empty(),
        "session trace fails the oracle:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// `--durable DIR` persists the session's publications; a second run
/// against the same directory recovers the materialized document and
/// serves the same answer without re-invoking anything, and
/// `axml recover` replays the log standalone.
#[test]
fn durable_session_recovers_across_runs() {
    let t = TempFiles::new("durable");
    let doc = t.write("doc.xml", DOC);
    let world = t.write("world.xml", WORLD);
    let store = t.dir.join("store").to_string_lossy().into_owned();
    let run = || {
        axml()
            .args([
                "session",
                "--doc",
                &doc,
                "--world",
                &world,
                "--query",
                QUERY,
                "--persist",
                "--durable",
                &store,
            ])
            .output()
            .unwrap()
    };
    let first = run();
    assert!(
        first.status.success(),
        "{}",
        String::from_utf8_lossy(&first.stderr)
    );
    let stdout = String::from_utf8_lossy(&first.stdout);
    assert!(stdout.contains("In Delis"), "{stdout}");
    assert!(stdout.contains("== wal:"), "{stdout}");
    assert!(
        !stdout.contains("== recovery:"),
        "fresh dir must not recover"
    );

    let second = run();
    assert!(
        second.status.success(),
        "{}",
        String::from_utf8_lossy(&second.stderr)
    );
    let stdout = String::from_utf8_lossy(&second.stdout);
    assert!(stdout.contains("== recovery:"), "{stdout}");
    assert!(stdout.contains("-- recovered doc: v"), "{stdout}");
    assert!(
        stdout.contains("In Delis"),
        "recovered state answers: {stdout}"
    );
    assert!(
        stdout.contains("calls=0"),
        "recovered materialized doc needs no re-invocation: {stdout}"
    );

    let out = axml().args(["recover", &store]).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("== recovery:"), "{stdout}");
    assert!(stdout.contains("log intact"), "{stdout}");
}

/// Satellite robustness contract: a missing store directory is a nonzero
/// exit with a one-line diagnostic, and a corrupt log names the file and
/// byte offset — the CLI never panics and never silently serves an empty
/// store in place of data it failed to read.
#[test]
fn recover_missing_or_corrupt_store_fails_with_a_diagnostic() {
    let t = TempFiles::new("recover-robust");
    let missing = t.dir.join("nosuch").to_string_lossy().into_owned();
    let out = axml().args(["recover", &missing]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("does not exist"), "{stderr}");

    let empty = t.dir.join("empty").to_string_lossy().into_owned();
    std::fs::create_dir_all(&empty).unwrap();
    let out = axml().args(["recover", &empty]).output().unwrap();
    assert!(!out.status.success(), "an empty dir has nothing to recover");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("no write-ahead logs"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A log that is garbage from byte 0 has no intact checkpoint prefix:
    // both `recover` and a durable session must refuse with the offset.
    let corrupt = t.dir.join("corrupt");
    std::fs::create_dir_all(&corrupt).unwrap();
    std::fs::write(corrupt.join("doc.wal"), b"this is not a wal").unwrap();
    let corrupt = corrupt.to_string_lossy().into_owned();
    let out = axml().args(["recover", &corrupt]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("doc.wal"), "{stderr}");
    assert!(stderr.contains("offset 0"), "{stderr}");

    let doc = t.write("doc.xml", DOC);
    let world = t.write("world.xml", WORLD);
    let out = axml()
        .args([
            "session",
            "--doc",
            &doc,
            "--world",
            &world,
            "--query",
            QUERY,
            "--persist",
            "--durable",
            &corrupt,
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "a corrupt store must not serve");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("offset 0"), "{stderr}");
    assert!(
        !String::from_utf8_lossy(&out.stdout).contains("-- query"),
        "must not evaluate over a store it failed to recover"
    );
}

/// A torn tail (crash mid-append) is recoverable: replay stops at the
/// first invalid frame, reports the offset, and exits 0 with everything
/// acknowledged before it intact.
#[test]
fn recover_truncates_a_torn_tail_and_reports_the_offset() {
    let t = TempFiles::new("torn-tail");
    let doc = t.write("doc.xml", DOC);
    let world = t.write("world.xml", WORLD);
    let store = t.dir.join("store").to_string_lossy().into_owned();
    let out = axml()
        .args([
            "session",
            "--doc",
            &doc,
            "--world",
            &world,
            "--query",
            QUERY,
            "--persist",
            "--durable",
            &store,
        ])
        .output()
        .unwrap();
    assert!(out.status.success());

    // Tear the log: a partial frame header dangles past the good prefix.
    let wal = std::path::Path::new(&store).join("doc.wal");
    let good_len = std::fs::metadata(&wal).unwrap().len();
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes.extend_from_slice(&[0x55, 0x55, 0x55]);
    std::fs::write(&wal, &bytes).unwrap();

    let out = axml().args(["recover", &store]).output().unwrap();
    assert!(
        out.status.success(),
        "a torn tail is recoverable: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(&format!("truncated at offset {good_len}")),
        "{stdout}"
    );
    assert!(stdout.contains("torn tail discarded"), "{stdout}");

    // Recovery truncated the file back to the acknowledged prefix, so a
    // second replay sees an intact log (idempotence, through the CLI).
    assert_eq!(std::fs::metadata(&wal).unwrap().len(), good_len);
    let again = axml().args(["recover", &store]).output().unwrap();
    assert!(again.status.success());
    assert!(
        String::from_utf8_lossy(&again.stdout).contains("log intact"),
        "{}",
        String::from_utf8_lossy(&again.stdout)
    );
}
