//! A test-suite walkthrough of the paper's worked examples, via the
//! `activexml` facade: Section 2's relevance discussion on Figure 1,
//! Section 3's LPQ/NFQ retrieval sets, and the schema validity of every
//! intermediate state.

use activexml::core::{build_lpqs, build_nfqs, Engine, EngineConfig};
use activexml::gen::scenario::{figure1, figure4_query};
use activexml::query::eval;
use activexml::schema::validate;
use activexml::xml::CallId;
use std::collections::BTreeSet;

/// CallIds are assigned in creation order by `figure1()`; map them back to
/// the paper's numbering of Figure 1.
fn paper_number(id: CallId) -> u32 {
    match id.0 {
        0 => 1,  // getNearbyRestos  Best Western 2nd Av
        1 => 2,  // getNearbyMuseums Best Western 2nd Av
        2 => 3,  // getRating        Best Western Madison
        3 => 4,  // getNearbyRestos  Madison
        4 => 5,  // getNearbyMuseums Madison
        5 => 8,  // getRating        Pennsylvania
        6 => 9,  // getNearbyRestos  Pennsylvania
        7 => 6,  // getRating        Best Western 34th St
        8 => 7,  // getNearbyMuseums 34th St
        9 => 10, // getHotels
        other => panic!("unexpected call id {other}"),
    }
}

fn retrieved_by_nfqs(typed: bool) -> BTreeSet<u32> {
    let s = figure1();
    let q = figure4_query();
    let nfqs = build_nfqs(&q);
    let mut out = BTreeSet::new();
    let known: Vec<String> = s.registry.service_names();
    let mut refiner =
        activexml::core::TypeRefiner::new(&s.schema, &q, activexml::schema::SatMode::Exact);
    for nfq in &nfqs {
        let effective = if typed {
            match refiner.refine(nfq, &known) {
                Some(r) => r,
                None => continue,
            }
        } else {
            nfq.clone()
        };
        for node in eval(&effective.pattern, &s.doc).bindings_of(effective.output) {
            let (id, _) = s.doc.call_info(node).unwrap();
            out.insert(paper_number(id));
        }
    }
    out
}

#[test]
fn section2_relevant_calls_with_types_are_1_3_4_10() {
    // "The relevant functions here are 1, 3, 4 and 10" (Section 2) — this
    // needs the signatures: 7 is excluded because its output type cannot
    // contribute, and therefore 6 too.
    assert_eq!(
        retrieved_by_nfqs(true),
        [1u32, 3, 4, 10].into_iter().collect::<BTreeSet<_>>()
    );
}

#[test]
fn section3_untyped_nfqs_keep_type_prunable_calls() {
    // without signatures ("functions can return arbitrary answers"), the
    // museum calls and call 6 remain position/condition-plausible, but the
    // Pennsylvania calls (8, 9) are still pruned by the name condition
    let got = retrieved_by_nfqs(false);
    assert_eq!(
        got,
        [1u32, 2, 3, 4, 5, 6, 7, 10]
            .into_iter()
            .collect::<BTreeSet<_>>()
    );
    assert!(!got.contains(&8));
    assert!(!got.contains(&9));
}

#[test]
fn section3_lpqs_retrieve_a_superset_by_position() {
    let s = figure1();
    let q = figure4_query();
    let mut by_lpq = BTreeSet::new();
    for lpq in build_lpqs(&q) {
        for node in eval(&lpq.pattern, &s.doc).bindings_of(lpq.output) {
            let (id, _) = s.doc.call_info(node).unwrap();
            by_lpq.insert(paper_number(id));
        }
    }
    // positions only: every call of Figure 1 is on a query path
    assert_eq!(by_lpq, (1u32..=10).collect::<BTreeSet<_>>());
    assert!(by_lpq.is_superset(&retrieved_by_nfqs(false)));
    assert!(retrieved_by_nfqs(false).is_superset(&retrieved_by_nfqs(true)));
}

#[test]
fn documents_stay_schema_valid_throughout_the_rewriting() {
    let s = figure1();
    assert!(validate(&s.doc, &s.schema).is_empty());
    let mut doc = s.doc.clone();
    let q = figure4_query();
    let report = Engine::new(&s.registry, EngineConfig::naive())
        .with_schema(&s.schema)
        .evaluate(&mut doc, &q);
    assert!(!report.stats.truncated);
    // the fully materialized document still conforms to τ
    let errors = validate(&doc, &s.schema);
    assert!(errors.is_empty(), "{errors:?}");
    // and contains no calls at all
    assert!(doc.calls().is_empty());
}

#[test]
fn full_result_is_the_snapshot_of_the_complete_document() {
    // Section 2: the full result is the snapshot result on the full state
    let s = figure1();
    let q = figure4_query();
    // materialize by hand
    let mut full = s.doc.clone();
    loop {
        let calls = full.calls();
        if calls.is_empty() {
            break;
        }
        let c = calls[0];
        let (_, svc) = full.call_info(c).unwrap();
        let out = s
            .registry
            .invoke(svc.as_str(), full.children_to_forest(c), None)
            .unwrap();
        full.splice_call(c, &out.result);
    }
    let by_hand = activexml::query::render_result(&full, &eval(&q, &full))
        .into_iter()
        .collect::<BTreeSet<_>>();
    // lazy engine
    let s2 = figure1();
    let mut lazy_doc = s2.doc;
    let report = Engine::new(&s2.registry, EngineConfig::default())
        .with_schema(&s2.schema)
        .evaluate(&mut lazy_doc, &q);
    let by_engine = activexml::query::render_result(&lazy_doc, &report.result)
        .into_iter()
        .collect::<BTreeSet<_>>();
    assert_eq!(by_hand, by_engine);
}
