//! Property tests for the observability stream: on random generated
//! scenarios (with and without injected faults, across strategies), every
//! accounting identity between the trace, the metric aggregator and
//! `EngineStats` must hold, and the trace oracle must come back clean.

use activexml::core::{Engine, EngineConfig, EngineStats, HedgeConfig, ShedConfig};
use activexml::gen::{figure4_query, generate, ScenarioParams};
use activexml::obs::{aggregate, check_all, Event, EventKind, RingSink};
use activexml::services::{FaultProfile, NetProfile};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn config_matrix() -> Vec<EngineConfig> {
    vec![
        EngineConfig::naive(),
        EngineConfig {
            parallel: true,
            ..EngineConfig::lpq()
        },
        EngineConfig::nfq_plain(),
        EngineConfig::default(),
        EngineConfig {
            real_threads: true,
            ..EngineConfig::default()
        },
        // everything on: deadline, hedging and shedding compose with the
        // fault layer without breaking a single accounting identity
        EngineConfig {
            real_threads: true,
            deadline_ms: 90.0,
            hedge: HedgeConfig {
                threshold_ms: 8.0,
                latency_factor: 3.0,
            },
            shed: ShedConfig {
                max_inflight_per_batch: 6,
                ewma_limit_ms: 400.0,
            },
            ..EngineConfig::default()
        },
    ]
}

fn run_traced(
    params: &ScenarioParams,
    config: EngineConfig,
    fault: Option<FaultProfile>,
) -> (Vec<Event>, EngineStats) {
    let mut sc = generate(params);
    sc.registry.set_default_profile(NetProfile::latency(5.0));
    if let Some(f) = fault {
        sc.registry.set_default_fault_profile(f);
    }
    let ring = RingSink::unbounded();
    let engine = Engine::new(&sc.registry, config)
        .with_schema(&sc.schema)
        .with_observer(&ring);
    let report = engine.evaluate(&mut sc.doc, &figure4_query());
    (ring.events(), report.stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn trace_and_stats_agree_on_random_scenarios(
        seed in 0u64..10_000,
        hotels in 1usize..25,
        intensional_rating_fraction in 0.0f64..1.0,
        intensional_restos_fraction in 0.0f64..1.0,
        cfg_idx in 0usize..6,
        fault_seed in 0u64..100,   // 0 = fault-free
    ) {
        // (the vendored proptest caps strategies at 6-tuples)
        let fail_prob = (fault_seed % 7) as f64 / 10.0;
        let params = ScenarioParams {
            seed,
            hotels,
            intensional_rating_fraction,
            intensional_restos_fraction,
            ..Default::default()
        };
        let fault = (fault_seed > 0).then(|| FaultProfile::chaos(fault_seed, fail_prob));
        let config = config_matrix().swap_remove(cfg_idx);
        let (events, stats) = run_traced(&params, config, fault);

        // the full oracle: ordering, laziness, layer order, clock
        // accounting and every stats identity
        let violations = check_all(&events, Some(&stats.view()));
        prop_assert!(
            violations.is_empty(),
            "oracle violations (seed={}, cfg={}, fseed={}):\n{}",
            seed, cfg_idx, fault_seed,
            violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\n")
        );

        // the satellite identities, asserted directly from the raw stream
        let mut invoked_by_service: BTreeMap<&str, usize> = BTreeMap::new();
        let (mut attempt_events, mut failed, mut degraded) = (0usize, 0usize, false);
        for e in &events {
            degraded |= e.is_degradation();
            match &e.kind {
                EventKind::Invocation { service, cached, ok, attempts, .. } => {
                    if *cached {
                        // cache hits never count as invocations
                        prop_assert_eq!(*attempts, 0);
                        prop_assert!(*ok);
                    } else if *ok {
                        // successes only: `invoked_by_service` (and
                        // `calls_invoked`) never count permanent failures
                        *invoked_by_service.entry(service.as_str()).or_default() += 1;
                    } else {
                        failed += 1;
                    }
                }
                EventKind::Attempt { .. } => attempt_events += 1,
                _ => {}
            }
        }
        prop_assert_eq!(
            invoked_by_service.values().sum::<usize>(),
            stats.calls_invoked,
            "calls_invoked must equal the per-service invocation sum"
        );
        prop_assert_eq!(failed, stats.failed_calls);
        prop_assert_eq!(attempt_events, stats.call_attempts);
        prop_assert!(
            stats.call_attempts >= stats.calls_invoked + stats.failed_calls,
            "every invocation outcome consumes at least one attempt"
        );
        prop_assert_eq!(
            stats.is_complete(), !degraded,
            "is_complete must mirror the absence of degradation events"
        );

        // the aggregator agrees with the engine's own accounting
        let report = aggregate(&events);
        prop_assert_eq!(report.queries, 1);
        prop_assert_eq!(report.calls_invoked, stats.calls_invoked);
        prop_assert!((report.sim_time_ms - stats.sim_time_ms).abs() < 1e-6);
        // aggregator's per-service `invoked` includes permanent failures;
        // netting them out recovers the engine's success-only counter
        prop_assert_eq!(
            report
                .services
                .values()
                .map(|m| m.invoked - m.failed)
                .sum::<usize>(),
            stats.calls_invoked
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The hot-path evaluator flags are pure CPU trades: on random chaos
    /// scenarios, the seed evaluator (string compares, no index), the
    /// interned evaluator, the indexed evaluator and the delta-scoped
    /// incremental path must produce byte-identical traces, identical
    /// answers and identical engine accounting. (Incremental detection
    /// legitimately changes only its own counters: evaluations skipped or
    /// delta-scoped instead of performed.)
    #[test]
    fn eval_modes_are_equivalent(
        seed in 0u64..10_000,
        hotels in 1usize..25,
        intensional_rating_fraction in 0.0f64..1.0,
        intensional_restos_fraction in 0.0f64..1.0,
        fault_seed in 0u64..100,   // 0 = fault-free
        plain in any::<bool>(), // pure NFQA vs the typed default
    ) {
        use activexml::obs::to_jsonl;
        use activexml::query::EvalOptions;

        let fail_prob = (fault_seed % 7) as f64 / 10.0;
        let params = ScenarioParams {
            seed,
            hotels,
            intensional_rating_fraction,
            intensional_restos_fraction,
            ..Default::default()
        };
        let fault = (fault_seed > 0).then(|| FaultProfile::chaos(fault_seed, fail_prob));
        let base = if plain {
            EngineConfig::nfq_plain()
        } else {
            EngineConfig::default()
        };
        let modes: Vec<(&str, bool, EvalOptions)> = vec![
            ("seed", false, EvalOptions { interning: false, index: false }),
            ("interned", false, EvalOptions { interning: true, index: false }),
            ("interned+index", false, EvalOptions { interning: true, index: true }),
            ("delta", true, EvalOptions { interning: true, index: true }),
        ];
        let mut reference: Option<(String, EngineStats, String)> = None;
        for (name, incremental, opts) in modes {
            let config = EngineConfig {
                incremental_detection: incremental,
                eval_options: opts,
                ..base.clone()
            };
            let mut sc = generate(&params);
            sc.registry.set_default_profile(NetProfile::latency(5.0));
            if let Some(f) = fault {
                sc.registry.set_default_fault_profile(f);
            }
            let ring = RingSink::unbounded();
            let engine = Engine::new(&sc.registry, config)
                .with_schema(&sc.schema)
                .with_observer(&ring);
            let report = engine.evaluate(&mut sc.doc, &figure4_query());
            let answers = format!(
                "{:?}",
                activexml::query::render_result(&sc.doc, &report.result)
            );
            let trace = to_jsonl(&ring.events());
            match &reference {
                None => reference = Some((answers, report.stats, trace)),
                Some((ref_answers, ref_stats, ref_trace)) => {
                    prop_assert_eq!(
                        &answers, ref_answers,
                        "{} changed the answer (seed={}, fseed={})", name, seed, fault_seed
                    );
                    prop_assert_eq!(
                        &trace, ref_trace,
                        "{} changed the trace bytes (seed={}, fseed={})", name, seed, fault_seed
                    );
                    let s = &report.stats;
                    prop_assert_eq!(s.calls_invoked, ref_stats.calls_invoked, "{}", name);
                    prop_assert_eq!(s.failed_calls, ref_stats.failed_calls, "{}", name);
                    prop_assert_eq!(s.call_attempts, ref_stats.call_attempts, "{}", name);
                    prop_assert_eq!(s.rounds, ref_stats.rounds, "{}", name);
                    prop_assert_eq!(s.bytes_transferred, ref_stats.bytes_transferred, "{}", name);
                    prop_assert!((s.sim_time_ms - ref_stats.sim_time_ms).abs() < 1e-9, "{}", name);
                    prop_assert_eq!(s.pushed_calls, ref_stats.pushed_calls, "{}", name);
                    prop_assert_eq!(s.queries_pruned, ref_stats.queries_pruned, "{}", name);
                    prop_assert_eq!(s.is_complete(), ref_stats.is_complete(), "{}", name);
                    if !incremental {
                        // same detection discipline ⇒ the evaluation count
                        // itself is also invariant (skips/deltas are 0)
                        prop_assert_eq!(s.relevance_evals, ref_stats.relevance_evals, "{}", name);
                        prop_assert_eq!(s.nfq_evals_skipped, 0, "{}", name);
                        prop_assert_eq!(s.nfq_delta_evals, 0, "{}", name);
                    }
                }
            }
        }
    }
}

/// A cached session stream: two identical queries with an infinite
/// validity window — the second run's probes all hit, and the combined
/// stream still satisfies the oracle and the aggregator identities.
#[test]
fn session_stream_accounts_for_cache_hits() {
    use activexml::store::{CacheConfig, DocumentStore, SessionOptions};

    let mut sc = generate(&ScenarioParams::default());
    sc.registry.set_default_profile(NetProfile::latency(5.0));
    let mut store = DocumentStore::with_cache_config(CacheConfig::default());
    store.insert("hotels", sc.doc.clone());
    let ring = RingSink::unbounded();
    let mut session = store
        .session(
            "hotels",
            &sc.registry,
            Some(&sc.schema),
            SessionOptions::default(),
        )
        .expect("document just inserted")
        .with_observer(&ring);

    let q = figure4_query();
    let cold = session.query(&q);
    let warm = session.query(&q);
    assert_eq!(cold.answers, warm.answers, "the cache must be invisible");
    assert!(cold.stats.calls_invoked > 0, "the workload invokes calls");
    assert_eq!(warm.stats.calls_invoked, 0, "the warm run is all hits");
    assert!(warm.stats.cache_hits > 0);

    let events = ring.events();
    let violations = check_all(&events, None);
    assert!(
        violations.is_empty(),
        "session oracle violations:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    let report = aggregate(&events);
    assert_eq!(report.queries, 2);
    assert_eq!(report.complete, 2);
    assert_eq!(report.calls_invoked, cold.stats.calls_invoked);
    let hits: usize = report.services.values().map(|m| m.cache_hits).sum();
    assert_eq!(hits, warm.stats.cache_hits);
}
