//! Linear paths — the spine abstraction behind LPQs (Section 3.1), the
//! `lin` part of NFQs (Section 4.2), the may-influence test (Prop. 3) and
//! the independence condition (✳) of Section 4.4.

use crate::pattern::{EdgeKind, FunMatch, PLabel, PNodeId, Pattern};
use axml_xml::Label;
use std::fmt;

/// The label test of one linear step.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StepTest {
    /// A concrete label.
    Label(Label),
    /// Any label (`*`, variables).
    Any,
}

/// One step of a linear path.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct LinStep {
    /// Edge from the previous step.
    pub edge: EdgeKind,
    /// Label test.
    pub test: StepTest,
}

/// A linear path: a sequence of steps from the document root.
///
/// The *language* of a linear path is the set of label words it matches:
/// `/a//b` matches `a.b`, `a.x.b`, `a.x.y.b`, … — this is the regular
/// language used by Proposition 3.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct LinearPath {
    /// Steps in root-to-leaf order.
    pub steps: Vec<LinStep>,
}

impl LinearPath {
    /// The empty path (denotes the document root itself).
    pub fn empty() -> Self {
        LinearPath::default()
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the path has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Appends a step.
    pub fn push(&mut self, edge: EdgeKind, test: StepTest) {
        self.steps.push(LinStep { edge, test });
    }

    /// The concrete labels mentioned along the path (the relevant alphabet
    /// for automata constructions).
    pub fn labels(&self) -> Vec<Label> {
        self.steps
            .iter()
            .filter_map(|s| match &s.test {
                StepTest::Label(l) => Some(l.clone()),
                StepTest::Any => None,
            })
            .collect()
    }

    /// Path from the pattern root down to `v`. With `include_v` the final
    /// step tests `v`'s own label; otherwise the path stops at `v`'s parent
    /// (the paper's `q_v^lin`, which excludes `v`).
    ///
    /// OR nodes are transparent (they never sit on a root path of an
    /// original query); function pattern nodes contribute an `Any` test.
    pub fn to_node(pattern: &Pattern, v: PNodeId, include_v: bool) -> LinearPath {
        let mut chain = Vec::new();
        let mut cur = Some(v);
        while let Some(n) = cur {
            chain.push(n);
            cur = pattern.parent(n);
        }
        chain.reverse();
        let upto = if include_v {
            chain.len()
        } else {
            chain.len().saturating_sub(1)
        };
        let mut path = LinearPath::empty();
        for &n in &chain[..upto] {
            let node = pattern.node(n);
            let test = match &node.label {
                PLabel::Const(l) => StepTest::Label(l.clone()),
                PLabel::Var(_) | PLabel::Wildcard | PLabel::Fun(_) => StepTest::Any,
                PLabel::Or => continue, // transparent
            };
            let edge = if pattern.parent(n).is_none() {
                EdgeKind::Child
            } else {
                node.edge
            };
            path.push(edge, test);
        }
        path
    }

    /// Builds the LPQ pattern for this path: the path's steps followed by a
    /// star-labeled function node as the output (Section 3.1). When the
    /// path is empty the LPQ is a root-level function node.
    pub fn to_lpq(&self, final_edge: EdgeKind) -> Pattern {
        let mut p = Pattern::new();
        let mut cur: Option<PNodeId> = None;
        for s in &self.steps {
            let label = match &s.test {
                StepTest::Label(l) => PLabel::Const(l.clone()),
                StepTest::Any => PLabel::Wildcard,
            };
            cur = Some(match cur {
                None => {
                    if s.edge == EdgeKind::Descendant {
                        let r = p.set_root(PLabel::Wildcard);
                        p.add_child(r, EdgeKind::Descendant, label)
                    } else {
                        p.set_root(label)
                    }
                }
                Some(c) => p.add_child(c, s.edge, label),
            });
        }
        let f = match cur {
            None => p.set_root(PLabel::Fun(FunMatch::Any)),
            Some(c) => p.add_child(c, final_edge, PLabel::Fun(FunMatch::Any)),
        };
        p.mark_result(f);
        p
    }

    /// Whether this path matches a concrete word of labels (used in tests
    /// as the reference semantics for the automata in `axml-schema`).
    pub fn matches_word(&self, word: &[&str]) -> bool {
        fn go(steps: &[LinStep], word: &[&str]) -> bool {
            match steps.first() {
                None => word.is_empty(),
                Some(s) => {
                    let test_ok = |w: &str| match &s.test {
                        StepTest::Label(l) => l.as_str() == w,
                        StepTest::Any => true,
                    };
                    match s.edge {
                        EdgeKind::Child => {
                            !word.is_empty() && test_ok(word[0]) && go(&steps[1..], &word[1..])
                        }
                        EdgeKind::Descendant => (1..=word.len())
                            .any(|k| test_ok(word[k - 1]) && go(&steps[1..], &word[k..])),
                    }
                }
            }
        }
        go(&self.steps, word)
    }
}

impl fmt::Display for LinearPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.steps.is_empty() {
            return write!(f, "/");
        }
        for s in &self.steps {
            match s.edge {
                EdgeKind::Child => write!(f, "/")?,
                EdgeKind::Descendant => write!(f, "//")?,
            }
            match &s.test {
                StepTest::Label(l) => write!(f, "{l}")?,
                StepTest::Any => write!(f, "*")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    #[test]
    fn root_path_extraction() {
        let q = parse_query("/hotels/hotel/nearby//restaurant/name").unwrap();
        let name = q.result_nodes()[0];
        let with = LinearPath::to_node(&q, name, true);
        assert_eq!(with.to_string(), "/hotels/hotel/nearby//restaurant/name");
        let without = LinearPath::to_node(&q, name, false);
        assert_eq!(without.to_string(), "/hotels/hotel/nearby//restaurant");
    }

    #[test]
    fn variables_and_wildcards_become_any() {
        let q = parse_query("/a/*/b[c=$X] -> $X").unwrap();
        let x = q.result_nodes()[0];
        let p = LinearPath::to_node(&q, x, true);
        assert_eq!(p.to_string(), "/a/*/b/c/*");
    }

    #[test]
    fn lpq_construction() {
        let q = parse_query("/hotels/hotel").unwrap();
        let hotel = q.result_nodes()[0];
        let lin = LinearPath::to_node(&q, hotel, false);
        let lpq = lin.to_lpq(EdgeKind::Child);
        // /hotels/()
        assert_eq!(lpq.len(), 2);
        let out = lpq.result_nodes()[0];
        assert!(matches!(lpq.node(out).label, PLabel::Fun(FunMatch::Any)));
    }

    #[test]
    fn empty_path_lpq_is_root_function() {
        let lpq = LinearPath::empty().to_lpq(EdgeKind::Child);
        assert_eq!(lpq.len(), 1);
        assert!(matches!(
            lpq.node(lpq.root()).label,
            PLabel::Fun(FunMatch::Any)
        ));
    }

    #[test]
    fn word_matching_reference_semantics() {
        let q = parse_query("/a//b/c").unwrap();
        let c = q.result_nodes()[0];
        let p = LinearPath::to_node(&q, c, true);
        assert!(p.matches_word(&["a", "b", "c"]));
        assert!(p.matches_word(&["a", "x", "y", "b", "c"]));
        assert!(!p.matches_word(&["a", "c"]));
        assert!(!p.matches_word(&["a", "b", "c", "d"]));
        assert!(!p.matches_word(&[]));
    }

    #[test]
    fn descendant_step_requires_at_least_one_label() {
        let q = parse_query("/a//b").unwrap();
        let b = q.result_nodes()[0];
        let p = LinearPath::to_node(&q, b, true);
        assert!(!p.matches_word(&["a"]));
        assert!(p.matches_word(&["a", "b"]));
    }
}
