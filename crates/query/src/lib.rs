#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # axml-query — tree-pattern queries over Active XML documents
//!
//! The query model of Section 2 of *Lazy Query Evaluation for Active XML*
//! (SIGMOD 2004): tree patterns with constants, variables, `*`, descendant
//! edges and result nodes, capturing the core tree-pattern fragment of
//! XPath/XQuery; *extended* patterns add OR nodes and function nodes, the
//! machinery behind the paper's node-focused queries (NFQs).
//!
//! ```
//! use axml_query::{parse_query, eval};
//! use axml_xml::parse;
//!
//! let doc = parse("<hotels><hotel><name>BW</name><rating>5</rating></hotel></hotels>").unwrap();
//! let q = parse_query("/hotels/hotel[rating=\"5\"]/name").unwrap();
//! assert_eq!(eval(&q, &doc).len(), 1);
//! ```

pub mod construct;
pub mod display;
pub mod eval;
pub mod linear;
pub mod parser;
pub mod pattern;
pub mod plan;

pub use construct::construct_results;
pub use display::render;
pub use eval::{
    contributing_nodes, embeddings, eval, eval_with, matches, render_result, render_result_refs,
    seed_eval, EvalOptions, Matcher, ResultTuple, SnapshotResult,
};
pub use linear::{LinStep, LinearPath, StepTest};
pub use parser::{parse_query, QueryParseError};
pub use pattern::{EdgeKind, FunMatch, PLabel, PNode, PNodeId, Pattern};
pub use plan::{PlanBinding, PlanScratch, QueryPlan};
