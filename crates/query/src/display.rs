//! Human-readable rendering of patterns (for logs, error messages and
//! debugging). The output resembles the parser's input syntax; extended
//! constructs (OR nodes, refined function lists) use `(a | b)` and
//! `{f,g}()` forms that the parser does not read back.

use crate::pattern::{EdgeKind, FunMatch, PLabel, PNodeId, Pattern};
use std::fmt::Write;

/// Renders a pattern as an XPath-like string.
pub fn render(p: &Pattern) -> String {
    if p.is_empty() {
        return String::from("(empty)");
    }
    let mut out = String::new();
    render_node(p, p.root(), true, &mut out);
    out
}

fn render_node(p: &Pattern, id: PNodeId, absolute: bool, out: &mut String) {
    let n = p.node(id);
    if absolute || p.parent(id).is_some() {
        match (absolute, n.edge) {
            (true, _) => out.push('/'),
            (false, EdgeKind::Child) => out.push('/'),
            (false, EdgeKind::Descendant) => out.push_str("//"),
        }
        if absolute && n.edge == EdgeKind::Descendant && p.parent(id).is_some() {
            out.push('/');
        }
    }
    render_label(p, id, out);
    if n.is_result {
        out.push('!');
    }
    // OR nodes already render their branches (with subtrees) inline
    if !matches!(n.label, PLabel::Or) {
        for &c in &n.children {
            out.push('[');
            render_node(p, c, false, out);
            out.push(']');
        }
    }
}

fn render_label(p: &Pattern, id: PNodeId, out: &mut String) {
    match &p.node(id).label {
        PLabel::Const(l) => {
            if l.as_str()
                .chars()
                .all(|c| c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | '@' | ':'))
                && !l.is_empty()
            {
                out.push_str(l.as_str());
            } else {
                let _ = write!(out, "\"{l}\"");
            }
        }
        PLabel::Var(v) => {
            let _ = write!(out, "${v}");
        }
        PLabel::Wildcard => out.push('*'),
        PLabel::Fun(FunMatch::Any) => out.push_str("*()"),
        PLabel::Fun(FunMatch::OneOf(ns)) => {
            if ns.len() == 1 {
                let _ = write!(out, "{}()", ns[0]);
            } else {
                out.push('{');
                for (i, n) in ns.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(n.as_str());
                }
                out.push_str("}()");
            }
        }
        PLabel::Or => {
            out.push('(');
            let children = &p.node(id).children;
            for (i, &c) in children.iter().enumerate() {
                if i > 0 {
                    out.push_str(" | ");
                }
                render_or_branch(p, c, out);
            }
            out.push(')');
        }
    }
}

fn render_or_branch(p: &Pattern, id: PNodeId, out: &mut String) {
    render_label(p, id, out);
    if p.node(id).is_result {
        out.push('!');
    }
    for &c in &p.node(id).children {
        out.push('[');
        render_node(p, c, false, out);
        out.push(']');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::pattern::{EdgeKind, FunMatch, PLabel, Pattern};

    #[test]
    fn renders_simple_query() {
        let q = parse_query("/a/b[c=\"v 1\"]//d").unwrap();
        let s = render(&q);
        assert!(s.contains("/a"), "{s}");
        assert!(s.contains("\"v 1\""), "{s}");
        assert!(s.contains("//d") || s.contains("d!"), "{s}");
    }

    #[test]
    fn renders_or_and_functions() {
        let mut p = Pattern::new();
        let r = p.set_root(PLabel::Const("r".into()));
        let a = p.add_child(r, EdgeKind::Child, PLabel::Const("a".into()));
        let or = p.wrap_in_or(a);
        p.add_child(or, EdgeKind::Child, PLabel::Fun(FunMatch::Any));
        let s = render(&p);
        assert!(s.contains("(a | *())"), "{s}");
    }

    #[test]
    fn renders_refined_function_lists() {
        let mut p = Pattern::new();
        let r = p.set_root(PLabel::Const("r".into()));
        let f = p.add_child(
            r,
            EdgeKind::Child,
            PLabel::Fun(FunMatch::OneOf(vec!["f".into(), "g".into()])),
        );
        p.mark_result(f);
        let s = render(&p);
        assert!(s.contains("{f,g}()!"), "{s}");
    }
}
