//! Tree-pattern queries (Section 2 of the paper).
//!
//! A tree pattern is a labeled tree whose nodes carry variable names,
//! constants (element names / data values), or `*`; some edges are
//! *descendant* edges and some nodes are *result* nodes. *Extended* patterns
//! additionally have OR nodes (a choice among children subtrees) and
//! function nodes (matching the document's function-call nodes) — these are
//! the machinery used to build the paper's NFQs.

use axml_xml::Label;
use std::fmt;

/// Index of a node inside a [`Pattern`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PNodeId(pub(crate) u32);

impl PNodeId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Edge type from a node's parent (Child for the root, by convention).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// parent-child relationship
    Child,
    /// strict ancestor-descendant relationship
    Descendant,
}

/// Which function names a function pattern node accepts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FunMatch {
    /// The star-labeled function node `()` — any service.
    Any,
    /// A refined alternative: only the listed services (Section 5).
    OneOf(Vec<Label>),
}

impl FunMatch {
    /// Does this function test accept the given service name?
    pub fn accepts(&self, service: &str) -> bool {
        match self {
            FunMatch::Any => true,
            FunMatch::OneOf(names) => names.iter().any(|n| n.as_str() == service),
        }
    }
}

/// The label of a pattern node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PLabel {
    /// Constant: matches a data node with exactly this label
    /// (element name or data value).
    Const(Label),
    /// Variable: matches any data node; all occurrences of the same
    /// variable must map to nodes with identical labels.
    Var(Label),
    /// `*`: matches any data node.
    Wildcard,
    /// OR node: transparent choice among its children subtrees.
    Or,
    /// Function node: matches a function-call node of the document.
    Fun(FunMatch),
}

/// One pattern node.
#[derive(Clone, Debug)]
pub struct PNode {
    /// Node label / kind.
    pub label: PLabel,
    /// Edge from the parent (ignored for the root).
    pub edge: EdgeKind,
    /// Children, in order (order is irrelevant to the semantics).
    pub children: Vec<PNodeId>,
    /// Whether this node is a result (output) node.
    pub is_result: bool,
    pub(crate) parent: Option<PNodeId>,
}

/// A (possibly extended) tree-pattern query.
#[derive(Clone, Debug, Default)]
pub struct Pattern {
    nodes: Vec<PNode>,
    root: Option<PNodeId>,
}

impl Pattern {
    /// An empty pattern; add a root with [`Pattern::set_root`].
    pub fn new() -> Self {
        Pattern::default()
    }

    /// Creates the root node.
    ///
    /// # Panics
    /// Panics if a root already exists.
    pub fn set_root(&mut self, label: PLabel) -> PNodeId {
        assert!(self.root.is_none(), "pattern already has a root");
        let id = self.push(PNode {
            label,
            edge: EdgeKind::Child,
            children: Vec::new(),
            is_result: false,
            parent: None,
        });
        self.root = Some(id);
        id
    }

    /// Adds a child node under `parent` with the given edge kind.
    pub fn add_child(&mut self, parent: PNodeId, edge: EdgeKind, label: PLabel) -> PNodeId {
        let id = self.push(PNode {
            label,
            edge,
            children: Vec::new(),
            is_result: false,
            parent: Some(parent),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    fn push(&mut self, n: PNode) -> PNodeId {
        let id = PNodeId(self.nodes.len() as u32);
        self.nodes.push(n);
        id
    }

    /// Marks a node as a result node.
    pub fn mark_result(&mut self, id: PNodeId) {
        self.nodes[id.index()].is_result = true;
    }

    /// The root node.
    ///
    /// # Panics
    /// Panics on an empty pattern.
    pub fn root(&self) -> PNodeId {
        self.root.expect("empty pattern")
    }

    /// Immutable access to a node.
    pub fn node(&self, id: PNodeId) -> &PNode {
        &self.nodes[id.index()]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the pattern has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All node ids in creation order (root first).
    pub fn node_ids(&self) -> impl Iterator<Item = PNodeId> + '_ {
        (0..self.nodes.len() as u32).map(PNodeId)
    }

    /// The result nodes, in creation order.
    pub fn result_nodes(&self) -> Vec<PNodeId> {
        self.node_ids()
            .filter(|&id| self.node(id).is_result)
            .collect()
    }

    /// Parent of a node.
    pub fn parent(&self, id: PNodeId) -> Option<PNodeId> {
        self.node(id).parent
    }

    /// Variable names appearing at least twice (the *join variables*;
    /// single-occurrence variables behave like `*` plus a binding).
    pub fn join_variables(&self) -> Vec<Label> {
        let mut counts: std::collections::HashMap<&Label, usize> = Default::default();
        for id in self.node_ids() {
            if let PLabel::Var(v) = &self.node(id).label {
                *counts.entry(v).or_default() += 1;
            }
        }
        let mut out: Vec<Label> = counts
            .into_iter()
            .filter(|&(_, c)| c >= 2)
            .map(|(v, _)| v.clone())
            .collect();
        out.sort();
        out
    }

    /// `true` if any node is an OR or function node (an *extended* query).
    pub fn is_extended(&self) -> bool {
        self.node_ids()
            .any(|id| matches!(self.node(id).label, PLabel::Or | PLabel::Fun(_)))
    }

    /// Deep-copies the subtree rooted at `sub` into a fresh pattern whose
    /// root keeps `sub`'s label and result flag (used for `sub_q_v` when
    /// pushing queries, Section 7).
    pub fn subtree(&self, sub: PNodeId) -> Pattern {
        let mut p = Pattern::new();
        let root = p.set_root(self.node(sub).label.clone());
        p.nodes[root.index()].is_result = self.node(sub).is_result;
        self.copy_children(sub, &mut p, root);
        p
    }

    /// Deep-copies `other` (whole pattern) as a new child subtree of
    /// `parent`, connected by `edge`. Returns the new subtree root.
    pub fn append_pattern(&mut self, parent: PNodeId, edge: EdgeKind, other: &Pattern) -> PNodeId {
        let oroot = other.root();
        let new_root = self.add_child(parent, edge, other.node(oroot).label.clone());
        self.nodes[new_root.index()].is_result = other.node(oroot).is_result;
        other.copy_children(oroot, self, new_root);
        new_root
    }

    fn copy_children(&self, from: PNodeId, into: &mut Pattern, to: PNodeId) {
        for &c in &self.node(from).children {
            let n = self.node(c);
            let nc = into.add_child(to, n.edge, n.label.clone());
            into.nodes[nc.index()].is_result = n.is_result;
            self.copy_children(c, into, nc);
        }
    }

    /// Structural deep clone that also returns the id mapping old → new.
    pub fn clone_with_map(&self) -> (Pattern, Vec<PNodeId>) {
        // ids are dense and copied in order, so the mapping is the identity;
        // still produce it explicitly so callers don't rely on that detail.
        let map: Vec<PNodeId> = self.node_ids().collect();
        (self.clone(), map)
    }

    /// Removes the subtree rooted at `id` (must not be the root).
    pub fn remove_subtree(&mut self, id: PNodeId) {
        let parent = self
            .node(id)
            .parent
            .expect("cannot remove the pattern root");
        self.nodes[parent.index()].children.retain(|&c| c != id);
        // nodes become unreachable; ids are not compacted (patterns are tiny)
    }

    /// Replaces node `id`'s label in place.
    pub fn set_label(&mut self, id: PNodeId, label: PLabel) {
        self.nodes[id.index()].label = label;
    }

    /// Replaces the node's incoming edge kind.
    pub fn set_edge(&mut self, id: PNodeId, edge: EdgeKind) {
        self.nodes[id.index()].edge = edge;
    }

    /// Inserts a new OR node between `id` and its parent, returning the OR
    /// node id. `id` becomes the OR's first branch; the OR inherits `id`'s
    /// incoming edge. Used by the NFQ construction (Figure 5, step 4).
    pub fn wrap_in_or(&mut self, id: PNodeId) -> PNodeId {
        let parent = self.node(id).parent.expect("cannot wrap the root in an OR");
        let edge = self.node(id).edge;
        let or = self.push(PNode {
            label: PLabel::Or,
            edge,
            children: vec![id],
            is_result: false,
            parent: Some(parent),
        });
        let slot = self.nodes[parent.index()]
            .children
            .iter()
            .position(|&c| c == id)
            .expect("child link broken");
        self.nodes[parent.index()].children[slot] = or;
        self.nodes[id.index()].parent = Some(or);
        or
    }

    /// Checks internal link consistency (tests).
    pub fn check_integrity(&self) -> Result<(), String> {
        let root = match self.root {
            Some(r) => r,
            None => return Ok(()),
        };
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![(None, root)];
        while let Some((parent, id)) = stack.pop() {
            if seen[id.index()] {
                return Err(format!("{id:?} reachable twice"));
            }
            seen[id.index()] = true;
            if self.node(id).parent != parent {
                return Err(format!("{id:?} has wrong parent link"));
            }
            for &c in &self.node(id).children {
                stack.push((Some(id), c));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig4() -> Pattern {
        // hotel[name="Best Western"][rating="*****"]
        //      /nearby//restaurant[name=$X!][address=$Y!][rating="*****"]
        let mut p = Pattern::new();
        let hotel = p.set_root(PLabel::Const("hotel".into()));
        let name = p.add_child(hotel, EdgeKind::Child, PLabel::Const("name".into()));
        p.add_child(name, EdgeKind::Child, PLabel::Const("Best Western".into()));
        let rating = p.add_child(hotel, EdgeKind::Child, PLabel::Const("rating".into()));
        p.add_child(rating, EdgeKind::Child, PLabel::Const("*****".into()));
        let nearby = p.add_child(hotel, EdgeKind::Child, PLabel::Const("nearby".into()));
        let resto = p.add_child(
            nearby,
            EdgeKind::Descendant,
            PLabel::Const("restaurant".into()),
        );
        let rn = p.add_child(resto, EdgeKind::Child, PLabel::Const("name".into()));
        let x = p.add_child(rn, EdgeKind::Child, PLabel::Var("X".into()));
        p.mark_result(x);
        let ra = p.add_child(resto, EdgeKind::Child, PLabel::Const("address".into()));
        let y = p.add_child(ra, EdgeKind::Child, PLabel::Var("Y".into()));
        p.mark_result(y);
        let rr = p.add_child(resto, EdgeKind::Child, PLabel::Const("rating".into()));
        p.add_child(rr, EdgeKind::Child, PLabel::Const("*****".into()));
        p
    }

    #[test]
    fn build_fig4_pattern() {
        let p = fig4();
        assert_eq!(p.len(), 13);
        assert_eq!(p.result_nodes().len(), 2);
        assert!(!p.is_extended());
        p.check_integrity().unwrap();
    }

    #[test]
    fn join_variables_counts_repeats() {
        let mut p = fig4();
        assert!(p.join_variables().is_empty());
        // add a second occurrence of X
        let root = p.root();
        p.add_child(root, EdgeKind::Child, PLabel::Var("X".into()));
        assert_eq!(p.join_variables(), vec![Label::from("X")]);
    }

    #[test]
    fn subtree_extraction() {
        let p = fig4();
        // find the restaurant node
        let resto = p
            .node_ids()
            .find(|&id| matches!(&p.node(id).label, PLabel::Const(l) if l.as_str() == "restaurant"))
            .unwrap();
        let sub = p.subtree(resto);
        assert_eq!(sub.len(), 7);
        assert!(
            matches!(&sub.node(sub.root()).label, PLabel::Const(l) if l.as_str() == "restaurant")
        );
        assert_eq!(sub.result_nodes().len(), 2);
        sub.check_integrity().unwrap();
    }

    #[test]
    fn wrap_in_or_inserts_transparent_choice() {
        let mut p = fig4();
        let nearby = p
            .node_ids()
            .find(|&id| matches!(&p.node(id).label, PLabel::Const(l) if l.as_str() == "nearby"))
            .unwrap();
        let or = p.wrap_in_or(nearby);
        let f = p.add_child(or, EdgeKind::Child, PLabel::Fun(FunMatch::Any));
        assert!(matches!(p.node(or).label, PLabel::Or));
        assert_eq!(p.node(or).children, vec![nearby, f]);
        assert!(p.is_extended());
        p.check_integrity().unwrap();
    }

    #[test]
    fn remove_subtree_detaches() {
        let mut p = fig4();
        let nearby = p
            .node_ids()
            .find(|&id| matches!(&p.node(id).label, PLabel::Const(l) if l.as_str() == "nearby"))
            .unwrap();
        p.remove_subtree(nearby);
        assert_eq!(p.node(p.root()).children.len(), 2);
        p.check_integrity().unwrap();
    }

    #[test]
    fn fun_match_accepts() {
        assert!(FunMatch::Any.accepts("anything"));
        let m = FunMatch::OneOf(vec!["getRating".into()]);
        assert!(m.accepts("getRating"));
        assert!(!m.accepts("getHotels"));
    }
}
