//! Construction of result documents from snapshot results.
//!
//! The paper's engine returns query *results* — for integration with the
//! surrounding XML world (serializing answers, exchanging them, feeding
//! them to further queries), this module materializes a snapshot result as
//! an XML document:
//!
//! ```text
//! <results>
//!   <tuple><x>In Delis</x><y>2nd Ave.</y></tuple>
//!   <tuple><x>The Capital</x><y>2nd Ave.</y></tuple>
//! </results>
//! ```
//!
//! Columns are named after the bound variable (lowercased) when the result
//! node is a variable, `col<i>` otherwise. Element bindings copy the whole
//! bound subtree; text bindings copy the value.

use crate::eval::SnapshotResult;
use crate::pattern::{PLabel, Pattern};
use axml_xml::Document;

/// Materializes a snapshot result as a `<results>` document.
///
/// ```
/// use axml_query::{construct_results, eval, parse_query};
/// use axml_xml::{parse, to_xml};
///
/// let doc = parse("<r><p><n>ana</n></p></r>").unwrap();
/// let q = parse_query("/r/p[n=$NAME] -> $NAME").unwrap();
/// let out = construct_results(&doc, &q, &eval(&q, &doc));
/// assert_eq!(to_xml(&out), "<results><tuple><name>ana</name></tuple></results>");
/// ```
pub fn construct_results(doc: &Document, pattern: &Pattern, result: &SnapshotResult) -> Document {
    let mut out = Document::with_root("results");
    let root = out.root();
    let result_nodes = pattern.result_nodes();
    for tuple in &result.tuples {
        let t = out.add_element(root, "tuple");
        for (i, &rn) in result_nodes.iter().enumerate() {
            let Some(&bound) = tuple.get(&rn) else {
                continue;
            };
            let col_name = match &pattern.node(rn).label {
                PLabel::Var(v) => v.to_string().to_lowercase(),
                _ => format!("col{i}"),
            };
            let col = out.add_element(t, col_name);
            if let Some(text) = doc.text_value(bound) {
                out.add_text(col, text.to_string());
            } else {
                out.append_copy(col, doc, bound);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::parser::parse_query;
    use axml_xml::{parse, to_xml};

    #[test]
    fn variable_bindings_become_named_columns() {
        let d =
            parse("<r><p><n>ana</n><a>main st</a></p><p><n>bob</n><a>elm st</a></p></r>").unwrap();
        let q = parse_query("/r/p[n=$NAME][a=$ADDR] -> $NAME,$ADDR").unwrap();
        let res = eval(&q, &d);
        let out = construct_results(&d, &q, &res);
        let xml = to_xml(&out);
        assert!(xml.starts_with("<results>"));
        assert!(
            xml.contains("<tuple><name>ana</name><addr>main st</addr></tuple>"),
            "{xml}"
        );
        assert!(
            xml.contains("<tuple><name>bob</name><addr>elm st</addr></tuple>"),
            "{xml}"
        );
    }

    #[test]
    fn element_bindings_copy_subtrees() {
        let d = parse("<r><show><title>X</title><schedule>20:30</schedule></show></r>").unwrap();
        let q = parse_query("/r/show").unwrap();
        let out = construct_results(&d, &q, &eval(&q, &d));
        let xml = to_xml(&out);
        assert!(
            xml.contains("<col0><show><title>X</title><schedule>20:30</schedule></show></col0>"),
            "{xml}"
        );
    }

    #[test]
    fn empty_result_is_an_empty_results_element() {
        let d = parse("<r/>").unwrap();
        let q = parse_query("/r/missing").unwrap();
        let out = construct_results(&d, &q, &eval(&q, &d));
        assert_eq!(to_xml(&out), "<results/>");
    }

    #[test]
    fn constructed_document_is_parseable() {
        let d = parse("<r><p><n>a&amp;b</n></p></r>").unwrap();
        let q = parse_query("/r/p[n=$V] -> $V").unwrap();
        let out = construct_results(&d, &q, &eval(&q, &d));
        let reparsed = parse(&to_xml(&out)).unwrap();
        assert_eq!(to_xml(&reparsed), to_xml(&out));
    }
}
