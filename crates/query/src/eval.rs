//! Embedding-based evaluation of (extended) tree patterns — the *snapshot
//! semantics* of Definition 1.
//!
//! An embedding maps pattern nodes to document nodes, root to root,
//! preserving parent-child / ancestor-descendant edges, mapping constants to
//! data nodes with the same label, with all occurrences of a variable mapped
//! to nodes carrying identical labels. Extended patterns add OR nodes
//! (transparent choice) and function nodes (matched against the document's
//! function-call nodes).
//!
//! Design notes:
//! * Descendant navigation never descends **below** a function node: the
//!   parameters of a pending call are inputs of the service, not document
//!   content (a call node itself is still visible, so `//()` finds calls at
//!   any depth).
//! * Condition subtrees that contain neither result nodes nor join
//!   variables are checked by a memoized boolean match; full enumeration
//!   happens only where bindings are observable. This keeps the evaluator
//!   polynomial on join-free queries.
//! * Hot-path engineering: pattern step tests are compiled against a
//!   document's interned symbol table, so the per-node label test is a
//!   `u32` compare; join variables bind symbols, not owned strings;
//!   descendant steps can enumerate candidates from the document's
//!   label→node index instead of scanning subtrees; and memo tables can
//!   be reused across evaluations via [`PlanScratch`]. Compilation
//!   happens once per pattern in a [`crate::plan::QueryPlan`], which
//!   rebinds to each document by a symbol-table remap; the convenience
//!   entry points here compile transiently. The [`EvalOptions`] toggles
//!   exist for debugging and benchmarking — every mode computes the same
//!   result, and [`seed_eval`] is the executable spec they are all
//!   checked against.
//! * Evaluation is generic over [`DataSource`], so the same code (and the
//!   same compiled plan) runs over the mutable arena [`Document`], a
//!   frozen COW `DocSnapshot`, or any other node store.

use crate::pattern::{EdgeKind, FunMatch, PLabel, PNodeId, Pattern};
use crate::plan::PlanScratch;
use axml_xml::{DataSource, NodeId};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One result of the query: the restriction of an embedding to the result
/// nodes (pattern node → document node).
pub type ResultTuple = BTreeMap<PNodeId, NodeId>;

/// The snapshot result `q(d)`: the set of results of all embeddings.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SnapshotResult {
    /// Distinct result tuples.
    pub tuples: BTreeSet<ResultTuple>,
}

impl SnapshotResult {
    /// Whether no embedding exists.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Number of distinct result tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// The document nodes bound to a given pattern node across all tuples.
    pub fn bindings_of(&self, p: PNodeId) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = Vec::with_capacity(self.tuples.len());
        v.extend(self.tuples.iter().filter_map(|t| t.get(&p).copied()));
        v.sort();
        v.dedup();
        v
    }
}

/// Renders a snapshot result as borrowed label texts (one row per tuple).
/// The zero-copy counterpart of [`render_result`].
pub fn render_result_refs<'d, D: DataSource>(doc: &'d D, r: &SnapshotResult) -> Vec<Vec<&'d str>> {
    let mut out = Vec::with_capacity(r.tuples.len());
    for t in &r.tuples {
        let mut row = Vec::with_capacity(t.len());
        row.extend(t.values().map(|&n| doc.label(n)));
        out.push(row);
    }
    out
}

/// Renders a snapshot result as readable strings (label of each bound node).
pub fn render_result<D: DataSource>(doc: &D, r: &SnapshotResult) -> Vec<Vec<String>> {
    render_result_refs(doc, r)
        .into_iter()
        .map(|row| row.into_iter().map(str::to_string).collect())
        .collect()
}

/// Debug/bench toggles for the evaluator's hot-path machinery. Every
/// combination computes the same result — the flags only trade CPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvalOptions {
    /// Compare labels as interned `u32` symbols (compiled per pattern ×
    /// document) instead of string compares.
    pub interning: bool,
    /// Let descendant steps enumerate candidates from the document's
    /// label→node index instead of scanning subtrees (used where the index
    /// is the cheaper side; see `Evaluator::desc_candidates`).
    pub index: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            interning: true,
            index: true,
        }
    }
}

/// Evaluates `q` on `d` and returns the snapshot result.
pub fn eval<D: DataSource>(pattern: &Pattern, doc: &D) -> SnapshotResult {
    eval_with(
        pattern,
        doc,
        EvalOptions::default(),
        &mut PlanScratch::default(),
    )
}

/// [`eval`] with explicit hot-path options and reusable memo allocations.
/// Compiles the pattern's tests transiently; callers that evaluate the
/// same pattern repeatedly should compile a [`crate::plan::QueryPlan`]
/// once and use [`crate::plan::QueryPlan::eval_with`] instead.
pub fn eval_with<D: DataSource>(
    pattern: &Pattern,
    doc: &D,
    opts: EvalOptions,
    scratch: &mut PlanScratch,
) -> SnapshotResult {
    if pattern.is_empty() {
        return SnapshotResult::default();
    }
    let mut ev = Evaluator::with_scratch(pattern, doc, opts, scratch);
    let mut out = SnapshotResult::default();
    for &root in doc.roots() {
        for (_, frag) in ev.embed(pattern.root(), root, &VarEnv::default()) {
            out.tuples.insert(frag);
        }
    }
    ev.release(scratch);
    out
}

/// The **executable spec**: the seed evaluator — string-compared labels,
/// no label→node index, fresh memo tables. Every optimized mode (interned
/// tests, index-driven descendant steps, compiled plans with symbol-table
/// remaps) must produce exactly this result; the differential
/// plan-equivalence oracle diffs against it.
pub fn seed_eval<D: DataSource>(pattern: &Pattern, doc: &D) -> SnapshotResult {
    eval_with(
        pattern,
        doc,
        EvalOptions {
            interning: false,
            index: false,
        },
        &mut PlanScratch::default(),
    )
}

/// `true` iff at least one embedding of `q` in `d` exists.
pub fn matches<D: DataSource>(pattern: &Pattern, doc: &D) -> bool {
    if pattern.is_empty() {
        return false;
    }
    let mut ev = Evaluator::new(pattern, doc);
    doc.roots().iter().any(|&r| {
        if ev.needs_enum[pattern.root().index()] {
            !ev.embed(pattern.root(), r, &VarEnv::default()).is_empty()
        } else {
            ev.smatch(pattern.root(), r)
        }
    })
}

/// All document nodes that *contribute* to `q(d)` (Section 2): images of
/// pattern nodes under some embedding, plus the nodes on the document paths
/// realizing descendant edges. This is the "grey area" of Figure 3 and the
/// basis of the pruned-result mode when pushing queries (Section 7).
pub fn contributing_nodes<D: DataSource>(
    pattern: &Pattern,
    doc: &D,
) -> std::collections::HashSet<NodeId> {
    let mut out = std::collections::HashSet::new();
    if pattern.is_empty() {
        return out;
    }
    let mut ev = Evaluator::new(pattern, doc);
    for &root in doc.roots() {
        let embeddings = ev.embed_full(pattern.root(), root, &VarEnv::default());
        for emb in embeddings {
            for (&p, &v) in &emb {
                out.insert(v);
                // close the path up to the image of the parent pattern node
                if let Some(pp) = pattern.parent(p) {
                    if let Some(&pv) = emb.get(&pp) {
                        let mut cur = doc.parent(v);
                        while let Some(n) = cur {
                            if n == pv {
                                break;
                            }
                            out.insert(n);
                            cur = doc.parent(n);
                        }
                    }
                }
            }
        }
    }
    out
}

/// Enumerates the *full embeddings* of the pattern (every pattern node's
/// image). OR nodes map to the image of their chosen branch. Exponential in
/// the worst case — intended for provider-side pruning of (small) service
/// results, not for document-scale evaluation. Candidates are enumerated in
/// document order, so the output order is stable across evaluator modes.
pub fn embeddings<D: DataSource>(pattern: &Pattern, doc: &D) -> Vec<BTreeMap<PNodeId, NodeId>> {
    let mut out = Vec::new();
    if pattern.is_empty() {
        return out;
    }
    let mut ev = Evaluator::new(pattern, doc);
    for &root in doc.roots() {
        out.extend(ev.embed_full(pattern.root(), root, &VarEnv::default()));
    }
    out
}

/// A reusable join-blind structural matcher over one `(pattern, document)`
/// pair, exposing node-level match tests with memoization. Used by the
/// F-guide's residual filtering (Section 6.2), where candidate call nodes
/// are aligned against an NFQ's path and the side conditions are checked
/// per document node.
pub struct Matcher<'a, D: DataSource> {
    ev: Evaluator<'a, D>,
}

impl<'a, D: DataSource> Matcher<'a, D> {
    /// Creates a matcher with default [`EvalOptions`].
    pub fn new(pattern: &'a Pattern, doc: &'a D) -> Self {
        Matcher::with_options(pattern, doc, EvalOptions::default())
    }

    /// Creates a matcher with explicit hot-path options.
    pub fn with_options(pattern: &'a Pattern, doc: &'a D, opts: EvalOptions) -> Self {
        Matcher {
            ev: Evaluator::with_opts(pattern, doc, opts),
        }
    }

    /// Join-blind: can pattern node `p`'s subtree match at document node
    /// `v`?
    pub fn matches_at(&mut self, p: PNodeId, v: NodeId) -> bool {
        self.ev.smatch(p, v)
    }

    /// Label-only test: does `p`'s own label accept `v`, ignoring `p`'s
    /// children? (OR nodes test their branches' labels.)
    pub fn label_matches(&mut self, p: PNodeId, v: NodeId) -> bool {
        if let PLabel::Or = self.ev.pat.node(p).label {
            let pat = self.ev.pat;
            return pat
                .node(p)
                .children
                .iter()
                .any(|&b| self.label_matches(b, v));
        }
        self.ev.local_ok(p, v)
    }

    /// Does some child of `v` match pattern node `p` (join-blind)?
    pub fn child_matches(&mut self, p: PNodeId, v: NodeId) -> bool {
        let doc = self.ev.doc;
        doc.children(v).iter().any(|&u| self.ev.smatch(p, u))
    }

    /// Does some strict descendant of `v` match pattern node `p`
    /// (join-blind, not descending below function nodes)?
    pub fn descendant_matches(&mut self, p: PNodeId, v: NodeId) -> bool {
        self.ev.desc_exists(p, v)
    }
}

/// Variable environment for join variables: join-variable id (index into
/// the pattern's sorted join-variable list) → required label, as the
/// document's interned symbol. Symbol equality coincides with label-text
/// equality within one document, so this is equivalent to the textual
/// environment it replaces — without owned strings.
type VarEnv = BTreeMap<u32, u32>;

/// A pattern-node label test compiled against one document's symbol table.
/// Produced either transiently (one pattern walk per evaluation) or by
/// remapping a [`crate::plan::QueryPlan`]'s plan-local symbols through a
/// per-document binding — both roads yield identical tables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum CTest {
    /// `Const(l)`: a data node whose label symbol equals the payload.
    /// `None` means the text was never interned in this document — the
    /// test can never succeed.
    DataSym(Option<u32>),
    /// `Var`/`Wildcard`: any data node.
    AnyData,
    /// `Fun(Any)`: any function node.
    AnyCall,
    /// `Fun(OneOf)`: a function node whose service symbol is listed
    /// (names absent from the symbol table are dropped — they cannot
    /// match any live call).
    CallOneOf(Vec<u32>),
    /// OR nodes are handled transparently by the traversal.
    Or,
}

/// Buckets larger than this are only enumerated when the scan alternative
/// is the whole forest (the step's context is a root); for small buckets
/// the index wins regardless of context.
const SMALL_BUCKET: usize = 16;

/// Computes the per-node enumeration tables shared by transient
/// compilation and [`crate::plan::QueryPlan`]: `needs_enum` (does the
/// subtree contain a result node or join variable?) and `var_id` (the
/// node's join-variable id, if any).
pub(crate) fn enum_tables(pat: &Pattern) -> (Vec<bool>, Vec<Option<u32>>) {
    let join_vars = pat.join_variables();
    let mut needs_enum = vec![false; pat.len()];
    let mut var_id = vec![None; pat.len()];
    // bottom-up: creation order guarantees parents precede children,
    // so compute in reverse order.
    for id in pat.node_ids().collect::<Vec<_>>().into_iter().rev() {
        let n = pat.node(id);
        let mut need = n.is_result;
        if let PLabel::Var(v) = &n.label {
            if let Ok(i) = join_vars.binary_search(v) {
                var_id[id.index()] = Some(i as u32);
                need = true;
            }
        }
        for &c in &n.children {
            if needs_enum[c.index()] {
                need = true;
            }
        }
        needs_enum[id.index()] = need;
    }
    (needs_enum, var_id)
}

/// Compiles the per-node label tests against one document's symbol table
/// (the transient road; plans remap instead — same table either way).
pub(crate) fn compile_ctests<D: DataSource>(pat: &Pattern, doc: &D) -> Vec<CTest> {
    let mut ctest = Vec::with_capacity(pat.len());
    for id in pat.node_ids() {
        ctest.push(match &pat.node(id).label {
            PLabel::Const(l) => CTest::DataSym(doc.lookup_sym(l.as_str())),
            PLabel::Var(_) | PLabel::Wildcard => CTest::AnyData,
            PLabel::Fun(FunMatch::Any) => CTest::AnyCall,
            PLabel::Fun(FunMatch::OneOf(names)) => CTest::CallOneOf(
                names
                    .iter()
                    .filter_map(|l| doc.lookup_sym(l.as_str()))
                    .collect(),
            ),
            PLabel::Or => CTest::Or,
        });
    }
    ctest
}

/// Runs a fully pre-compiled evaluation: the plan layer hands the bound
/// test tables in, so no pattern walk or symbol lookup happens here.
pub(crate) fn eval_compiled<D: DataSource>(
    pat: &Pattern,
    doc: &D,
    opts: EvalOptions,
    ctest: Vec<CTest>,
    needs_enum: Vec<bool>,
    var_id: Vec<Option<u32>>,
    scratch: &mut PlanScratch,
) -> SnapshotResult {
    if pat.is_empty() {
        return SnapshotResult::default();
    }
    let mut ev = Evaluator::from_tables(pat, doc, opts, ctest, needs_enum, var_id);
    ev.memo = scratch.take_memo();
    ev.desc_memo = scratch.take_desc_memo();
    let mut out = SnapshotResult::default();
    for &root in doc.roots() {
        for (_, frag) in ev.embed(pat.root(), root, &VarEnv::default()) {
            out.tuples.insert(frag);
        }
    }
    ev.release(scratch);
    out
}

/// Pre-compiled existence test (the plan-layer counterpart of
/// [`matches`]).
pub(crate) fn matches_compiled<D: DataSource>(
    pat: &Pattern,
    doc: &D,
    opts: EvalOptions,
    ctest: Vec<CTest>,
    needs_enum: Vec<bool>,
    var_id: Vec<Option<u32>>,
    scratch: &mut PlanScratch,
) -> bool {
    if pat.is_empty() {
        return false;
    }
    let mut ev = Evaluator::from_tables(pat, doc, opts, ctest, needs_enum, var_id);
    ev.memo = scratch.take_memo();
    ev.desc_memo = scratch.take_desc_memo();
    let hit = doc.roots().iter().any(|&r| {
        if ev.needs_enum[pat.root().index()] {
            !ev.embed(pat.root(), r, &VarEnv::default()).is_empty()
        } else {
            ev.smatch(pat.root(), r)
        }
    });
    ev.release(scratch);
    hit
}

struct Evaluator<'a, D: DataSource> {
    pat: &'a Pattern,
    doc: &'a D,
    opts: EvalOptions,
    /// per pattern node: label test compiled against `doc`'s symbol table
    ctest: Vec<CTest>,
    /// memoized join-blind structural match
    memo: HashMap<(PNodeId, NodeId), bool>,
    /// memoized "∃ strict data-reachable descendant matching p"
    desc_memo: HashMap<(PNodeId, NodeId), bool>,
    /// per pattern node: does its subtree contain a result node or a join
    /// variable (requiring full enumeration)?
    needs_enum: Vec<bool>,
    /// per pattern node: join-variable id if the node is a join variable
    var_id: Vec<Option<u32>>,
}

impl<'a, D: DataSource> Evaluator<'a, D> {
    fn new(pat: &'a Pattern, doc: &'a D) -> Self {
        Evaluator::with_opts(pat, doc, EvalOptions::default())
    }

    fn with_opts(pat: &'a Pattern, doc: &'a D, opts: EvalOptions) -> Self {
        let (needs_enum, var_id) = enum_tables(pat);
        let ctest = compile_ctests(pat, doc);
        Evaluator::from_tables(pat, doc, opts, ctest, needs_enum, var_id)
    }

    fn from_tables(
        pat: &'a Pattern,
        doc: &'a D,
        opts: EvalOptions,
        ctest: Vec<CTest>,
        needs_enum: Vec<bool>,
        var_id: Vec<Option<u32>>,
    ) -> Self {
        Evaluator {
            pat,
            doc,
            opts,
            ctest,
            memo: HashMap::new(),
            desc_memo: HashMap::new(),
            needs_enum,
            var_id,
        }
    }

    /// Like [`Evaluator::with_opts`], but stealing the memo allocations of
    /// a scratch. Pair with [`Evaluator::release`].
    fn with_scratch(
        pat: &'a Pattern,
        doc: &'a D,
        opts: EvalOptions,
        scratch: &mut PlanScratch,
    ) -> Self {
        let mut ev = Evaluator::with_opts(pat, doc, opts);
        ev.memo = scratch.take_memo();
        ev.desc_memo = scratch.take_desc_memo();
        ev
    }

    /// Returns the memo allocations to the scratch for the next
    /// evaluation.
    fn release(self, scratch: &mut PlanScratch) {
        scratch.put_back(self.memo, self.desc_memo);
    }

    /// Does the local (label-only) test of pattern node `p` accept doc node
    /// `v`, ignoring variables' join constraints?
    fn local_ok(&self, p: PNodeId, v: NodeId) -> bool {
        if !self.opts.interning {
            return self.local_ok_str(p, v);
        }
        match &self.ctest[p.index()] {
            CTest::DataSym(Some(s)) => self.doc.is_data(v) && self.doc.sym(v) == *s,
            CTest::DataSym(None) => false,
            CTest::AnyData => self.doc.is_data(v),
            CTest::AnyCall => self.doc.is_call(v),
            CTest::CallOneOf(syms) => self.doc.is_call(v) && syms.contains(&self.doc.sym(v)),
            CTest::Or => unreachable!("OR nodes are handled transparently"),
        }
    }

    /// The pre-interning label test (string compares), kept for the
    /// `interning: false` debug/bench mode.
    fn local_ok_str(&self, p: PNodeId, v: NodeId) -> bool {
        match &self.pat.node(p).label {
            PLabel::Const(l) => self.doc.is_data(v) && self.doc.label(v) == l.as_str(),
            PLabel::Var(_) | PLabel::Wildcard => self.doc.is_data(v),
            PLabel::Fun(m) => self
                .doc
                .call_info(v)
                .is_some_and(|(_, svc)| m.accepts(svc.as_str())),
            PLabel::Or => unreachable!("OR nodes are handled transparently"),
        }
    }

    /// Join-blind structural match of `p` at `v` (memoized).
    fn smatch(&mut self, p: PNodeId, v: NodeId) -> bool {
        if let Some(&b) = self.memo.get(&(p, v)) {
            return b;
        }
        // insert a pessimistic placeholder to cut (impossible) cycles
        self.memo.insert((p, v), false);
        let r = self.smatch_uncached(p, v);
        self.memo.insert((p, v), r);
        r
    }

    fn smatch_uncached(&mut self, p: PNodeId, v: NodeId) -> bool {
        let pat = self.pat;
        if let PLabel::Or = pat.node(p).label {
            return pat.node(p).children.iter().any(|&b| self.smatch(b, v));
        }
        if !self.local_ok(p, v) {
            return false;
        }
        let doc = self.doc;
        pat.node(p)
            .children
            .iter()
            .all(|&pc| match pat.node(pc).edge {
                EdgeKind::Child => doc.children(v).iter().any(|&u| self.smatch(pc, u)),
                EdgeKind::Descendant => self.desc_exists(pc, v),
            })
    }

    /// The bucket of the label→node index to enumerate for a descendant
    /// step to pattern node `p` below `v` — when that is the cheaper side.
    /// `None` means "scan the subtree". Only a perf choice: both sides
    /// compute the same answer.
    fn desc_bucket(&self, p: PNodeId, v: NodeId) -> Option<&'a [NodeId]> {
        if !self.opts.index {
            return None;
        }
        let bucket = match &self.ctest[p.index()] {
            CTest::DataSym(Some(s)) => self.doc.nodes_with_sym(*s),
            CTest::DataSym(None) => &[],
            CTest::AnyCall => self.doc.calls_unordered(),
            // OneOf with a single known service: that service's bucket
            // (it contains every node labeled with the name, calls and
            // data alike — `smatch` filters). Multi-name tests fall back.
            CTest::CallOneOf(syms) if syms.len() == 1 => self.doc.nodes_with_sym(syms[0]),
            CTest::CallOneOf(_) | CTest::AnyData | CTest::Or => return None,
        };
        // the index wins when the scan alternative is the whole forest, or
        // when the bucket is small enough that ancestor walks beat any scan
        if self.doc.parent(v).is_none() || bucket.len() <= SMALL_BUCKET {
            Some(bucket)
        } else {
            None
        }
    }

    /// ∃ strict descendant `u` of `v` (not descending below function nodes)
    /// with `smatch(p, u)`.
    fn desc_exists(&mut self, p: PNodeId, v: NodeId) -> bool {
        if let Some(&b) = self.desc_memo.get(&(p, v)) {
            return b;
        }
        self.desc_memo.insert((p, v), false);
        let mut found = false;
        if let Some(bucket) = self.desc_bucket(p, v) {
            for &u in bucket {
                if self.doc.reaches_through_data(v, u) && self.smatch(p, u) {
                    found = true;
                    break;
                }
            }
        } else if self.doc.is_data(v) {
            let doc = self.doc;
            for &u in doc.children(v) {
                if self.smatch(p, u) || self.desc_exists(p, u) {
                    found = true;
                    break;
                }
            }
        }
        self.desc_memo.insert((p, v), found);
        found
    }

    /// Candidate doc nodes for pattern child `pc` under image `v`, in
    /// **arbitrary** order (callers deduplicate or collect into sets).
    fn candidates(&mut self, pc: PNodeId, v: NodeId) -> Vec<NodeId> {
        match self.pat.node(pc).edge {
            EdgeKind::Child => {
                let doc = self.doc;
                let mut out = Vec::new();
                for &u in doc.children(v) {
                    if self.smatch(pc, u) {
                        out.push(u);
                    }
                }
                out
            }
            EdgeKind::Descendant => {
                let mut out = Vec::new();
                if let Some(bucket) = self.desc_bucket(pc, v) {
                    for &u in bucket {
                        if self.doc.reaches_through_data(v, u) && self.smatch(pc, u) {
                            out.push(u);
                        }
                    }
                } else {
                    self.collect_desc(pc, v, &mut out);
                }
                out
            }
        }
    }

    /// Candidate doc nodes for `pc` under `v` in document order (pre-order
    /// subtree scan), for consumers whose output order is observable
    /// ([`embeddings`]).
    fn candidates_ordered(&mut self, pc: PNodeId, v: NodeId) -> Vec<NodeId> {
        match self.pat.node(pc).edge {
            EdgeKind::Child => {
                let doc = self.doc;
                let mut out = Vec::new();
                for &u in doc.children(v) {
                    if self.smatch(pc, u) {
                        out.push(u);
                    }
                }
                out
            }
            EdgeKind::Descendant => {
                let mut out = Vec::new();
                self.collect_desc(pc, v, &mut out);
                out
            }
        }
    }

    fn collect_desc(&mut self, pc: PNodeId, v: NodeId, out: &mut Vec<NodeId>) {
        if !self.doc.is_data(v) {
            return;
        }
        let doc = self.doc;
        for &u in doc.children(v) {
            if self.smatch(pc, u) {
                out.push(u);
            }
            self.collect_desc(pc, u, out);
        }
    }

    /// Enumerates the distinct (environment, result fragment) pairs for
    /// embedding the subtree of `p` at `v`, given an inherited environment.
    fn embed(&mut self, p: PNodeId, v: NodeId, env: &VarEnv) -> Vec<(VarEnv, ResultTuple)> {
        // Fast path: nothing observable below — boolean check suffices.
        if !self.needs_enum[p.index()] {
            return if self.smatch(p, v) {
                vec![(env.clone(), ResultTuple::new())]
            } else {
                vec![]
            };
        }
        let pat = self.pat;
        if let PLabel::Or = pat.node(p).label {
            let mut out = Vec::new();
            for i in 0..pat.node(p).children.len() {
                let b = pat.node(p).children[i];
                out.extend(self.embed(b, v, env));
            }
            dedup_pairs(&mut out);
            return out;
        }
        if !self.local_ok(p, v) {
            return vec![];
        }
        let mut env = env.clone();
        if let Some(vid) = self.var_id[p.index()] {
            let sym = self.doc.sym(v);
            match env.get(&vid) {
                Some(&bound) if bound != sym => return vec![],
                Some(_) => {}
                None => {
                    env.insert(vid, sym);
                }
            }
        }
        let mut base = ResultTuple::new();
        if pat.node(p).is_result {
            base.insert(p, v);
        }
        let mut combos: Vec<(VarEnv, ResultTuple)> = vec![(env, base)];
        for i in 0..pat.node(p).children.len() {
            let pc = pat.node(p).children[i];
            let mut next: Vec<(VarEnv, ResultTuple)> = Vec::new();
            // indexed loop: the body re-borrows `self` mutably, so holding
            // an iterator over `combos` (cloned below anyway) buys nothing
            #[allow(clippy::needless_range_loop)]
            for ci in 0..combos.len() {
                if !self.needs_enum[pc.index()] {
                    // existence is independent of result fragments; the
                    // variable environment may still constrain it only via
                    // join vars, which the fast path ignores — safe because
                    // needs_enum is true whenever a join var occurs below.
                    let ok = match pat.node(pc).edge {
                        EdgeKind::Child => {
                            let doc = self.doc;
                            doc.children(v).iter().any(|&u| self.smatch(pc, u))
                        }
                        EdgeKind::Descendant => self.desc_exists(pc, v),
                    };
                    if ok {
                        next.push(combos[ci].clone());
                    }
                    continue;
                }
                for u in self.candidates(pc, v) {
                    let cenv = combos[ci].0.clone();
                    for (e2, f2) in self.embed(pc, u, &cenv) {
                        let mut merged = combos[ci].1.clone();
                        merged.extend(f2);
                        next.push((e2, merged));
                    }
                }
            }
            dedup_pairs(&mut next);
            combos = next;
            if combos.is_empty() {
                break;
            }
        }
        combos
    }

    /// Full-embedding enumeration (every pattern node's image), used for
    /// contributing-node computation. OR nodes map to the image of the
    /// chosen branch.
    fn embed_full(
        &mut self,
        p: PNodeId,
        v: NodeId,
        env: &VarEnv,
    ) -> Vec<BTreeMap<PNodeId, NodeId>> {
        let pat = self.pat;
        if let PLabel::Or = pat.node(p).label {
            let mut out = Vec::new();
            for i in 0..pat.node(p).children.len() {
                let b = pat.node(p).children[i];
                out.extend(self.embed_full(b, v, env));
            }
            return out;
        }
        if !self.local_ok(p, v) {
            return vec![];
        }
        let mut env = env.clone();
        if let Some(vid) = self.var_id[p.index()] {
            let sym = self.doc.sym(v);
            match env.get(&vid) {
                Some(&bound) if bound != sym => return vec![],
                Some(_) => {}
                None => {
                    env.insert(vid, sym);
                }
            }
        }
        let mut base = BTreeMap::new();
        base.insert(p, v);
        let mut combos: Vec<(VarEnv, BTreeMap<PNodeId, NodeId>)> = vec![(env, base)];
        for i in 0..pat.node(p).children.len() {
            let pc = pat.node(p).children[i];
            let mut next = Vec::new();
            // indexed for the same reason as `embed`'s combo loop
            #[allow(clippy::needless_range_loop)]
            for ci in 0..combos.len() {
                for u in self.candidates_ordered(pc, v) {
                    let cenv = combos[ci].0.clone();
                    for sub in self.embed_full(pc, u, &cenv) {
                        // recompute env effects of the subtree: embed_full
                        // doesn't thread env back, so re-check join vars
                        if !self.join_consistent(&cenv, &sub) {
                            continue;
                        }
                        let mut merged = combos[ci].1.clone();
                        merged.extend(sub.clone());
                        let mut env2 = cenv.clone();
                        self.extend_env(&mut env2, &sub);
                        next.push((env2, merged));
                    }
                }
            }
            combos = next;
            if combos.is_empty() {
                break;
            }
        }
        combos.into_iter().map(|(_, m)| m).collect()
    }

    fn join_consistent(&self, env: &VarEnv, emb: &BTreeMap<PNodeId, NodeId>) -> bool {
        let mut local: HashMap<u32, u32> = HashMap::new();
        for (&p, &v) in emb {
            if let Some(vid) = self.var_id[p.index()] {
                let sym = self.doc.sym(v);
                if let Some(&prev) = env.get(&vid) {
                    if prev != sym {
                        return false;
                    }
                }
                if let Some(&prev) = local.get(&vid) {
                    if prev != sym {
                        return false;
                    }
                }
                local.insert(vid, sym);
            }
        }
        true
    }

    fn extend_env(&self, env: &mut VarEnv, emb: &BTreeMap<PNodeId, NodeId>) {
        for (&p, &v) in emb {
            if let Some(vid) = self.var_id[p.index()] {
                env.entry(vid).or_insert_with(|| self.doc.sym(v));
            }
        }
    }
}

fn dedup_pairs(v: &mut Vec<(VarEnv, ResultTuple)>) {
    v.sort();
    v.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use axml_xml::{parse, Document};

    fn hotels_doc() -> Document {
        parse(
            "<hotels>\
               <hotel><name>Best Western</name><rating>*****</rating>\
                 <nearby><restaurant><name>Jo</name><address>2nd Av</address>\
                   <rating>*****</rating></restaurant>\
                 <restaurant><name>Mama</name><address>3rd Av</address>\
                   <rating>**</rating></restaurant>\
                 <axml:call service=\"getNearbyRestos\"/></nearby></hotel>\
               <hotel><name>Pennsylvania</name><rating>**</rating>\
                 <nearby><restaurant><name>Lu</name><address>Penn St</address>\
                   <rating>*****</rating></restaurant></nearby></hotel>\
               <axml:call service=\"getHotels\"/>\
             </hotels>",
        )
        .unwrap()
    }

    /// Every flag combination — and the compiled plan — must produce the
    /// seed evaluator's result.
    fn eval_all_modes(q: &Pattern, d: &Document) -> SnapshotResult {
        let reference = seed_eval(q, d);
        let mut scratch = PlanScratch::default();
        for interning in [false, true] {
            for index in [false, true] {
                let got = eval_with(q, d, EvalOptions { interning, index }, &mut scratch);
                assert_eq!(
                    got, reference,
                    "interning={interning} index={index} diverged"
                );
            }
        }
        let plan = crate::plan::QueryPlan::compile(q);
        let planned = plan.eval_with(d, EvalOptions::default(), &mut scratch);
        assert_eq!(planned, reference, "compiled plan diverged");
        reference
    }

    #[test]
    fn simple_path_matches() {
        let d = hotels_doc();
        let q = parse_query("/hotels/hotel/name").unwrap();
        let r = eval_all_modes(&q, &d);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn value_predicate_filters() {
        let d = hotels_doc();
        let q = parse_query("/hotels/hotel[rating=\"*****\"]/name").unwrap();
        let r = eval_all_modes(&q, &d);
        assert_eq!(r.len(), 1);
        let names = render_result(&d, &r);
        assert_eq!(names, vec![vec!["name".to_string()]]);
        assert_eq!(render_result_refs(&d, &r), vec![vec!["name"]]);
    }

    #[test]
    fn variables_bind_values() {
        let d = hotels_doc();
        let q = parse_query(
            "/hotels/hotel//restaurant[rating=\"*****\"][name=$X][address=$Y] -> $X,$Y",
        )
        .unwrap();
        let r = eval_all_modes(&q, &d);
        assert_eq!(r.len(), 2); // Jo/2nd Av and Lu/Penn St
        let mut rendered = render_result(&d, &r);
        rendered.sort();
        assert_eq!(
            rendered,
            vec![
                vec!["Jo".to_string(), "2nd Av".to_string()],
                vec!["Lu".to_string(), "Penn St".to_string()]
            ]
        );
    }

    #[test]
    fn descendant_edge_reaches_deep_nodes() {
        let d = parse("<a><b><c><d>x</d></c></b></a>").unwrap();
        let q = parse_query("/a//d").unwrap();
        assert!(matches(&q, &d));
        let q2 = parse_query("/a//q").unwrap();
        assert!(!matches(&q2, &d));
    }

    #[test]
    fn descendant_is_strict() {
        let d = parse("<a>x</a>").unwrap();
        let q = parse_query("/a//a").unwrap();
        assert!(!matches(&q, &d), "descendant must be strict");
        assert!(eval_all_modes(&q, &d).is_empty());
    }

    #[test]
    fn queries_do_not_match_function_nodes_as_data() {
        let d = hotels_doc();
        // getHotels call is a child of hotels but not a data node
        let q = parse_query("/hotels/*").unwrap();
        let r = eval_all_modes(&q, &d);
        // only the two hotel elements, not the call
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn function_pattern_nodes_match_calls() {
        let d = hotels_doc();
        let q = parse_query("/hotels/getHotels()").unwrap();
        let r = eval_all_modes(&q, &d);
        assert_eq!(r.len(), 1);
        let q2 = parse_query("/hotels/hotel/nearby/*()").unwrap();
        let r2 = eval_all_modes(&q2, &d);
        assert_eq!(r2.len(), 1);
        let bound = r2.bindings_of(q2.result_nodes()[0]);
        assert!(d.is_call(bound[0]));
    }

    #[test]
    fn descendant_does_not_look_inside_call_parameters() {
        let d = parse("<r><axml:call service=\"f\"><secret>x</secret></axml:call></r>").unwrap();
        let q = parse_query("/r//secret").unwrap();
        assert!(!matches(&q, &d), "call parameters are not document content");
        assert!(eval_all_modes(&q, &d).is_empty());
        // but the call node itself is visible to function tests
        let q2 = parse_query("/r//*()").unwrap();
        assert!(matches(&q2, &d));
        assert_eq!(eval_all_modes(&q2, &d).len(), 1);
    }

    #[test]
    fn join_variables_enforce_equality() {
        let d = parse("<r><a>1</a><b>1</b></r>").unwrap();
        let q = parse_query("/r[a=$V][b=$V]").unwrap();
        assert!(matches(&q, &d));
        let d2 = parse("<r><a>1</a><b>2</b></r>").unwrap();
        assert!(!matches(&q, &d2));
        assert!(eval_all_modes(&q, &d2).is_empty());
    }

    #[test]
    fn join_variables_across_tuples() {
        let d = parse("<r><a>1</a><a>2</a><b>2</b></r>").unwrap();
        let q = parse_query("/r[a=$V][b=$V] -> $V").unwrap();
        let r = eval_all_modes(&q, &d);
        // only the a=2, b=2 combination survives; both bindings of $V in the
        // tuple render as "2"
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn homomorphism_not_injective() {
        // both pattern children may map to the same doc node
        let d = parse("<r><a>1</a></r>").unwrap();
        let q = parse_query("/r[a][a=\"1\"]").unwrap();
        assert!(matches(&q, &d));
    }

    #[test]
    fn or_nodes_union_choices() {
        use crate::pattern::{EdgeKind, FunMatch, PLabel, Pattern};
        // /r/(a | f()) — matches docs with an <a> child OR a call child
        let mut p = Pattern::new();
        let r = p.set_root(PLabel::Const("r".into()));
        let a = p.add_child(r, EdgeKind::Child, PLabel::Const("a".into()));
        let or = p.wrap_in_or(a);
        p.add_child(or, EdgeKind::Child, PLabel::Fun(FunMatch::Any));
        let d1 = parse("<r><a/></r>").unwrap();
        let d2 = parse("<r><axml:call service=\"f\"/></r>").unwrap();
        let d3 = parse("<r><b/></r>").unwrap();
        assert!(matches(&p, &d1));
        assert!(matches(&p, &d2));
        assert!(!matches(&p, &d3));
    }

    #[test]
    fn snapshot_on_fig1_like_doc_is_empty_before_invocation() {
        // Before invoking getNearbyRestos, "Best Western" has only non-5star
        // restaurants... our hotels_doc already has Jo; craft the real case:
        let d = parse(
            "<hotels><hotel><name>BW</name><rating>*****</rating>\
             <nearby><axml:call service=\"getNearbyRestos\"/></nearby>\
             </hotel></hotels>",
        )
        .unwrap();
        let q = parse_query("/hotels/hotel[rating=\"*****\"]/nearby//restaurant[name=$X] -> $X")
            .unwrap();
        assert!(eval_all_modes(&q, &d).is_empty());
    }

    #[test]
    fn contributing_nodes_cover_paths() {
        let d = parse("<a><m><b><c>x</c></b></m></a>").unwrap();
        let q = parse_query("/a//c").unwrap();
        let contrib = contributing_nodes(&q, &d);
        // a, m, b, c — everything on the path (m and b realize the
        // descendant edge); the text leaf "x" is not an image
        assert_eq!(contrib.len(), 4);
    }

    #[test]
    fn contributing_nodes_exclude_unmatched_branches() {
        let d = parse("<a><b><c>x</c></b><z><w>y</w></z></a>").unwrap();
        let q = parse_query("/a//c").unwrap();
        let contrib = contributing_nodes(&q, &d);
        let labels: BTreeSet<&str> = contrib.iter().map(|&n| d.label(n)).collect();
        assert!(labels.contains("c"));
        assert!(!labels.contains("z"));
        assert!(!labels.contains("w"));
    }

    #[test]
    fn forest_roots_each_tried() {
        let d = parse("<a><x/></a><b><x/></b>").unwrap();
        let qa = parse_query("/a/x").unwrap();
        let qb = parse_query("/b/x").unwrap();
        assert!(matches(&qa, &d));
        assert!(matches(&qb, &d));
    }

    #[test]
    fn wildcard_root() {
        let d = parse("<anything><x/></anything>").unwrap();
        let q = parse_query("/*/x").unwrap();
        assert!(matches(&q, &d));
    }

    #[test]
    fn result_of_last_step_default() {
        let d = hotels_doc();
        let q = parse_query("/hotels/hotel/rating").unwrap();
        let r = eval_all_modes(&q, &d);
        // two distinct rating element nodes, one per hotel
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn scratch_reuse_does_not_leak_state() {
        let mut scratch = PlanScratch::default();
        let d1 = hotels_doc();
        let q1 = parse_query("/hotels/hotel/name").unwrap();
        let r1 = eval_with(&q1, &d1, EvalOptions::default(), &mut scratch);
        assert_eq!(r1.len(), 2);
        // a different document reusing NodeId/PNodeId coordinates: stale
        // memo entries would be visible here
        let d2 = parse("<hotels><hotel><name>X</name></hotel></hotels>").unwrap();
        let r2 = eval_with(&q1, &d2, EvalOptions::default(), &mut scratch);
        assert_eq!(r2.len(), 1);
        let q2 = parse_query("/hotels/hotel/rating").unwrap();
        let r3 = eval_with(&q2, &d2, EvalOptions::default(), &mut scratch);
        assert!(r3.is_empty());
    }

    #[test]
    fn root_anchored_descendant_uses_index_and_agrees() {
        // a root-context descendant step over a large bucket exercises the
        // index enumeration path (doc root, bucket > SMALL_BUCKET)
        let mut xml = String::from("<r>");
        for i in 0..40 {
            xml.push_str(&format!("<g><t>v{i}</t></g>"));
        }
        xml.push_str("<axml:call service=\"f\"><t>hidden</t></axml:call></r>");
        let d = parse(&xml).unwrap();
        let q = parse_query("//t").unwrap();
        let r = eval_all_modes(&q, &d);
        // the 40 visible <t> nodes; the call-parameter <t> is invisible
        assert_eq!(r.len(), 40);
    }
}
