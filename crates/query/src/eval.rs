//! Embedding-based evaluation of (extended) tree patterns — the *snapshot
//! semantics* of Definition 1.
//!
//! An embedding maps pattern nodes to document nodes, root to root,
//! preserving parent-child / ancestor-descendant edges, mapping constants to
//! data nodes with the same label, with all occurrences of a variable mapped
//! to nodes carrying identical labels. Extended patterns add OR nodes
//! (transparent choice) and function nodes (matched against the document's
//! function-call nodes).
//!
//! Design notes:
//! * Descendant navigation never descends **below** a function node: the
//!   parameters of a pending call are inputs of the service, not document
//!   content (a call node itself is still visible, so `//()` finds calls at
//!   any depth).
//! * Condition subtrees that contain neither result nodes nor join
//!   variables are checked by a memoized boolean match; full enumeration
//!   happens only where bindings are observable. This keeps the evaluator
//!   polynomial on join-free queries.

use crate::pattern::{EdgeKind, PLabel, PNodeId, Pattern};
use axml_xml::{Document, NodeId};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// One result of the query: the restriction of an embedding to the result
/// nodes (pattern node → document node).
pub type ResultTuple = BTreeMap<PNodeId, NodeId>;

/// The snapshot result `q(d)`: the set of results of all embeddings.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SnapshotResult {
    /// Distinct result tuples.
    pub tuples: BTreeSet<ResultTuple>,
}

impl SnapshotResult {
    /// Whether no embedding exists.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Number of distinct result tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// The document nodes bound to a given pattern node across all tuples.
    pub fn bindings_of(&self, p: PNodeId) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .tuples
            .iter()
            .filter_map(|t| t.get(&p).copied())
            .collect();
        v.sort();
        v.dedup();
        v
    }
}

/// Renders a snapshot result as readable strings (label of each bound node).
pub fn render_result(doc: &Document, r: &SnapshotResult) -> Vec<Vec<String>> {
    r.tuples
        .iter()
        .map(|t| t.values().map(|&n| doc.label(n).to_string()).collect())
        .collect()
}

/// Evaluates `q` on `d` and returns the snapshot result.
pub fn eval(pattern: &Pattern, doc: &Document) -> SnapshotResult {
    if pattern.is_empty() {
        return SnapshotResult::default();
    }
    let mut ev = Evaluator::new(pattern, doc);
    let mut out = SnapshotResult::default();
    for &root in doc.roots() {
        for (_, frag) in ev.embed(pattern.root(), root, &VarEnv::default()) {
            out.tuples.insert(frag);
        }
    }
    out
}

/// `true` iff at least one embedding of `q` in `d` exists.
pub fn matches(pattern: &Pattern, doc: &Document) -> bool {
    if pattern.is_empty() {
        return false;
    }
    let mut ev = Evaluator::new(pattern, doc);
    doc.roots().iter().any(|&r| {
        if ev.needs_enum[pattern.root().index()] {
            !ev.embed(pattern.root(), r, &VarEnv::default()).is_empty()
        } else {
            ev.smatch(pattern.root(), r)
        }
    })
}

/// All document nodes that *contribute* to `q(d)` (Section 2): images of
/// pattern nodes under some embedding, plus the nodes on the document paths
/// realizing descendant edges. This is the "grey area" of Figure 3 and the
/// basis of the pruned-result mode when pushing queries (Section 7).
pub fn contributing_nodes(pattern: &Pattern, doc: &Document) -> HashSet<NodeId> {
    let mut out = HashSet::new();
    if pattern.is_empty() {
        return out;
    }
    let mut ev = Evaluator::new(pattern, doc);
    for &root in doc.roots() {
        let embeddings = ev.embed_full(pattern.root(), root, &VarEnv::default());
        for emb in embeddings {
            for (&p, &v) in &emb {
                out.insert(v);
                // close the path up to the image of the parent pattern node
                if let Some(pp) = pattern.parent(p) {
                    if let Some(&pv) = emb.get(&pp) {
                        let mut cur = doc.parent(v);
                        while let Some(n) = cur {
                            if n == pv {
                                break;
                            }
                            out.insert(n);
                            cur = doc.parent(n);
                        }
                    }
                }
            }
        }
    }
    out
}

/// Enumerates the *full embeddings* of the pattern (every pattern node's
/// image). OR nodes map to the image of their chosen branch. Exponential in
/// the worst case — intended for provider-side pruning of (small) service
/// results, not for document-scale evaluation.
pub fn embeddings(pattern: &Pattern, doc: &Document) -> Vec<BTreeMap<PNodeId, NodeId>> {
    let mut out = Vec::new();
    if pattern.is_empty() {
        return out;
    }
    let mut ev = Evaluator::new(pattern, doc);
    for &root in doc.roots() {
        out.extend(ev.embed_full(pattern.root(), root, &VarEnv::default()));
    }
    out
}

/// A reusable join-blind structural matcher over one `(pattern, document)`
/// pair, exposing node-level match tests with memoization. Used by the
/// F-guide's residual filtering (Section 6.2), where candidate call nodes
/// are aligned against an NFQ's path and the side conditions are checked
/// per document node.
pub struct Matcher<'a> {
    ev: Evaluator<'a>,
}

impl<'a> Matcher<'a> {
    /// Creates a matcher.
    pub fn new(pattern: &'a Pattern, doc: &'a Document) -> Self {
        Matcher {
            ev: Evaluator::new(pattern, doc),
        }
    }

    /// Join-blind: can pattern node `p`'s subtree match at document node
    /// `v`?
    pub fn matches_at(&mut self, p: PNodeId, v: NodeId) -> bool {
        self.ev.smatch(p, v)
    }

    /// Label-only test: does `p`'s own label accept `v`, ignoring `p`'s
    /// children? (OR nodes test their branches' labels.)
    pub fn label_matches(&mut self, p: PNodeId, v: NodeId) -> bool {
        if let PLabel::Or = self.ev.pat.node(p).label {
            let branches = self.ev.pat.node(p).children.clone();
            return branches.into_iter().any(|b| self.label_matches(b, v));
        }
        self.ev.local_ok(p, v)
    }

    /// Does some child of `v` match pattern node `p` (join-blind)?
    pub fn child_matches(&mut self, p: PNodeId, v: NodeId) -> bool {
        let kids = self.ev.doc.children(v).to_vec();
        kids.into_iter().any(|u| self.ev.smatch(p, u))
    }

    /// Does some strict descendant of `v` match pattern node `p`
    /// (join-blind, not descending below function nodes)?
    pub fn descendant_matches(&mut self, p: PNodeId, v: NodeId) -> bool {
        self.ev.desc_exists(p, v)
    }
}

/// Variable environment: variable name → required label text.
type VarEnv = BTreeMap<String, String>;

struct Evaluator<'a> {
    pat: &'a Pattern,
    doc: &'a Document,
    /// memoized join-blind structural match
    memo: HashMap<(PNodeId, NodeId), bool>,
    /// memoized "∃ strict data-reachable descendant matching p"
    desc_memo: HashMap<(PNodeId, NodeId), bool>,
    /// per pattern node: does its subtree contain a result node or a join
    /// variable (requiring full enumeration)?
    needs_enum: Vec<bool>,
    join_vars: HashSet<String>,
}

impl<'a> Evaluator<'a> {
    fn new(pat: &'a Pattern, doc: &'a Document) -> Self {
        let join_vars: HashSet<String> = pat
            .join_variables()
            .into_iter()
            .map(|l| l.to_string())
            .collect();
        let mut needs_enum = vec![false; pat.len()];
        // bottom-up: creation order guarantees parents precede children,
        // so compute in reverse order.
        for id in pat.node_ids().collect::<Vec<_>>().into_iter().rev() {
            let n = pat.node(id);
            let mut need = n.is_result;
            if let PLabel::Var(v) = &n.label {
                if join_vars.contains(v.as_str()) {
                    need = true;
                }
            }
            for &c in &n.children {
                if needs_enum[c.index()] {
                    need = true;
                }
            }
            needs_enum[id.index()] = need;
        }
        Evaluator {
            pat,
            doc,
            memo: HashMap::new(),
            desc_memo: HashMap::new(),
            needs_enum,
            join_vars,
        }
    }

    /// Does the local (label-only) test of pattern node `p` accept doc node
    /// `v`, ignoring variables' join constraints?
    fn local_ok(&self, p: PNodeId, v: NodeId) -> bool {
        match &self.pat.node(p).label {
            PLabel::Const(l) => self.doc.is_data(v) && self.doc.label(v) == l.as_str(),
            PLabel::Var(_) | PLabel::Wildcard => self.doc.is_data(v),
            PLabel::Fun(m) => self
                .doc
                .call_info(v)
                .is_some_and(|(_, svc)| m.accepts(svc.as_str())),
            PLabel::Or => unreachable!("OR nodes are handled transparently"),
        }
    }

    /// Join-blind structural match of `p` at `v` (memoized).
    fn smatch(&mut self, p: PNodeId, v: NodeId) -> bool {
        if let Some(&b) = self.memo.get(&(p, v)) {
            return b;
        }
        // insert a pessimistic placeholder to cut (impossible) cycles
        self.memo.insert((p, v), false);
        let r = self.smatch_uncached(p, v);
        self.memo.insert((p, v), r);
        r
    }

    fn smatch_uncached(&mut self, p: PNodeId, v: NodeId) -> bool {
        if let PLabel::Or = self.pat.node(p).label {
            let branches = self.pat.node(p).children.clone();
            return branches.into_iter().any(|b| self.smatch(b, v));
        }
        if !self.local_ok(p, v) {
            return false;
        }
        let children = self.pat.node(p).children.clone();
        children.into_iter().all(|pc| match self.pat.node(pc).edge {
            EdgeKind::Child => {
                let kids = self.doc.children(v).to_vec();
                kids.into_iter().any(|u| self.smatch(pc, u))
            }
            EdgeKind::Descendant => self.desc_exists(pc, v),
        })
    }

    /// ∃ strict descendant `u` of `v` (not descending below function nodes)
    /// with `smatch(p, u)`.
    fn desc_exists(&mut self, p: PNodeId, v: NodeId) -> bool {
        if let Some(&b) = self.desc_memo.get(&(p, v)) {
            return b;
        }
        self.desc_memo.insert((p, v), false);
        let mut found = false;
        if self.doc.is_data(v) {
            for u in self.doc.children(v).to_vec() {
                if self.smatch(p, u) || self.desc_exists(p, u) {
                    found = true;
                    break;
                }
            }
        }
        self.desc_memo.insert((p, v), found);
        found
    }

    /// Candidate doc nodes for pattern child `pc` under image `v`.
    fn candidates(&mut self, pc: PNodeId, v: NodeId) -> Vec<NodeId> {
        match self.pat.node(pc).edge {
            EdgeKind::Child => self
                .doc
                .children(v)
                .to_vec()
                .into_iter()
                .filter(|&u| self.smatch(pc, u))
                .collect(),
            EdgeKind::Descendant => {
                let mut out = Vec::new();
                self.collect_desc(pc, v, &mut out);
                out
            }
        }
    }

    fn collect_desc(&mut self, pc: PNodeId, v: NodeId, out: &mut Vec<NodeId>) {
        if !self.doc.is_data(v) {
            return;
        }
        for u in self.doc.children(v).to_vec() {
            if self.smatch(pc, u) {
                out.push(u);
            }
            self.collect_desc(pc, u, out);
        }
    }

    /// Enumerates the distinct (environment, result fragment) pairs for
    /// embedding the subtree of `p` at `v`, given an inherited environment.
    fn embed(&mut self, p: PNodeId, v: NodeId, env: &VarEnv) -> Vec<(VarEnv, ResultTuple)> {
        // Fast path: nothing observable below — boolean check suffices.
        if !self.needs_enum[p.index()] {
            return if self.smatch(p, v) {
                vec![(env.clone(), ResultTuple::new())]
            } else {
                vec![]
            };
        }
        if let PLabel::Or = self.pat.node(p).label {
            let branches = self.pat.node(p).children.clone();
            let mut out = Vec::new();
            for b in branches {
                out.extend(self.embed(b, v, env));
            }
            dedup_pairs(&mut out);
            return out;
        }
        if !self.local_ok(p, v) {
            return vec![];
        }
        let mut env = env.clone();
        if let PLabel::Var(name) = &self.pat.node(p).label {
            if self.join_vars.contains(name.as_str()) {
                let label = self.doc.label(v).to_string();
                match env.get(name.as_str()) {
                    Some(bound) if bound != &label => return vec![],
                    Some(_) => {}
                    None => {
                        env.insert(name.to_string(), label);
                    }
                }
            }
        }
        let mut base = ResultTuple::new();
        if self.pat.node(p).is_result {
            base.insert(p, v);
        }
        let mut combos: Vec<(VarEnv, ResultTuple)> = vec![(env, base)];
        for pc in self.pat.node(p).children.clone() {
            let mut next: Vec<(VarEnv, ResultTuple)> = Vec::new();
            for (cenv, cfrag) in &combos {
                if !self.needs_enum[pc.index()] {
                    // existence is independent of result fragments; the
                    // variable environment may still constrain it only via
                    // join vars, which the fast path ignores — safe because
                    // needs_enum is true whenever a join var occurs below.
                    let ok = match self.pat.node(pc).edge {
                        EdgeKind::Child => {
                            let kids = self.doc.children(v).to_vec();
                            kids.into_iter().any(|u| self.smatch(pc, u))
                        }
                        EdgeKind::Descendant => self.desc_exists(pc, v),
                    };
                    if ok {
                        next.push((cenv.clone(), cfrag.clone()));
                    }
                    continue;
                }
                for u in self.candidates(pc, v) {
                    for (e2, f2) in self.embed(pc, u, cenv) {
                        let mut merged = cfrag.clone();
                        merged.extend(f2);
                        next.push((e2, merged));
                    }
                }
            }
            dedup_pairs(&mut next);
            combos = next;
            if combos.is_empty() {
                break;
            }
        }
        combos
    }

    /// Full-embedding enumeration (every pattern node's image), used for
    /// contributing-node computation. OR nodes map to the image of the
    /// chosen branch.
    fn embed_full(
        &mut self,
        p: PNodeId,
        v: NodeId,
        env: &VarEnv,
    ) -> Vec<BTreeMap<PNodeId, NodeId>> {
        if let PLabel::Or = self.pat.node(p).label {
            let branches = self.pat.node(p).children.clone();
            let mut out = Vec::new();
            for b in branches {
                out.extend(self.embed_full(b, v, env));
            }
            return out;
        }
        if !self.local_ok(p, v) {
            return vec![];
        }
        let mut env = env.clone();
        if let PLabel::Var(name) = &self.pat.node(p).label {
            if self.join_vars.contains(name.as_str()) {
                let label = self.doc.label(v).to_string();
                match env.get(name.as_str()) {
                    Some(bound) if bound != &label => return vec![],
                    Some(_) => {}
                    None => {
                        env.insert(name.to_string(), label);
                    }
                }
            }
        }
        let mut base = BTreeMap::new();
        base.insert(p, v);
        let mut combos: Vec<(VarEnv, BTreeMap<PNodeId, NodeId>)> = vec![(env, base)];
        for pc in self.pat.node(p).children.clone() {
            let mut next = Vec::new();
            for (cenv, cmap) in &combos {
                for u in self.candidates(pc, v) {
                    for sub in self.embed_full(pc, u, cenv) {
                        // recompute env effects of the subtree: embed_full
                        // doesn't thread env back, so re-check join vars
                        if !self.join_consistent(cenv, &sub) {
                            continue;
                        }
                        let mut merged = cmap.clone();
                        merged.extend(sub.clone());
                        let mut env2 = cenv.clone();
                        self.extend_env(&mut env2, &sub);
                        next.push((env2, merged));
                    }
                }
            }
            combos = next;
            if combos.is_empty() {
                break;
            }
        }
        combos.into_iter().map(|(_, m)| m).collect()
    }

    fn join_consistent(&self, env: &VarEnv, emb: &BTreeMap<PNodeId, NodeId>) -> bool {
        let mut local: HashMap<&str, &str> = HashMap::new();
        for (&p, &v) in emb {
            if let PLabel::Var(name) = &self.pat.node(p).label {
                if self.join_vars.contains(name.as_str()) {
                    let label = self.doc.label(v);
                    if let Some(prev) = env.get(name.as_str()) {
                        if prev != label {
                            return false;
                        }
                    }
                    if let Some(prev) = local.get(name.as_str()) {
                        if *prev != label {
                            return false;
                        }
                    }
                    local.insert(name.as_str(), label);
                }
            }
        }
        true
    }

    fn extend_env(&self, env: &mut VarEnv, emb: &BTreeMap<PNodeId, NodeId>) {
        for (&p, &v) in emb {
            if let PLabel::Var(name) = &self.pat.node(p).label {
                if self.join_vars.contains(name.as_str()) {
                    env.entry(name.to_string())
                        .or_insert_with(|| self.doc.label(v).to_string());
                }
            }
        }
    }
}

fn dedup_pairs(v: &mut Vec<(VarEnv, ResultTuple)>) {
    v.sort();
    v.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use axml_xml::parse;

    fn hotels_doc() -> Document {
        parse(
            "<hotels>\
               <hotel><name>Best Western</name><rating>*****</rating>\
                 <nearby><restaurant><name>Jo</name><address>2nd Av</address>\
                   <rating>*****</rating></restaurant>\
                 <restaurant><name>Mama</name><address>3rd Av</address>\
                   <rating>**</rating></restaurant>\
                 <axml:call service=\"getNearbyRestos\"/></nearby></hotel>\
               <hotel><name>Pennsylvania</name><rating>**</rating>\
                 <nearby><restaurant><name>Lu</name><address>Penn St</address>\
                   <rating>*****</rating></restaurant></nearby></hotel>\
               <axml:call service=\"getHotels\"/>\
             </hotels>",
        )
        .unwrap()
    }

    #[test]
    fn simple_path_matches() {
        let d = hotels_doc();
        let q = parse_query("/hotels/hotel/name").unwrap();
        let r = eval(&q, &d);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn value_predicate_filters() {
        let d = hotels_doc();
        let q = parse_query("/hotels/hotel[rating=\"*****\"]/name").unwrap();
        let r = eval(&q, &d);
        assert_eq!(r.len(), 1);
        let names = render_result(&d, &r);
        assert_eq!(names, vec![vec!["name".to_string()]]);
    }

    #[test]
    fn variables_bind_values() {
        let d = hotels_doc();
        let q = parse_query(
            "/hotels/hotel//restaurant[rating=\"*****\"][name=$X][address=$Y] -> $X,$Y",
        )
        .unwrap();
        let r = eval(&q, &d);
        assert_eq!(r.len(), 2); // Jo/2nd Av and Lu/Penn St
        let mut rendered = render_result(&d, &r);
        rendered.sort();
        assert_eq!(
            rendered,
            vec![
                vec!["Jo".to_string(), "2nd Av".to_string()],
                vec!["Lu".to_string(), "Penn St".to_string()]
            ]
        );
    }

    #[test]
    fn descendant_edge_reaches_deep_nodes() {
        let d = parse("<a><b><c><d>x</d></c></b></a>").unwrap();
        let q = parse_query("/a//d").unwrap();
        assert!(matches(&q, &d));
        let q2 = parse_query("/a//q").unwrap();
        assert!(!matches(&q2, &d));
    }

    #[test]
    fn descendant_is_strict() {
        let d = parse("<a>x</a>").unwrap();
        let q = parse_query("/a//a").unwrap();
        assert!(!matches(&q, &d), "descendant must be strict");
    }

    #[test]
    fn queries_do_not_match_function_nodes_as_data() {
        let d = hotels_doc();
        // getHotels call is a child of hotels but not a data node
        let q = parse_query("/hotels/*").unwrap();
        let r = eval(&q, &d);
        // only the two hotel elements, not the call
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn function_pattern_nodes_match_calls() {
        let d = hotels_doc();
        let q = parse_query("/hotels/getHotels()").unwrap();
        let r = eval(&q, &d);
        assert_eq!(r.len(), 1);
        let q2 = parse_query("/hotels/hotel/nearby/*()").unwrap();
        let r2 = eval(&q2, &d);
        assert_eq!(r2.len(), 1);
        let bound = r2.bindings_of(q2.result_nodes()[0]);
        assert!(d.is_call(bound[0]));
    }

    #[test]
    fn descendant_does_not_look_inside_call_parameters() {
        let d = parse("<r><axml:call service=\"f\"><secret>x</secret></axml:call></r>").unwrap();
        let q = parse_query("/r//secret").unwrap();
        assert!(!matches(&q, &d), "call parameters are not document content");
        // but the call node itself is visible to function tests
        let q2 = parse_query("/r//*()").unwrap();
        assert!(matches(&q2, &d));
    }

    #[test]
    fn join_variables_enforce_equality() {
        let d = parse("<r><a>1</a><b>1</b></r>").unwrap();
        let q = parse_query("/r[a=$V][b=$V]").unwrap();
        assert!(matches(&q, &d));
        let d2 = parse("<r><a>1</a><b>2</b></r>").unwrap();
        assert!(!matches(&q, &d2));
    }

    #[test]
    fn join_variables_across_tuples() {
        let d = parse("<r><a>1</a><a>2</a><b>2</b></r>").unwrap();
        let q = parse_query("/r[a=$V][b=$V] -> $V").unwrap();
        let r = eval(&q, &d);
        // only the a=2, b=2 combination survives; both bindings of $V in the
        // tuple render as "2"
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn homomorphism_not_injective() {
        // both pattern children may map to the same doc node
        let d = parse("<r><a>1</a></r>").unwrap();
        let q = parse_query("/r[a][a=\"1\"]").unwrap();
        assert!(matches(&q, &d));
    }

    #[test]
    fn or_nodes_union_choices() {
        use crate::pattern::{EdgeKind, FunMatch, PLabel, Pattern};
        // /r/(a | f()) — matches docs with an <a> child OR a call child
        let mut p = Pattern::new();
        let r = p.set_root(PLabel::Const("r".into()));
        let a = p.add_child(r, EdgeKind::Child, PLabel::Const("a".into()));
        let or = p.wrap_in_or(a);
        p.add_child(or, EdgeKind::Child, PLabel::Fun(FunMatch::Any));
        let d1 = parse("<r><a/></r>").unwrap();
        let d2 = parse("<r><axml:call service=\"f\"/></r>").unwrap();
        let d3 = parse("<r><b/></r>").unwrap();
        assert!(matches(&p, &d1));
        assert!(matches(&p, &d2));
        assert!(!matches(&p, &d3));
    }

    #[test]
    fn snapshot_on_fig1_like_doc_is_empty_before_invocation() {
        // Before invoking getNearbyRestos, "Best Western" has only non-5star
        // restaurants... our hotels_doc already has Jo; craft the real case:
        let d = parse(
            "<hotels><hotel><name>BW</name><rating>*****</rating>\
             <nearby><axml:call service=\"getNearbyRestos\"/></nearby>\
             </hotel></hotels>",
        )
        .unwrap();
        let q = parse_query("/hotels/hotel[rating=\"*****\"]/nearby//restaurant[name=$X] -> $X")
            .unwrap();
        assert!(eval(&q, &d).is_empty());
    }

    #[test]
    fn contributing_nodes_cover_paths() {
        let d = parse("<a><m><b><c>x</c></b></m></a>").unwrap();
        let q = parse_query("/a//c").unwrap();
        let contrib = contributing_nodes(&q, &d);
        // a, m, b, c — everything on the path (m and b realize the
        // descendant edge); the text leaf "x" is not an image
        assert_eq!(contrib.len(), 4);
    }

    #[test]
    fn contributing_nodes_exclude_unmatched_branches() {
        let d = parse("<a><b><c>x</c></b><z><w>y</w></z></a>").unwrap();
        let q = parse_query("/a//c").unwrap();
        let contrib = contributing_nodes(&q, &d);
        let labels: BTreeSet<&str> = contrib.iter().map(|&n| d.label(n)).collect();
        assert!(labels.contains("c"));
        assert!(!labels.contains("z"));
        assert!(!labels.contains("w"));
    }

    #[test]
    fn forest_roots_each_tried() {
        let d = parse("<a><x/></a><b><x/></b>").unwrap();
        let qa = parse_query("/a/x").unwrap();
        let qb = parse_query("/b/x").unwrap();
        assert!(matches(&qa, &d));
        assert!(matches(&qb, &d));
    }

    #[test]
    fn wildcard_root() {
        let d = parse("<anything><x/></anything>").unwrap();
        let q = parse_query("/*/x").unwrap();
        assert!(matches(&q, &d));
    }

    #[test]
    fn result_of_last_step_default() {
        let d = hotels_doc();
        let q = parse_query("/hotels/hotel/rating").unwrap();
        let r = eval(&q, &d);
        // two distinct rating element nodes, one per hotel
        assert_eq!(r.len(), 2);
    }
}
