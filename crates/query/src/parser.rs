//! An XPath-like concrete syntax for tree-pattern queries.
//!
//! ```text
//! /hotels/hotel[name="Best Western"][rating="*****"]
//!        /nearby//restaurant[name=$X][address=$Y][rating="*****"] -> $X, $Y
//! ```
//!
//! Grammar (whitespace is free between tokens):
//!
//! ```text
//! query    := path ( "->" "$"NAME ("," "$"NAME)* )?
//! path     := step+
//! step     := ("/" | "//") test pred* "!"?
//! test     := NAME "()" | "*" "()" | NAME | "*" | STRING | "$" NAME
//! pred     := "[" relstep+ ("=" rhs)? "]"
//! relstep  := ("/" | "//")? test pred*        (first separator defaults to child)
//! rhs      := (STRING | "$" NAME) "!"?
//! ```
//!
//! * `name()` / `*()` are function-node tests (extended queries, Section 2).
//! * `[a="v"]` abbreviates a child `a` holding the data value `v`;
//!   `[a=$X]` binds the value to variable `X`.
//! * `!` marks a node as a result node; the `-> $X,$Y` clause marks all
//!   occurrences of those variables as results. If the query contains no
//!   explicit result marker at all, the node of the **last step of the main
//!   path** is the result (the XPath convention).

use crate::pattern::{EdgeKind, FunMatch, PLabel, PNodeId, Pattern};
use std::fmt;

/// A query-syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError {
    /// Byte offset of the error.
    pub at: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for QueryParseError {}

/// Parses the XPath-like syntax into a [`Pattern`].
pub fn parse_query(input: &str) -> Result<Pattern, QueryParseError> {
    let mut p = QParser {
        s: input,
        pos: 0,
        pattern: Pattern::new(),
        explicit_result: false,
    };
    let last = p.parse_path(None)?;
    p.skip_ws();
    let mut result_vars: Vec<String> = Vec::new();
    if p.eat("->") {
        loop {
            p.skip_ws();
            p.expect("$")?;
            result_vars.push(p.name()?);
            p.skip_ws();
            if !p.eat(",") {
                break;
            }
        }
    }
    p.skip_ws();
    if p.pos != p.s.len() {
        return Err(p.err("trailing input"));
    }
    let mut pattern = p.pattern;
    let mut any_marked = p.explicit_result;
    for v in &result_vars {
        for id in pattern.node_ids().collect::<Vec<_>>() {
            if matches!(&pattern.node(id).label, PLabel::Var(n) if n.as_str() == v) {
                pattern.mark_result(id);
                any_marked = true;
            }
        }
    }
    if !any_marked {
        pattern.mark_result(last);
    }
    Ok(pattern)
}

struct QParser<'a> {
    s: &'a str,
    pos: usize,
    pattern: Pattern,
    explicit_result: bool,
}

impl<'a> QParser<'a> {
    fn err(&self, msg: impl Into<String>) -> QueryParseError {
        QueryParseError {
            at: self.pos,
            message: msg.into(),
        }
    }

    fn rest(&self) -> &str {
        &self.s[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.s.len() - trimmed.len();
    }

    fn eat(&mut self, tok: &str) -> bool {
        if self.rest().starts_with(tok) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn peek_is(&self, tok: &str) -> bool {
        self.rest().starts_with(tok)
    }

    fn expect(&mut self, tok: &str) -> Result<(), QueryParseError> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(self.err(format!("expected {tok:?}")))
        }
    }

    fn name(&mut self) -> Result<String, QueryParseError> {
        let start = self.pos;
        let mut advance = 0;
        for c in self.s[self.pos..].chars() {
            if c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | '@' | ':') {
                advance += c.len_utf8();
            } else {
                break;
            }
        }
        self.pos += advance;
        if self.pos == start {
            Err(self.err("expected a name"))
        } else {
            Ok(self.s[start..self.pos].to_string())
        }
    }

    fn string_lit(&mut self) -> Result<String, QueryParseError> {
        self.expect("\"")?;
        let start = self.pos;
        match self.s[self.pos..].find('"') {
            Some(i) => {
                self.pos += i + 1;
                Ok(self.s[start..start + i].to_string())
            }
            None => Err(self.err("unterminated string literal")),
        }
    }

    /// A node test, returning the label.
    fn test(&mut self) -> Result<PLabel, QueryParseError> {
        self.skip_ws();
        if self.peek_is("\"") {
            return Ok(PLabel::Const(self.string_lit()?.into()));
        }
        if self.eat("$") {
            return Ok(PLabel::Var(self.name()?.into()));
        }
        if self.eat("*") {
            if self.eat("()") {
                return Ok(PLabel::Fun(FunMatch::Any));
            }
            return Ok(PLabel::Wildcard);
        }
        let n = self.name()?;
        if self.eat("()") {
            return Ok(PLabel::Fun(FunMatch::OneOf(vec![n.into()])));
        }
        Ok(PLabel::Const(n.into()))
    }

    /// Parses `/step//step…` under `parent` (None = build the root);
    /// returns the node of the last step.
    fn parse_path(&mut self, parent: Option<PNodeId>) -> Result<PNodeId, QueryParseError> {
        let mut parent = parent;
        let mut last = None;
        loop {
            self.skip_ws();
            let edge = if self.eat("//") {
                EdgeKind::Descendant
            } else if self.eat("/") || (last.is_none() && parent.is_some()) {
                // plain "/" — or a relative path's implicit first child step
                EdgeKind::Child
            } else {
                break;
            };
            let label = self.test()?;
            let node = match parent {
                None => {
                    if edge == EdgeKind::Descendant {
                        // model "//a" at the top as root * with descendant a
                        let root = self.pattern.set_root(PLabel::Wildcard);
                        self.pattern.add_child(root, EdgeKind::Descendant, label)
                    } else {
                        self.pattern.set_root(label)
                    }
                }
                Some(p) => self.pattern.add_child(p, edge, label),
            };
            // predicates
            self.skip_ws();
            while self.peek_is("[") {
                self.expect("[")?;
                self.parse_pred(node)?;
                self.expect("]")?;
                self.skip_ws();
            }
            if self.eat("!") {
                self.pattern.mark_result(node);
                self.explicit_result = true;
            }
            parent = Some(node);
            last = Some(node);
        }
        last.ok_or_else(|| self.err("expected a path"))
    }

    /// Parses the inside of `[...]` under `ctx`.
    fn parse_pred(&mut self, ctx: PNodeId) -> Result<(), QueryParseError> {
        let last = self.parse_path(Some(ctx))?;
        self.skip_ws();
        if self.eat("=") {
            self.skip_ws();
            let rhs = if self.peek_is("\"") {
                PLabel::Const(self.string_lit()?.into())
            } else if self.eat("$") {
                PLabel::Var(self.name()?.into())
            } else {
                return Err(self.err("expected a string or $variable after '='"));
            };
            let v = self.pattern.add_child(last, EdgeKind::Child, rhs);
            self.skip_ws();
            if self.eat("!") {
                self.pattern.mark_result(v);
                self.explicit_result = true;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PLabel;

    fn labels(p: &Pattern) -> Vec<String> {
        p.node_ids()
            .map(|id| match &p.node(id).label {
                PLabel::Const(l) => l.to_string(),
                PLabel::Var(v) => format!("${v}"),
                PLabel::Wildcard => "*".into(),
                PLabel::Or => "OR".into(),
                PLabel::Fun(FunMatch::Any) => "*()".into(),
                PLabel::Fun(FunMatch::OneOf(ns)) => format!("{}()", ns[0]),
            })
            .collect()
    }

    #[test]
    fn simple_path() {
        let p = parse_query("/goingout/movies//show/schedule").unwrap();
        assert_eq!(labels(&p), vec!["goingout", "movies", "show", "schedule"]);
        // last step is implicitly the result
        assert_eq!(p.result_nodes().len(), 1);
        let show = p
            .node_ids()
            .find(|&i| matches!(&p.node(i).label, PLabel::Const(l) if l.as_str()=="show"))
            .unwrap();
        assert_eq!(p.node(show).edge, EdgeKind::Descendant);
    }

    #[test]
    fn predicates_with_values() {
        let p = parse_query("/goingout/movies//show[title=\"The Hours\"]/schedule").unwrap();
        assert_eq!(
            labels(&p),
            vec![
                "goingout",
                "movies",
                "show",
                "title",
                "The Hours",
                "schedule"
            ]
        );
    }

    #[test]
    fn fig4_query_with_variables() {
        let p = parse_query(
            "/hotel[name=\"Best Western\"][rating=\"*****\"]\
             /nearby//restaurant[name=$X][address=$Y][rating=\"*****\"] -> $X, $Y",
        )
        .unwrap();
        assert_eq!(p.len(), 13);
        assert_eq!(p.result_nodes().len(), 2);
        assert!(p.join_variables().is_empty());
        p.check_integrity().unwrap();
    }

    #[test]
    fn function_node_tests() {
        let p = parse_query("/hotel/rating/getRating()").unwrap();
        assert!(p.is_extended());
        let f = p.result_nodes()[0];
        assert!(
            matches!(&p.node(f).label, PLabel::Fun(FunMatch::OneOf(ns)) if ns[0] == "getRating")
        );
        let p2 = parse_query("/hotel//*()").unwrap();
        let f2 = p2.result_nodes()[0];
        assert!(matches!(&p2.node(f2).label, PLabel::Fun(FunMatch::Any)));
        assert_eq!(p2.node(f2).edge, EdgeKind::Descendant);
    }

    #[test]
    fn explicit_result_marker() {
        let p = parse_query("/a/b!/c").unwrap();
        let r = p.result_nodes();
        assert_eq!(r.len(), 1);
        assert!(matches!(&p.node(r[0]).label, PLabel::Const(l) if l.as_str()=="b"));
    }

    #[test]
    fn nested_predicates() {
        let p = parse_query("/site[regions//item[name=\"x\"]]/people").unwrap();
        assert_eq!(
            labels(&p),
            vec!["site", "regions", "item", "name", "x", "people"]
        );
        p.check_integrity().unwrap();
    }

    #[test]
    fn leading_descendant() {
        let p = parse_query("//restaurant/name").unwrap();
        assert_eq!(labels(&p), vec!["*", "restaurant", "name"]);
    }

    #[test]
    fn join_variable_detected() {
        let p = parse_query("/r[a=$V][b=$V]").unwrap();
        assert_eq!(p.join_variables().len(), 1);
    }

    #[test]
    fn errors() {
        assert!(parse_query("").is_err());
        assert!(parse_query("/a[").is_err());
        assert!(parse_query("/a[b=]").is_err());
        assert!(parse_query("/a trailing").is_err());
        assert!(parse_query("/a[b=\"unterminated]").is_err());
    }

    #[test]
    fn wildcard_steps() {
        let p = parse_query("/*/*//*").unwrap();
        assert_eq!(labels(&p), vec!["*", "*", "*"]);
    }
}
