//! Compiled query plans: parse/compile **once per pattern**, evaluate
//! everywhere.
//!
//! A [`QueryPlan`] fuses everything about a pattern that does not depend
//! on any particular document: a plan-local symbol table over the labels
//! the pattern mentions, the per-node label tests expressed in those
//! plan symbols, and the enumeration tables (`needs_enum`, join-variable
//! ids). Per document, the only remaining work is a **symbol-table
//! remap** — [`QueryPlan::bind`] translates each plan symbol through the
//! document's interner (`lookup_sym`), an `O(labels-in-pattern)` step —
//! after which evaluation runs on pure `u32` compares, exactly like the
//! transiently compiled path.
//!
//! ## Remap invariants
//!
//! * **Identity**: remapping the plan through a binding yields *the same*
//!   compiled test table that a transient per-(pattern, document)
//!   compilation would produce — checked by a `debug_assert` on every
//!   bound evaluation, and by the differential plan-equivalence oracle in
//!   release builds. Consequently results are byte-identical to both the
//!   transient path and [`crate::eval::seed_eval`], for *any* symbol
//!   table: disjoint (no label interned — every test compiles dead),
//!   permuted (symbols renumbered), or grown since the plan was built.
//! * **Staleness**: a binding carries the document's `sym_count` stamp.
//!   Symbol tables are append-only, so a binding is valid exactly while
//!   the stamp matches; a label interned *after* binding (e.g. spliced in
//!   by a service result) would otherwise be invisibly treated as
//!   never-interned. [`QueryPlan::eval_bound`] asserts currency;
//!   [`PlanBinding::is_current`] lets callers rebind lazily.
//! * **Documents are not interchangeable**: a binding translates into
//!   *one* document's symbol space. The stamp guards growth of that
//!   document, not identity across documents — callers keep bindings per
//!   document (the engine's per-run scratch does).
//!
//! [`PlanScratch`] carries the reusable memo-table allocations that the
//! old per-(pattern, document) `EvaluatorCache` held, without the
//! footgun: nothing in the scratch is keyed to a document or pattern, so
//! reuse across snapshots, documents, and patterns is always sound.

use crate::eval::{
    compile_ctests, enum_tables, eval_compiled, matches_compiled, CTest, EvalOptions,
    SnapshotResult,
};
use crate::pattern::{FunMatch, PLabel, PNodeId, Pattern};
use axml_xml::{DataSource, NodeId};
use std::collections::HashMap;

/// Reusable memo-table allocations for repeated evaluations (the NFQA
/// loop re-evaluates patterns after every splice). The tables are cleared
/// on reuse — only the capacity survives; entries never leak across
/// calls, documents, or patterns.
#[derive(Debug, Default)]
pub struct PlanScratch {
    memo: HashMap<(PNodeId, NodeId), bool>,
    desc_memo: HashMap<(PNodeId, NodeId), bool>,
}

impl PlanScratch {
    pub(crate) fn take_memo(&mut self) -> HashMap<(PNodeId, NodeId), bool> {
        let mut m = std::mem::take(&mut self.memo);
        m.clear();
        m
    }

    pub(crate) fn take_desc_memo(&mut self) -> HashMap<(PNodeId, NodeId), bool> {
        let mut m = std::mem::take(&mut self.desc_memo);
        m.clear();
        m
    }

    pub(crate) fn put_back(
        &mut self,
        memo: HashMap<(PNodeId, NodeId), bool>,
        desc_memo: HashMap<(PNodeId, NodeId), bool>,
    ) {
        self.memo = memo;
        self.desc_memo = desc_memo;
    }
}

/// A pattern-node label test over **plan-local** symbols (indices into
/// the plan's own symbol table, not any document's).
#[derive(Clone, Debug, PartialEq, Eq)]
enum PlanTest {
    /// A data node whose label is plan symbol `s`.
    DataSym(u32),
    /// Any data node.
    AnyData,
    /// Any function node.
    AnyCall,
    /// A function node whose service is one of the listed plan symbols
    /// (order preserved from the pattern's name list).
    CallOneOf(Vec<u32>),
    /// OR nodes are handled transparently by the traversal.
    Or,
}

/// A pattern compiled once, bindable to any [`DataSource`] by a symbol
/// remap. Cheap to clone is *not* a goal (it owns the pattern); share it
/// behind an `Arc` — the plan is immutable and thread-safe.
#[derive(Clone, Debug)]
pub struct QueryPlan {
    pattern: Pattern,
    /// Plan-local symbol table: every label text the pattern can test.
    syms: Vec<String>,
    /// Per pattern node, over plan symbols.
    tests: Vec<PlanTest>,
    needs_enum: Vec<bool>,
    var_id: Vec<Option<u32>>,
}

/// The result of remapping a plan into one document's symbol space:
/// plan symbol → that document's symbol (`None` = label never interned
/// there, the test can never fire). Stamped with the document's
/// `sym_count` at bind time.
#[derive(Clone, Debug)]
pub struct PlanBinding {
    map: Vec<Option<u32>>,
    stamp: usize,
}

impl PlanBinding {
    /// Is the binding still current for `doc`? Symbol tables are
    /// append-only, so currency is exactly "the table has not grown".
    pub fn is_current<D: DataSource>(&self, doc: &D) -> bool {
        self.stamp == doc.sym_count()
    }

    /// The `sym_count` stamp the binding was taken at.
    pub fn stamp(&self) -> usize {
        self.stamp
    }
}

impl QueryPlan {
    /// Compiles a pattern into a reusable plan. One pattern walk; no
    /// document in sight.
    pub fn compile(pattern: &Pattern) -> QueryPlan {
        let mut interner: HashMap<String, u32> = HashMap::new();
        let mut syms: Vec<String> = Vec::new();
        let mut intern = |text: &str, syms: &mut Vec<String>| -> u32 {
            if let Some(&s) = interner.get(text) {
                return s;
            }
            let s = syms.len() as u32;
            syms.push(text.to_string());
            interner.insert(text.to_string(), s);
            s
        };
        let mut tests = Vec::with_capacity(pattern.len());
        for id in pattern.node_ids() {
            tests.push(match &pattern.node(id).label {
                PLabel::Const(l) => PlanTest::DataSym(intern(l.as_str(), &mut syms)),
                PLabel::Var(_) | PLabel::Wildcard => PlanTest::AnyData,
                PLabel::Fun(FunMatch::Any) => PlanTest::AnyCall,
                PLabel::Fun(FunMatch::OneOf(names)) => PlanTest::CallOneOf(
                    names
                        .iter()
                        .map(|l| intern(l.as_str(), &mut syms))
                        .collect(),
                ),
                PLabel::Or => PlanTest::Or,
            });
        }
        let (needs_enum, var_id) = enum_tables(pattern);
        QueryPlan {
            pattern: pattern.clone(),
            syms,
            tests,
            needs_enum,
            var_id,
        }
    }

    /// The compiled pattern.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// Number of plan-local symbols (= the cost of one [`bind`] in symbol
    /// lookups).
    ///
    /// [`bind`]: QueryPlan::bind
    pub fn plan_syms(&self) -> usize {
        self.syms.len()
    }

    /// Remaps the plan into `doc`'s symbol space. `O(plan_syms)` hash
    /// lookups — this is the entire per-document setup cost of a cached
    /// plan.
    pub fn bind<D: DataSource>(&self, doc: &D) -> PlanBinding {
        PlanBinding {
            map: self.syms.iter().map(|s| doc.lookup_sym(s)).collect(),
            stamp: doc.sym_count(),
        }
    }

    /// The document-symbol test table obtained by pushing the binding
    /// through the plan tests. Equals what transient compilation against
    /// the same document produces (the remap-identity invariant).
    fn ctests_for(&self, binding: &PlanBinding) -> Vec<CTest> {
        self.tests
            .iter()
            .map(|t| match t {
                PlanTest::DataSym(s) => CTest::DataSym(binding.map[*s as usize]),
                PlanTest::AnyData => CTest::AnyData,
                PlanTest::AnyCall => CTest::AnyCall,
                PlanTest::CallOneOf(ss) => {
                    CTest::CallOneOf(ss.iter().filter_map(|&s| binding.map[s as usize]).collect())
                }
                PlanTest::Or => CTest::Or,
            })
            .collect()
    }

    /// Evaluates the plan on `doc` with default options and a fresh
    /// scratch.
    pub fn eval<D: DataSource>(&self, doc: &D) -> SnapshotResult {
        self.eval_with(doc, EvalOptions::default(), &mut PlanScratch::default())
    }

    /// Binds and evaluates in one step.
    pub fn eval_with<D: DataSource>(
        &self,
        doc: &D,
        opts: EvalOptions,
        scratch: &mut PlanScratch,
    ) -> SnapshotResult {
        let binding = self.bind(doc);
        self.eval_bound(&binding, doc, opts, scratch)
    }

    /// Evaluates through a previously taken binding (must be current —
    /// rebind after the document interned new labels).
    pub fn eval_bound<D: DataSource>(
        &self,
        binding: &PlanBinding,
        doc: &D,
        opts: EvalOptions,
        scratch: &mut PlanScratch,
    ) -> SnapshotResult {
        let ctest = self.checked_ctests(binding, doc);
        eval_compiled(
            &self.pattern,
            doc,
            opts,
            ctest,
            self.needs_enum.clone(),
            self.var_id.clone(),
            scratch,
        )
    }

    /// `true` iff at least one embedding exists (bound existence test).
    pub fn matches<D: DataSource>(&self, doc: &D, scratch: &mut PlanScratch) -> bool {
        let binding = self.bind(doc);
        let ctest = self.checked_ctests(&binding, doc);
        matches_compiled(
            &self.pattern,
            doc,
            EvalOptions::default(),
            ctest,
            self.needs_enum.clone(),
            self.var_id.clone(),
            scratch,
        )
    }

    fn checked_ctests<D: DataSource>(&self, binding: &PlanBinding, doc: &D) -> Vec<CTest> {
        assert_eq!(
            binding.stamp,
            doc.sym_count(),
            "stale plan binding: the document interned new labels since \
             bind() — rebind before evaluating"
        );
        let ctest = self.ctests_for(binding);
        // remap identity: the binding road and the transient road must
        // compile the same table
        debug_assert_eq!(ctest, compile_ctests(&self.pattern, doc));
        ctest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, seed_eval};
    use crate::parser::parse_query;
    use axml_xml::parse;

    #[test]
    fn plan_matches_transient_eval() {
        let d = parse(
            "<hotels><hotel><name>BW</name><rating>*****</rating></hotel>\
             <axml:call service=\"getHotels\"/></hotels>",
        )
        .unwrap();
        let q = parse_query("/hotels/hotel[rating=\"*****\"]/name").unwrap();
        let plan = QueryPlan::compile(&q);
        assert_eq!(plan.eval(&d), eval(&q, &d));
        assert_eq!(plan.eval(&d), seed_eval(&q, &d));
        assert!(plan.matches(&d, &mut PlanScratch::default()));
    }

    #[test]
    fn disjoint_symbol_table_compiles_dead_and_stays_sound() {
        let q = parse_query("/hotels/hotel/name").unwrap();
        let plan = QueryPlan::compile(&q);
        let d = parse("<auctions><item><bid>5</bid></item></auctions>").unwrap();
        let binding = plan.bind(&d);
        assert!(binding.is_current(&d));
        assert!(plan
            .eval_bound(
                &binding,
                &d,
                EvalOptions::default(),
                &mut PlanScratch::default()
            )
            .is_empty());
    }

    #[test]
    fn binding_goes_stale_when_labels_grow() {
        // regression: a plan cached before the document ever interned one
        // of its labels must start matching once the label appears
        let q = parse_query("/root/rare").unwrap();
        let plan = QueryPlan::compile(&q);
        let mut d = parse("<root><common>x</common></root>").unwrap();
        let binding = plan.bind(&d);
        assert!(plan
            .eval_bound(
                &binding,
                &d,
                EvalOptions::default(),
                &mut PlanScratch::default()
            )
            .is_empty());
        // the document interns "rare" only now
        d.add_element(d.roots()[0], "rare");
        assert!(!binding.is_current(&d), "sym_count grew");
        let rebound = plan.bind(&d);
        let r = plan.eval_bound(
            &rebound,
            &d,
            EvalOptions::default(),
            &mut PlanScratch::default(),
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r, seed_eval(&q, &d));
    }

    #[test]
    #[should_panic(expected = "stale plan binding")]
    fn stale_binding_is_rejected() {
        let q = parse_query("/root/rare").unwrap();
        let plan = QueryPlan::compile(&q);
        let mut d = parse("<root/>").unwrap();
        let binding = plan.bind(&d);
        d.add_element(d.roots()[0], "rare");
        plan.eval_bound(
            &binding,
            &d,
            EvalOptions::default(),
            &mut PlanScratch::default(),
        );
    }

    #[test]
    fn one_plan_many_permuted_symbol_tables() {
        // the same logical tree, but each document interns labels in a
        // different order (a decoy first root skews the symbol numbering)
        let q = parse_query("/hotels/hotel[rating=\"*****\"][name=$X] -> $X").unwrap();
        let plan = QueryPlan::compile(&q);
        let tree = "<hotels><hotel><name>BW</name><rating>*****</rating></hotel>\
                    <hotel><name>Penn</name><rating>**</rating></hotel></hotels>";
        let plain = parse(tree).unwrap();
        let permuted = parse(&format!(
            "<zzz><rating/><name/><hotel/><hotels/>{tree}</zzz>{tree}"
        ))
        .unwrap();
        let expected: Vec<Vec<String>> = crate::eval::render_result(&plain, &plan.eval(&plain));
        let got = crate::eval::render_result(&permuted, &plan.eval(&permuted));
        assert_eq!(expected, got);
        assert_eq!(plan.eval(&permuted), seed_eval(&q, &permuted));
    }
}
