//! Differential testing of the embedding evaluator against an independent
//! brute-force oracle implementing Definition 1 literally: enumerate every
//! structural embedding by exhaustive backtracking, check variable joins
//! on the complete mapping, restrict to result nodes — no memoization, no
//! join-blind fast paths, no candidate indexes, no shared code with the
//! production evaluator.

use axml_query::{eval, EdgeKind, FunMatch, PLabel, PNodeId, Pattern, ResultTuple};
use axml_xml::{Document, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// The snapshot result `q(d)` by exhaustive search.
fn oracle(pattern: &Pattern, doc: &Document) -> BTreeSet<ResultTuple> {
    let mut out = BTreeSet::new();
    if pattern.is_empty() {
        return out;
    }
    for &root in doc.roots() {
        for emb in embed_raw(pattern, doc, pattern.root(), root) {
            if !joins_ok(pattern, doc, &emb) {
                continue;
            }
            let tuple: ResultTuple = pattern
                .result_nodes()
                .into_iter()
                .filter_map(|r| emb.get(&r).map(|&n| (r, n)))
                .collect();
            out.insert(tuple);
        }
    }
    out
}

/// Variable-join check over a complete mapping (Definition 1: all
/// occurrences of a variable map to nodes with identical labels).
fn joins_ok(pattern: &Pattern, doc: &Document, emb: &BTreeMap<PNodeId, NodeId>) -> bool {
    let mut bound: BTreeMap<&str, &str> = BTreeMap::new();
    for (&p, &v) in emb {
        if let PLabel::Var(name) = &pattern.node(p).label {
            let label = doc.label(v);
            if let Some(prev) = bound.get(name.as_str()) {
                if *prev != label {
                    return false;
                }
            }
            bound.insert(name.as_str(), label);
        }
    }
    true
}

/// Every structural embedding of `p`'s subtree with `p ↦ v` (OR nodes map
/// to the chosen branch's image); joins deferred to `joins_ok`.
fn embed_raw(
    pattern: &Pattern,
    doc: &Document,
    p: PNodeId,
    v: NodeId,
) -> Vec<BTreeMap<PNodeId, NodeId>> {
    if let PLabel::Or = pattern.node(p).label {
        return pattern
            .node(p)
            .children
            .iter()
            .flat_map(|&b| embed_raw(pattern, doc, b, v))
            .collect();
    }
    let label_ok = match &pattern.node(p).label {
        PLabel::Const(c) => doc.is_data(v) && doc.label(v) == c.as_str(),
        PLabel::Var(_) | PLabel::Wildcard => doc.is_data(v),
        PLabel::Fun(m) => doc
            .call_info(v)
            .is_some_and(|(_, svc)| m.accepts(svc.as_str())),
        PLabel::Or => unreachable!(),
    };
    if !label_ok {
        return Vec::new();
    }
    let mut results: Vec<BTreeMap<PNodeId, NodeId>> = vec![BTreeMap::from([(p, v)])];
    for &pc in &pattern.node(p).children {
        let candidates: Vec<NodeId> = match pattern.node(pc).edge {
            EdgeKind::Child => doc.children(v).to_vec(),
            EdgeKind::Descendant => data_descendants(doc, v),
        };
        let mut next = Vec::new();
        for base in &results {
            for &u in &candidates {
                for sub in embed_raw(pattern, doc, pc, u) {
                    let mut merged = base.clone();
                    merged.extend(sub);
                    next.push(merged);
                }
            }
        }
        results = next;
        if results.is_empty() {
            break;
        }
    }
    results
}

/// Strict descendants visible to queries (never below a function node).
fn data_descendants(doc: &Document, v: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    if !doc.is_data(v) {
        return out;
    }
    let mut stack: Vec<NodeId> = doc.children(v).to_vec();
    while let Some(n) = stack.pop() {
        out.push(n);
        if doc.is_data(n) {
            stack.extend(doc.children(n).iter().copied());
        }
    }
    out
}

fn random_doc(seed: u64) -> Document {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Document::with_root("root");
    let mut frontier = vec![d.root()];
    for _ in 0..rng.gen_range(3..22) {
        let parent = frontier[rng.gen_range(0..frontier.len())];
        match rng.gen_range(0..10) {
            0 => {
                d.add_call(parent, format!("svc{}", rng.gen_range(0..2)));
            }
            1 | 2 => {
                d.add_text(parent, format!("v{}", rng.gen_range(0..3)));
            }
            _ => {
                let e = d.add_element(parent, format!("e{}", rng.gen_range(0..4)));
                frontier.push(e);
            }
        }
    }
    d
}

/// A small random query over the same alphabet, possibly with repeated
/// (join) variables, function tests and result marks.
fn random_pattern(seed: u64) -> Pattern {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = Pattern::new();
    let root = p.set_root(PLabel::Const("root".into()));
    let mut frontier = vec![root];
    let n = rng.gen_range(1..6);
    for _ in 0..n {
        let parent = frontier[rng.gen_range(0..frontier.len())];
        let edge = if rng.gen_bool(0.4) {
            EdgeKind::Descendant
        } else {
            EdgeKind::Child
        };
        let label = match rng.gen_range(0..8) {
            0 => PLabel::Wildcard,
            1 => PLabel::Var(format!("V{}", rng.gen_range(0..2)).into()),
            2 => PLabel::Const(format!("v{}", rng.gen_range(0..3)).into()),
            3 => PLabel::Fun(FunMatch::Any),
            _ => PLabel::Const(format!("e{}", rng.gen_range(0..4)).into()),
        };
        let is_fun = matches!(label, PLabel::Fun(_));
        let c = p.add_child(parent, edge, label);
        if !is_fun {
            frontier.push(c);
        }
    }
    let ids: Vec<PNodeId> = p.node_ids().collect();
    for _ in 0..rng.gen_range(1..3) {
        let pick = ids[rng.gen_range(0..ids.len())];
        p.mark_result(pick);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The production evaluator agrees with literal Definition 1.
    #[test]
    fn evaluator_matches_brute_force_oracle(dseed in 0u64..100_000, qseed in 0u64..100_000) {
        let doc = random_doc(dseed);
        let q = random_pattern(qseed);
        let fast: BTreeSet<ResultTuple> = eval(&q, &doc).tuples;
        let slow = oracle(&q, &doc);
        prop_assert_eq!(fast, slow, "dseed={} qseed={}", dseed, qseed);
    }

    /// `matches` agrees with non-emptiness of the oracle's embedding set.
    #[test]
    fn matches_agrees_with_oracle(dseed in 0u64..100_000, qseed in 0u64..100_000) {
        let doc = random_doc(dseed);
        let q = random_pattern(qseed);
        let any = doc.roots().iter().any(|&r| {
            embed_raw(&q, &doc, q.root(), r)
                .into_iter()
                .any(|emb| joins_ok(&q, &doc, &emb))
        });
        prop_assert_eq!(axml_query::matches(&q, &doc), any, "dseed={} qseed={}", dseed, qseed);
    }
}
