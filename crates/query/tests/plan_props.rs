//! Plan-equivalence properties at the query layer: a [`QueryPlan`]
//! compiled **once** must evaluate byte-identically to the interpreter on
//! any document — including documents whose symbol tables are disjoint
//! from, permutations of, or grown beyond whatever the plan's own
//! interned table looks like. The remap in [`QueryPlan::bind`] is the
//! only per-document work, so these properties pin exactly the invariant
//! the engine's compiled-plan path relies on.

use axml_query::{
    eval, EdgeKind, FunMatch, PLabel, PNodeId, Pattern, PlanScratch, QueryPlan, ResultTuple,
};
use axml_xml::Document;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// The full label alphabet the random documents draw from. Interning a
/// shuffled prefix of it before building a document permutes that
/// document's symbol table relative to every other document's.
fn alphabet() -> Vec<String> {
    let mut v: Vec<String> = (0..4).map(|i| format!("e{i}")).collect();
    v.extend((0..3).map(|i| format!("v{i}")));
    v
}

/// A random document; `warmup_seed` controls a hidden subtree whose only
/// purpose is to intern the alphabet in a shuffled order first, so two
/// documents with different warmup seeds assign different symbol ids to
/// the same labels.
fn random_doc(seed: u64, warmup_seed: Option<u64>) -> Document {
    let mut d = Document::with_root("root");
    if let Some(ws) = warmup_seed {
        let mut rng = StdRng::seed_from_u64(ws);
        let mut labels = alphabet();
        // Fisher–Yates (the vendored rand has no `seq` module)
        for i in (1..labels.len()).rev() {
            labels.swap(i, rng.gen_range(0..=i));
        }
        let warm = d.add_element(d.root(), "warmup");
        for l in labels {
            d.add_element(warm, l);
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut frontier = vec![d.root()];
    for _ in 0..rng.gen_range(3..22) {
        let parent = frontier[rng.gen_range(0..frontier.len())];
        match rng.gen_range(0..10) {
            0 => {
                d.add_call(parent, format!("svc{}", rng.gen_range(0..2)));
            }
            1 | 2 => {
                d.add_text(parent, format!("v{}", rng.gen_range(0..3)));
            }
            _ => {
                let e = d.add_element(parent, format!("e{}", rng.gen_range(0..4)));
                frontier.push(e);
            }
        }
    }
    d
}

/// A small random query over the same alphabet, possibly with repeated
/// (join) variables, function tests and result marks.
fn random_pattern(seed: u64) -> Pattern {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = Pattern::new();
    let root = p.set_root(PLabel::Const("root".into()));
    let mut frontier = vec![root];
    let n = rng.gen_range(1..6);
    for _ in 0..n {
        let parent = frontier[rng.gen_range(0..frontier.len())];
        let edge = if rng.gen_bool(0.4) {
            EdgeKind::Descendant
        } else {
            EdgeKind::Child
        };
        let label = match rng.gen_range(0..8) {
            0 => PLabel::Wildcard,
            1 => PLabel::Var(format!("V{}", rng.gen_range(0..2)).into()),
            2 => PLabel::Const(format!("v{}", rng.gen_range(0..3)).into()),
            3 => PLabel::Fun(FunMatch::Any),
            _ => PLabel::Const(format!("e{}", rng.gen_range(0..4)).into()),
        };
        let is_fun = matches!(label, PLabel::Fun(_));
        let c = p.add_child(parent, edge, label);
        if !is_fun {
            frontier.push(c);
        }
    }
    let ids: Vec<PNodeId> = p.node_ids().collect();
    for _ in 0..rng.gen_range(1..3) {
        let pick = ids[rng.gen_range(0..ids.len())];
        p.mark_result(pick);
    }
    p
}

fn tuples(pattern: &Pattern, doc: &Document) -> BTreeSet<ResultTuple> {
    eval(pattern, doc).tuples
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// One compiled plan, evaluated on a random document, agrees with the
    /// interpreter tuple for tuple — and per result node binding for
    /// binding.
    #[test]
    fn compiled_plan_agrees_with_interpreter(dseed in 0u64..100_000, qseed in 0u64..100_000) {
        let doc = random_doc(dseed, None);
        let q = random_pattern(qseed);
        let plan = QueryPlan::compile(&q);
        let interpreted = eval(&q, &doc);
        let compiled = plan.eval(&doc);
        prop_assert_eq!(&compiled.tuples, &interpreted.tuples, "dseed={} qseed={}", dseed, qseed);
        for r in q.result_nodes() {
            prop_assert_eq!(
                compiled.bindings_of(r),
                interpreted.bindings_of(r),
                "bindings of {:?} diverge (dseed={} qseed={})", r, dseed, qseed
            );
        }
    }

    /// One plan serves many documents whose symbol tables are permuted
    /// relative to each other (and disjoint from the plan's): the remap
    /// per document is the only thing that changes, never the answer.
    /// The scratch space is reused across documents, as the engine does.
    #[test]
    fn one_plan_many_permuted_symbol_tables(
        qseed in 0u64..100_000,
        dseeds in proptest::collection::vec(0u64..100_000, 2..5),
    ) {
        let q = random_pattern(qseed);
        let plan = QueryPlan::compile(&q);
        let mut scratch = PlanScratch::default();
        for (i, &dseed) in dseeds.iter().enumerate() {
            // warmup seed = position: each document interns the alphabet
            // in a different shuffled order
            let doc = random_doc(dseed, Some(i as u64 * 7919 + 1));
            let compiled = plan
                .eval_with(&doc, axml_query::EvalOptions::default(), &mut scratch)
                .tuples;
            prop_assert_eq!(
                compiled,
                tuples(&q, &doc),
                "doc {} diverges (qseed={} dseed={})", i, qseed, dseed
            );
        }
    }

    /// A binding taken before a document grew new symbols goes stale and
    /// must be refused; re-binding restores exact agreement. This is the
    /// grown-mid-session torture: the plan was compiled (and first bound)
    /// before the document ever interned some of its labels.
    #[test]
    fn rebinding_after_symbol_growth_stays_exact(
        dseed in 0u64..100_000,
        qseed in 0u64..100_000,
        extra in 1usize..6,
    ) {
        let mut doc = random_doc(dseed, None);
        let q = random_pattern(qseed);
        let plan = QueryPlan::compile(&q);
        let before = plan.bind(&doc);
        prop_assert!(before.is_current(&doc));

        // grow: new subtree with labels the document had never interned
        // (fresh names), plus alphabet labels it may or may not have seen
        let parent = doc.root();
        for i in 0..extra {
            let e = doc.add_element(parent, format!("late{i}"));
            doc.add_text(e, format!("v{}", i % 3));
        }
        if before.stamp() != doc.sym_count() {
            prop_assert!(!before.is_current(&doc), "stale binding must say so");
        }

        let after = plan.bind(&doc);
        prop_assert!(after.is_current(&doc));
        let mut scratch = PlanScratch::default();
        let compiled = plan
            .eval_bound(&after, &doc, axml_query::EvalOptions::default(), &mut scratch)
            .tuples;
        prop_assert_eq!(compiled, tuples(&q, &doc), "dseed={} qseed={}", dseed, qseed);
    }

    /// `QueryPlan::matches` agrees with the interpreter's `matches`.
    #[test]
    fn plan_matches_agrees(dseed in 0u64..100_000, qseed in 0u64..100_000) {
        let doc = random_doc(dseed, None);
        let q = random_pattern(qseed);
        let plan = QueryPlan::compile(&q);
        let mut scratch = PlanScratch::default();
        prop_assert_eq!(
            plan.matches(&doc, &mut scratch),
            axml_query::matches(&q, &doc),
            "dseed={} qseed={}", dseed, qseed
        );
    }
}
