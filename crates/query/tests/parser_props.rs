//! Robustness property tests for the query parser: never panics, and the
//! render→parse cycle is stable for parser-expressible patterns.

use axml_query::parse_query;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn query_parser_never_panics(input in "\\PC*") {
        let _ = parse_query(&input);
    }

    #[test]
    fn query_parser_never_panics_on_near_queries(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("/a".to_string()),
                Just("//b".to_string()),
                Just("[c=\"v\"]".to_string()),
                Just("[d=$X]".to_string()),
                Just("/*".to_string()),
                Just("/f()".to_string()),
                Just("!".to_string()),
                Just("->".to_string()),
                Just("$X".to_string()),
                Just("[".to_string()),
                Just("\"unterminated".to_string()),
            ],
            0..10,
        )
    ) {
        let input = parts.concat();
        if let Ok(p) = parse_query(&input) {
            p.check_integrity().unwrap();
        }
    }
}
