//! Durability policy knobs: when the write-ahead log fsyncs, and how
//! often it folds the splice history into a full-document checkpoint.
//!
//! The policy half of the durability subsystem is deliberately tiny and
//! side-effect free — [`crate::wal::DurabilityManager`] consults it on
//! every append, and the crash-matrix oracle sweeps its parameters —
//! so the *mechanism* (framing, fault injection, recovery) can be tested
//! against every policy point without special cases.

/// When appends are flushed to stable storage.
///
/// The acknowledged-prefix invariant (see `DESIGN.md`) is stated in terms
/// of fsync acknowledgements: a publication is *acknowledged* once a sync
/// covering its record returns, and every acknowledged publication must
/// survive any later crash byte-identically. The policy only moves the
/// acknowledgement point; it never weakens the invariant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every record: every publication is acknowledged before
    /// it becomes visible to readers. The default.
    Always,
    /// Sync after every `n`-th record: up to `n - 1` trailing
    /// publications may be lost on a crash (but never surface corrupt).
    EveryN(u32),
    /// Never sync explicitly: nothing is acknowledged, and a crash may
    /// lose the entire log tail beyond what the backend flushed on its
    /// own. Useful only for measuring the fsync cost itself.
    Never,
}

impl FsyncPolicy {
    /// Parses the CLI spelling: `always`, `never` or `every:N`.
    pub fn parse(s: &str) -> Result<FsyncPolicy, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            other => match other
                .strip_prefix("every:")
                .and_then(|n| n.parse::<u32>().ok())
            {
                Some(n) if n > 0 => Ok(FsyncPolicy::EveryN(n)),
                _ => Err(format!(
                    "invalid --fsync value {other:?} (expected always, never or every:N)"
                )),
            },
        }
    }
}

/// Configuration of one durable store: checkpoint cadence and fsync
/// policy. Swept by the crash-matrix oracle; surfaced on the CLI as
/// `--checkpoint-every` and `--fsync`.
#[derive(Clone, Debug)]
pub struct DurabilityOptions {
    /// Publication records between full-document checkpoint frames
    /// (`0` = only the initial checkpoint, never again). Checkpoints
    /// bound recovery replay length at the cost of log bytes.
    pub checkpoint_every: u64,
    /// When appends reach stable storage.
    pub fsync: FsyncPolicy,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            checkpoint_every: 8,
            fsync: FsyncPolicy::Always,
        }
    }
}

impl DurabilityOptions {
    /// Whether a checkpoint is due after `records_since_checkpoint`
    /// publication records have accumulated past the last checkpoint.
    pub fn checkpoint_due(&self, records_since_checkpoint: u64) -> bool {
        self.checkpoint_every > 0 && records_since_checkpoint >= self.checkpoint_every
    }

    /// Whether a sync is due after `appends_since_sync` unsynced appends
    /// (counting the one just performed).
    pub fn sync_due(&self, appends_since_sync: u32) -> bool {
        match self.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => appends_since_sync >= n,
            FsyncPolicy::Never => false,
        }
    }
}

/// Aggregate counters of one [`crate::wal::DurabilityManager`], compared
/// against the trace stream by `axml_obs::check_wal_accounting`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Publication and watermark records appended (checkpoints excluded).
    pub appends: usize,
    /// Appends covered by a successful sync at append time.
    pub synced_appends: usize,
    /// Checkpoint frames written (including each document's initial one).
    pub checkpoints: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsync_policy_parses_cli_spellings() {
        assert_eq!(FsyncPolicy::parse("always"), Ok(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Ok(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("every:3"), Ok(FsyncPolicy::EveryN(3)));
        assert!(FsyncPolicy::parse("every:0").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
    }

    #[test]
    fn checkpoint_cadence() {
        let opts = DurabilityOptions {
            checkpoint_every: 3,
            fsync: FsyncPolicy::Always,
        };
        assert!(!opts.checkpoint_due(2));
        assert!(opts.checkpoint_due(3));
        let never = DurabilityOptions {
            checkpoint_every: 0,
            fsync: FsyncPolicy::Always,
        };
        assert!(!never.checkpoint_due(1_000_000));
    }

    #[test]
    fn sync_cadence() {
        let every2 = DurabilityOptions {
            checkpoint_every: 8,
            fsync: FsyncPolicy::EveryN(2),
        };
        assert!(!every2.sync_due(1));
        assert!(every2.sync_due(2));
        assert!(DurabilityOptions::default().sync_due(1));
        let never = DurabilityOptions {
            checkpoint_every: 8,
            fsync: FsyncPolicy::Never,
        };
        assert!(!never.sync_due(100));
    }
}
