//! The cross-session compiled-plan cache: `(query, schema, config)` →
//! [`CompiledQuery`], so a query's NFQs, LPQs, layers, label automata and
//! bytecode are compiled **once per store** and every later session pays
//! only a symbol-table remap per document.
//!
//! Correctness does not depend on the cache: a cached plan is attached to
//! an engine via [`axml_core::Engine::with_plan`], and the engine consults
//! it only when [`CompiledQuery::compatible`] confirms the exact
//! compile-relevant key — a stale or mismatched plan is silently ignored,
//! never misapplied. Query answers, traces and statistics are
//! byte-identical with the cache on or off (pinned by the plan-equivalence
//! oracle and the golden-trace tests); the cache changes *when* the
//! compile work happens, not *what* is computed.
//!
//! Shape follows [`crate::CallCache`]: hash-**sharded** so concurrent
//! sessions probing different queries do not serialize on one lock, with
//! a global LRU capacity enforced by locking the shards in index order.
//! Probes emit [`EventKind::PlanCacheProbe`] events into the cache's own
//! sink — never into an engine's query span, which must not change with
//! cache state.

use axml_core::{plan_fingerprint, CompiledQuery, EngineConfig};
use axml_obs::{Event, EventKind, TraceSink};
use axml_query::{render, Pattern};
use axml_schema::Schema;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Configuration of a [`PlanCache`].
#[derive(Clone, Debug)]
pub struct PlanCacheConfig {
    /// Maximum number of cached plans before LRU eviction (default 64).
    /// The budget is global, not per shard. A capacity of 0 disables
    /// caching: every fetch compiles (still correct, never reused).
    pub capacity: usize,
    /// Number of lock shards (default 8, minimum 1). Purely a concurrency
    /// knob: shard count never changes hit/miss/LRU decisions, only which
    /// mutex a key contends on.
    pub shards: usize,
}

impl Default for PlanCacheConfig {
    fn default() -> Self {
        PlanCacheConfig {
            capacity: 64,
            shards: 8,
        }
    }
}

impl PlanCacheConfig {
    /// A config with the given capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        PlanCacheConfig {
            capacity,
            ..PlanCacheConfig::default()
        }
    }
}

/// Cumulative plan-cache counters (monotone across a store's lifetime).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Probes answered by a cached compatible plan.
    pub hits: u64,
    /// Probes that found nothing under the key (each one compiled).
    pub misses: u64,
    /// Plans actually compiled (= misses, plus recompiles after a
    /// fingerprint collision with an incompatible resident plan).
    pub compiles: u64,
    /// Plans evicted by the LRU capacity.
    pub evictions: u64,
}

impl PlanCacheStats {
    /// hits / (hits + misses), or 0.0 with no probes.
    pub fn hit_rate(&self) -> f64 {
        let probes = self.hits + self.misses;
        if probes == 0 {
            0.0
        } else {
            self.hits as f64 / probes as f64
        }
    }

    /// Component-wise sum (folds per-shard counters into totals).
    pub fn merged(&self, other: &PlanCacheStats) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            compiles: self.compiles + other.compiles,
            evictions: self.evictions + other.evictions,
        }
    }
}

struct PlanEntry {
    plan: Arc<CompiledQuery>,
    last_used: u64,
}

#[derive(Default)]
struct PlanShard {
    map: HashMap<String, PlanEntry>,
    stats: PlanCacheStats,
}

impl PlanShard {
    /// This shard's least-recently-used entry, as `(last_used, key)`.
    fn lru_min(&self) -> Option<(u64, String)> {
        self.map
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, e)| (e.last_used, k.clone()))
    }
}

/// A shared, internally synchronized cache of [`CompiledQuery`] plans,
/// keyed by the stable fingerprint of the compile-relevant plan key
/// ([`plan_fingerprint`]). See the module docs.
pub struct PlanCache {
    config: PlanCacheConfig,
    shards: Vec<Mutex<PlanShard>>,
    tick: AtomicU64,
    seq: AtomicU64,
    sink: Mutex<Option<Arc<dyn TraceSink>>>,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new(PlanCacheConfig::default())
    }
}

impl PlanCache {
    /// An empty cache with the given configuration.
    pub fn new(config: PlanCacheConfig) -> Self {
        let n = config.shards.max(1);
        PlanCache {
            config,
            shards: (0..n).map(|_| Mutex::new(PlanShard::default())).collect(),
            tick: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            sink: Mutex::new(None),
        }
    }

    /// The configuration this cache enforces.
    pub fn config(&self) -> &PlanCacheConfig {
        &self.config
    }

    /// Attaches the sink that receives this cache's `plan_cache` probe
    /// events. The stream is the cache's own — plan-cache activity never
    /// enters an engine's query span, whose bytes must not depend on
    /// cache state.
    pub fn set_sink(&self, sink: Arc<dyn TraceSink>) {
        *self.sink.lock().unwrap() = Some(sink);
    }

    /// A snapshot of the cumulative counters, summed over all shards.
    pub fn stats(&self) -> PlanCacheStats {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().stats)
            .fold(PlanCacheStats::default(), |acc, s| acc.merged(&s))
    }

    /// Live plans currently held.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().map.len())
            .sum()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached plan. Returns the number removed. (Plans are
    /// pure functions of their key, so invalidation is never *required* —
    /// this is a memory hook, not a correctness one.)
    pub fn clear(&self) -> usize {
        let mut guards: Vec<_> = self.shards.iter().map(|s| s.lock().unwrap()).collect();
        let mut n = 0;
        for shard in guards.iter_mut() {
            n += shard.map.len();
            shard.map.clear();
        }
        n
    }

    /// The compiled plan for `(query, schema, config)` — served from the
    /// cache when present, compiled (and inserted) when not. The returned
    /// plan is always compatible with the arguments; a fingerprint
    /// collision with an incompatible resident plan is treated as a miss
    /// and the slot is recompiled for the new key.
    pub fn fetch(
        &self,
        query: &Pattern,
        schema: Option<&Schema>,
        config: &EngineConfig,
    ) -> Arc<CompiledQuery> {
        let key = plan_fingerprint(query, schema, config);
        let n = self.shards.len();
        let idx = fnv(&key) as usize % n;
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let plan;
        let hit;
        {
            let mut shard = self.shards[idx].lock().unwrap();
            match shard.map.get_mut(&key) {
                Some(entry) if entry.plan.compatible(query, schema, config) => {
                    entry.last_used = tick;
                    plan = Arc::clone(&entry.plan);
                    hit = true;
                }
                resident => {
                    let collision = resident.is_some();
                    let compiled = Arc::new(CompiledQuery::compile(query, schema, config));
                    if self.config.capacity > 0 {
                        if collision {
                            shard.map.remove(&key);
                        }
                        shard.map.insert(
                            key.clone(),
                            PlanEntry {
                                plan: Arc::clone(&compiled),
                                last_used: tick,
                            },
                        );
                    }
                    plan = compiled;
                    hit = false;
                }
            }
            if hit {
                shard.stats.hits += 1;
            } else {
                shard.stats.misses += 1;
                shard.stats.compiles += 1;
            }
            // emitted under the shard lock: probes of one key are totally
            // ordered, so the first probe of a key is always the miss
            self.emit(query, &key, hit);
        }
        if !hit {
            self.evict_to_capacity();
        }
        plan
    }

    fn emit(&self, query: &Pattern, key: &str, hit: bool) {
        let sink = self.sink.lock().unwrap().clone();
        if let Some(sink) = sink {
            sink.emit(&Event {
                seq: self.seq.fetch_add(1, Ordering::Relaxed),
                sim_ms: 0.0,
                round: 0,
                layer: 0,
                cpu_ms: None,
                kind: EventKind::PlanCacheProbe {
                    query: render(query),
                    key: key.to_string(),
                    hit,
                },
            });
        }
    }

    /// Evicts globally least-recently-used plans until the capacity
    /// holds. Locks every shard in index order (a fixed total order, so
    /// two concurrent evictors cannot deadlock) and picks victims by
    /// global minimum `last_used` — ticks are unique, so the choice is
    /// deterministic.
    fn evict_to_capacity(&self) {
        let mut guards: Vec<_> = self.shards.iter().map(|s| s.lock().unwrap()).collect();
        let mut entries: usize = guards.iter().map(|g| g.map.len()).sum();
        if entries <= self.config.capacity {
            return;
        }
        let mut minima: Vec<Option<(u64, String)>> = guards.iter().map(|g| g.lru_min()).collect();
        while entries > self.config.capacity {
            let victim = minima
                .iter()
                .enumerate()
                .filter_map(|(i, m)| m.as_ref().map(|(tick, _)| (*tick, i)))
                .min();
            let Some((_, i)) = victim else { return };
            let (_, key) = minima[i].take().expect("victim shard has a minimum");
            guards[i].map.remove(&key).expect("minimum key is present");
            entries -= 1;
            guards[i].stats.evictions += 1;
            minima[i] = guards[i].lru_min();
        }
    }
}

/// FNV-1a over the fingerprint string, for shard placement only (the
/// fingerprint itself is already a hash; this just folds it to an index
/// deterministically across builds).
fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_obs::{check_plan_cache, check_trace, RingSink};
    use axml_query::parse_query;
    use axml_schema::figure2_schema;

    fn q(i: usize) -> Pattern {
        parse_query(&format!("/hotels/hotel[rating=\"{i}\"]/name")).unwrap()
    }

    #[test]
    fn first_fetch_compiles_second_reuses() {
        let cache = PlanCache::default();
        let config = EngineConfig::default();
        let a = cache.fetch(&q(1), None, &config);
        let b = cache.fetch(&q(1), None, &config);
        assert!(Arc::ptr_eq(&a, &b), "second fetch must reuse the plan");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.compiles), (1, 1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn key_distinguishes_schema_and_compile_relevant_config() {
        let cache = PlanCache::default();
        let config = EngineConfig::default();
        let schema = figure2_schema();
        let plain = cache.fetch(&q(1), None, &config);
        let typed = cache.fetch(&q(1), Some(&schema), &config);
        assert!(!Arc::ptr_eq(&plain, &typed));
        let mut relaxed = config.clone();
        relaxed.relax_xpath = true;
        let rel = cache.fetch(&q(1), None, &relaxed);
        assert!(!Arc::ptr_eq(&plain, &rel));
        // runtime-only knobs share the plan
        let mut runtime = config.clone();
        runtime.parallel = false;
        let same = cache.fetch(&q(1), None, &runtime);
        assert!(Arc::ptr_eq(&plain, &same));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn lru_eviction_under_capacity() {
        let cache = PlanCache::new(PlanCacheConfig {
            capacity: 2,
            shards: 4,
        });
        let config = EngineConfig::default();
        cache.fetch(&q(1), None, &config);
        cache.fetch(&q(2), None, &config);
        cache.fetch(&q(1), None, &config); // touch 1 → 2 becomes LRU
        cache.fetch(&q(3), None, &config);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // q2 was evicted: fetching it again compiles (and evicts q1, now
        // the least recently used of {q1, q3})
        cache.fetch(&q(2), None, &config);
        assert_eq!(cache.stats().compiles, 4);
        // q3 survived both evictions
        let before = cache.stats().compiles;
        cache.fetch(&q(3), None, &config);
        assert_eq!(cache.stats().compiles, before);
    }

    #[test]
    fn zero_capacity_disables_reuse_but_stays_correct() {
        let cache = PlanCache::new(PlanCacheConfig::with_capacity(0));
        let config = EngineConfig::default();
        let a = cache.fetch(&q(1), None, &config);
        let b = cache.fetch(&q(1), None, &config);
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(a.compatible(&q(1), None, &config));
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn probe_events_satisfy_the_oracle() {
        let cache = PlanCache::default();
        let sink = Arc::new(RingSink::unbounded());
        cache.set_sink(Arc::clone(&sink) as Arc<dyn TraceSink>);
        let config = EngineConfig::default();
        cache.fetch(&q(1), None, &config);
        cache.fetch(&q(1), None, &config);
        cache.fetch(&q(2), None, &config);
        let events = sink.events();
        assert_eq!(events.len(), 3);
        let vs = check_trace(&events);
        assert!(vs.is_empty(), "{vs:?}");
        let s = cache.stats();
        let vs = check_plan_cache(&events, s.hits as usize, s.misses as usize);
        assert!(vs.is_empty(), "{vs:?}");
        // a wrong counter is caught
        assert!(!check_plan_cache(&events, 0, 3).is_empty());
    }

    #[test]
    fn concurrent_fetches_converge_on_one_plan() {
        let cache = Arc::new(PlanCache::default());
        let config = EngineConfig::default();
        let plans: Vec<_> = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    let config = config.clone();
                    s.spawn(move || cache.fetch(&q(1), None, &config))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        // all compatible; after the first insert, later fetches share it
        for p in &plans {
            assert!(p.compatible(&q(1), None, &config));
        }
        assert_eq!(cache.len(), 1);
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 8);
    }
}
