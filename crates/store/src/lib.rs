#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # axml-store — cross-query reuse (reconstructed Section 7)
//!
//! The paper evaluates single queries against a freshly loaded document,
//! but its setting — a peer holding AXML documents whose intensional
//! parts name *external services* — is inherently multi-query: the same
//! document answers a stream of queries over time, and the lazy
//! machinery that avoids *irrelevant* calls within one query says
//! nothing about *repeated* calls across queries. This crate supplies
//! that missing layer:
//!
//! * [`CallCache`] — a memoized call-result cache keyed by
//!   `(service, parameters, pushed query)` with per-service validity
//!   windows (TTLs) charged to the **simulated** clock, deterministic
//!   LRU eviction under entry/byte budgets, and invalidation hooks
//!   (explicit, TTL expiry, and optional purge when a service's circuit
//!   breaker trips open). It implements the engine-facing
//!   [`axml_services::InvokeCache`] contract: the engine probes it
//!   before invoking, splices hits at zero network cost, and populates
//!   it on successful invocations only.
//! * [`PlanCache`] — the cross-session compiled-plan cache: each
//!   `(query, schema, compile-relevant config)` is compiled **once per
//!   store** into an [`axml_core::CompiledQuery`] (NFQs, LPQs, layers,
//!   label automata, bytecode), and later sessions pay only a per-document
//!   symbol-table remap. Answers, traces and stats are byte-identical
//!   with the cache on or off.
//! * [`DocumentStore`] — named documents that survive across queries,
//!   sharing one cache. Documents are stored as atomically published
//!   copy-on-write versions ([`axml_xml::VersionedDocument`]), so any
//!   number of sessions read concurrently with snapshot isolation.
//! * [`Session`] — a stream of queries against one stored document, the
//!   simulated clock persisting between queries so validity windows
//!   measure real elapsed (simulated) time.
//! * [`DocumentStore::serve`] — the multi-tenant scheduler: N session
//!   specs run on a work-stealing worker pool, or under a seeded
//!   deterministic interleaving whose recorded schedule replays serially
//!   (the concurrency test oracle; see [`sched`]).
//! * [`wal`] / [`checkpoint`] / [`recover`] — the durability subsystem:
//!   an append-only CRC-framed write-ahead log of published splices plus
//!   periodic full-document checkpoints, written through a [`LogDir`]
//!   abstraction with a real-filesystem backend ([`FsDir`]) and a
//!   deterministic in-memory one ([`SimDir`]) whose seeded
//!   [`CrashProfile`] injects torn writes, dropped flushes and bit rot
//!   into the *unsynced* tail only. [`DocumentStore::recover`] rebuilds
//!   the store from the logs: truncate at the first invalid frame,
//!   replay splices atop the newest intact checkpoint, re-anchor
//!   subscription watermarks. The crash-matrix oracle asserts every
//!   fsync-acknowledged publication survives recovery byte-identically.
//!
//! ```
//! use axml_gen::scenario::figure1;
//! use axml_query::parse_query;
//! use axml_store::{DocumentStore, SessionOptions};
//!
//! let s = figure1();
//! let mut store = DocumentStore::new();
//! store.insert("hotels", s.doc);
//! let q = parse_query("/hotels/hotel/name/$N -> $N").unwrap();
//! let mut session = store
//!     .session("hotels", &s.registry, Some(&s.schema), SessionOptions::default())
//!     .unwrap();
//! let cold = session.query(&q);
//! let warm = session.query(&q);
//! assert_eq!(warm.answers, cold.answers);
//! assert_eq!(warm.stats.calls_invoked, 0); // every call served by the cache
//! ```

pub mod cache;
pub mod checkpoint;
pub mod plan_cache;
pub mod recover;
pub mod sched;
pub mod session;
pub mod store;
pub mod wal;

pub use cache::{CacheConfig, CacheStats, CallCache, SingleLockCache};
pub use checkpoint::{DurabilityOptions, DurabilityStats, FsyncPolicy};
pub use plan_cache::{PlanCache, PlanCacheConfig, PlanCacheStats};
pub use recover::{recover_log, DocRecovery, RecoveredLog, RecoveryReport};
pub use sched::{
    QueryOutcome, ScheduleEntry, SchedulerMode, ServeReport, SessionOutcome, SessionSpec,
};
pub use session::{Session, SessionOptions, SessionReport};
pub use store::DocumentStore;
pub use wal::{
    crc32, decode_record, doc_name_from_file, encode_record, frame, log_file_name, scan_frames,
    CrashProfile, DocTap, DurabilityManager, FrameScan, FsDir, LogDir, LogFile, SimDir, WalError,
    WalRecord, MAX_FRAME_LEN, WAL_MAGIC,
};
