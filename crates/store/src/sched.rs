//! The session scheduler: N sessions, one store, bounded workers.
//!
//! Two modes share one outcome shape:
//!
//! * [`SchedulerMode::Concurrent`] — a work-stealing pool of real worker
//!   threads. Each worker owns a LIFO deque of runnable sessions; idle
//!   workers steal FIFO from the shared injector or from other workers,
//!   and park on a condvar (rather than spinning) while nothing is
//!   runnable. After each query a session goes back on its worker's own
//!   deque, so
//!   a session's queries stay on one worker when the pool is not starved
//!   (cache-warm), while starved workers still make progress by stealing.
//! * [`SchedulerMode::DeterministicSeeded`] — a single thread picks the
//!   next runnable session with a seeded [SplitMix64] generator and
//!   records the resulting interleaving as a [`ScheduleEntry`] list. The
//!   same seed always produces the same schedule, and the recorded
//!   schedule can be replayed serially with
//!   [`DocumentStore::serve_schedule`] — the serial-replay test oracle:
//!   a correct implementation produces *identical per-session outcomes*
//!   when the same schedule runs again on a fresh, identically-seeded
//!   world.
//!
//! Correctness leans on two properties established elsewhere: snapshot
//! isolation (every query reads one frozen [`axml_xml::VersionedDocument`]
//! version — no torn splices) and cache answer-invisibility (a cache hit
//! changes cost, never answers), which together make per-session answers
//! independent of the interleaving for fault-free registries.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

use crate::session::{Session, SessionOptions};
use crate::store::DocumentStore;
use axml_obs::TraceSink;
use axml_query::Pattern;
use axml_schema::Schema;
use axml_services::Registry;
use std::collections::{BTreeSet, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// One tenant's workload: a named stream of queries against one stored
/// document.
#[derive(Clone, Debug)]
pub struct SessionSpec {
    /// Session label (reported back in the [`SessionOutcome`]).
    pub name: String,
    /// Name of the document in the store this session queries.
    pub document: String,
    /// The queries, run in order.
    pub queries: Vec<Pattern>,
    /// Per-session evaluation options.
    pub options: SessionOptions,
}

impl SessionSpec {
    /// A spec with default options.
    pub fn new(
        name: impl Into<String>,
        document: impl Into<String>,
        queries: Vec<Pattern>,
    ) -> Self {
        SessionSpec {
            name: name.into(),
            document: document.into(),
            queries,
            options: SessionOptions::default(),
        }
    }
}

/// How [`DocumentStore::serve`] interleaves sessions.
#[derive(Clone, Debug)]
pub enum SchedulerMode {
    /// Real concurrency: a work-stealing pool of `workers` threads.
    Concurrent {
        /// Worker threads (clamped to ≥ 1).
        workers: usize,
    },
    /// Single-threaded, seed-determined interleaving; records the
    /// schedule it played for serial replay.
    DeterministicSeeded {
        /// The interleaving seed.
        seed: u64,
    },
}

/// One step of a deterministic schedule: session `session` ran its query
/// number `query`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduleEntry {
    /// Index into the spec list.
    pub session: usize,
    /// Query index within that session.
    pub query: usize,
}

/// What one scheduled query produced (the interleaving-independent
/// projection of a [`crate::session::SessionReport`]).
#[derive(Clone, Debug, PartialEq)]
pub struct QueryOutcome {
    /// Rendered answer tuples, deduplicated and ordered.
    pub answers: BTreeSet<Vec<String>>,
    /// Whether the answer was complete.
    pub complete: bool,
    /// Service calls this query actually invoked.
    pub calls_invoked: usize,
    /// Cache hits this query observed.
    pub cache_hits: usize,
    /// Simulated time this query consumed.
    pub sim_time_ms: f64,
    /// Real wall-clock latency of the query, in milliseconds.
    pub wall_ms: f64,
    /// The document version the query evaluated against.
    pub doc_version: u64,
}

/// All outcomes of one session, in query order.
#[derive(Clone, Debug)]
pub struct SessionOutcome {
    /// The spec's session label.
    pub name: String,
    /// Per-query outcomes (same length and order as the spec's queries).
    pub queries: Vec<QueryOutcome>,
    /// The session's simulated clock after its last query.
    pub clock_ms: f64,
}

/// What a whole [`DocumentStore::serve`] run produced.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Per-session outcomes, in spec order.
    pub sessions: Vec<SessionOutcome>,
    /// The interleaving that was played (deterministic mode only; empty
    /// for the concurrent pool, whose interleaving is nondeterministic).
    pub schedule: Vec<ScheduleEntry>,
    /// Real wall-clock duration of the whole run, in milliseconds.
    pub wall_ms: f64,
    /// Total queries across all sessions.
    pub total_queries: usize,
}

impl ServeReport {
    /// Aggregate throughput over the whole run.
    pub fn queries_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return 0.0;
        }
        self.total_queries as f64 / (self.wall_ms / 1000.0)
    }

    /// Per-query wall-clock latencies folded into an `axml-obs`
    /// histogram (for p50/p99 reporting).
    pub fn latency_histogram(&self) -> axml_obs::Histogram {
        let mut h = axml_obs::Histogram::default();
        for s in &self.sessions {
            for q in &s.queries {
                h.record(q.wall_ms);
            }
        }
        h
    }

    /// The interleaving-independent projection used by the serial-replay
    /// oracle: per-session answers, completeness and invocation effort.
    pub fn answers_by_session(&self) -> Vec<(String, Vec<BTreeSet<Vec<String>>>)> {
        self.sessions
            .iter()
            .map(|s| {
                (
                    s.name.clone(),
                    s.queries.iter().map(|q| q.answers.clone()).collect(),
                )
            })
            .collect()
    }
}

/// SplitMix64 — tiny, seedable, good enough to diversify interleavings.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A session moving through the scheduler, together with what it has
/// produced so far. Owned by exactly one queue or worker at a time.
struct Running<'a> {
    idx: usize,
    session: Session<'a>,
    outcomes: Vec<QueryOutcome>,
}

impl Running<'_> {
    /// Runs the session's next query; returns `true` while queries remain.
    fn step(&mut self, specs: &[SessionSpec]) -> bool {
        let qidx = self.outcomes.len();
        let q = &specs[self.idx].queries[qidx];
        let t0 = Instant::now();
        let report = self.session.query(q);
        self.outcomes.push(QueryOutcome {
            answers: report.answers,
            complete: report.complete,
            calls_invoked: report.stats.calls_invoked,
            cache_hits: report.stats.cache_hits,
            sim_time_ms: report.stats.sim_time_ms,
            wall_ms: t0.elapsed().as_secs_f64() * 1000.0,
            doc_version: report.doc_version,
        });
        self.outcomes.len() < specs[self.idx].queries.len()
    }

    fn finish(self, specs: &[SessionSpec]) -> (usize, SessionOutcome) {
        (
            self.idx,
            SessionOutcome {
                name: specs[self.idx].name.clone(),
                clock_ms: self.session.clock_ms(),
                queries: self.outcomes,
            },
        )
    }
}

impl DocumentStore {
    fn start_sessions<'a>(
        &self,
        specs: &'a [SessionSpec],
        registry: &'a Registry,
        schema: Option<&'a Schema>,
        sinks: Option<&'a [&'a dyn TraceSink]>,
    ) -> Vec<Running<'a>> {
        specs
            .iter()
            .enumerate()
            .map(|(idx, spec)| {
                let mut session = self
                    .session(&spec.document, registry, schema, spec.options.clone())
                    .unwrap_or_else(|| panic!("no document named {:?} in store", spec.document));
                if let Some(sinks) = sinks {
                    if let Some(&sink) = sinks.get(idx) {
                        session = session.with_observer(sink);
                    }
                }
                Running {
                    idx,
                    session,
                    outcomes: Vec::with_capacity(spec.queries.len()),
                }
            })
            .collect()
    }

    /// Runs every spec's query stream to completion under `mode` and
    /// reports per-session outcomes plus run-level throughput.
    ///
    /// `sinks`, when given, attaches `sinks[i]` as session `i`'s trace
    /// observer — one structured trace stream per session (sessions on
    /// different workers emit concurrently, so per-session streams are
    /// the unit that stays internally ordered).
    ///
    /// Specs whose `queries` list is empty complete immediately with an
    /// empty outcome. Panics if a spec names a document the store does
    /// not hold.
    pub fn serve(
        &self,
        specs: &[SessionSpec],
        registry: &Registry,
        schema: Option<&Schema>,
        mode: &SchedulerMode,
        sinks: Option<&[&dyn TraceSink]>,
    ) -> ServeReport {
        let t0 = Instant::now();
        let mut slots: Vec<Option<SessionOutcome>> = (0..specs.len()).map(|_| None).collect();
        let mut schedule = Vec::new();
        match mode {
            SchedulerMode::DeterministicSeeded { seed } => {
                let mut rng = SplitMix64(*seed);
                let mut runnable: Vec<Running> = Vec::new();
                for r in self.start_sessions(specs, registry, schema, sinks) {
                    if specs[r.idx].queries.is_empty() {
                        let (idx, out) = r.finish(specs);
                        slots[idx] = Some(out);
                    } else {
                        runnable.push(r);
                    }
                }
                while !runnable.is_empty() {
                    let pick = (rng.next() % runnable.len() as u64) as usize;
                    let r = &mut runnable[pick];
                    schedule.push(ScheduleEntry {
                        session: r.idx,
                        query: r.outcomes.len(),
                    });
                    if !r.step(specs) {
                        let (idx, out) = runnable.swap_remove(pick).finish(specs);
                        slots[idx] = Some(out);
                    }
                }
            }
            SchedulerMode::Concurrent { workers } => {
                let workers = (*workers).max(1);
                let locals: Vec<Mutex<VecDeque<Running>>> =
                    (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
                let injector: Mutex<VecDeque<Running>> = Mutex::new(VecDeque::new());
                let live = AtomicUsize::new(0);
                let finished: Mutex<Vec<(usize, SessionOutcome)>> = Mutex::new(Vec::new());
                // Idle workers park on this condvar instead of spinning.
                // The no-lost-wakeup protocol: a parking worker re-scans
                // the queues *while holding* `idle.0` before it waits, and
                // a worker that makes work visible (or retires the last
                // live session) takes `idle.0` — with no deque lock held —
                // before notifying. A push therefore either lands before
                // the parker's scan (and is seen) or blocks on `idle.0`
                // until the parker is actually waiting (and wakes it).
                let idle: (Mutex<()>, Condvar) = (Mutex::new(()), Condvar::new());
                {
                    let mut inj = injector.lock().unwrap();
                    for r in self.start_sessions(specs, registry, schema, sinks) {
                        if specs[r.idx].queries.is_empty() {
                            finished.lock().unwrap().push(r.finish(specs));
                        } else {
                            live.fetch_add(1, Ordering::SeqCst);
                            inj.push_back(r);
                        }
                    }
                }
                std::thread::scope(|scope| {
                    for w in 0..workers {
                        let locals = &locals;
                        let injector = &injector;
                        let live = &live;
                        let finished = &finished;
                        let idle = &idle;
                        scope.spawn(move || {
                            // Every deque guard below is scoped to its own
                            // statement, so a worker never holds one deque's
                            // lock while taking another's — no lock-order
                            // cycle between two idle workers stealing from
                            // each other.
                            let take = || {
                                // own deque first (LIFO: keep a session
                                // hot), then the injector, then steal FIFO.
                                if let Some(r) = locals[w].lock().unwrap().pop_back() {
                                    return Some(r);
                                }
                                if let Some(r) = injector.lock().unwrap().pop_front() {
                                    return Some(r);
                                }
                                (1..workers).find_map(|d| {
                                    locals[(w + d) % workers].lock().unwrap().pop_front()
                                })
                            };
                            let queued = || {
                                !injector.lock().unwrap().is_empty()
                                    || locals.iter().any(|l| !l.lock().unwrap().is_empty())
                            };
                            loop {
                                match take() {
                                    Some(mut r) => {
                                        if r.step(specs) {
                                            locals[w].lock().unwrap().push_back(r);
                                            // a parked worker may now have
                                            // something to steal
                                            let _g = idle.0.lock().unwrap();
                                            idle.1.notify_all();
                                        } else {
                                            finished.lock().unwrap().push(r.finish(specs));
                                            if live.fetch_sub(1, Ordering::SeqCst) == 1 {
                                                // last session retired:
                                                // wake everyone to exit
                                                let _g = idle.0.lock().unwrap();
                                                idle.1.notify_all();
                                            }
                                        }
                                    }
                                    None => {
                                        let mut g = idle.0.lock().unwrap();
                                        while live.load(Ordering::SeqCst) != 0 && !queued() {
                                            g = idle.1.wait(g).unwrap();
                                        }
                                        if live.load(Ordering::SeqCst) == 0 {
                                            return;
                                        }
                                    }
                                }
                            }
                        });
                    }
                });
                for (idx, out) in finished.into_inner().unwrap() {
                    slots[idx] = Some(out);
                }
            }
        }
        let sessions: Vec<SessionOutcome> = slots
            .into_iter()
            .map(|s| s.expect("every session runs to completion"))
            .collect();
        let total_queries = sessions.iter().map(|s| s.queries.len()).sum();
        ServeReport {
            sessions,
            schedule,
            wall_ms: t0.elapsed().as_secs_f64() * 1000.0,
            total_queries,
        }
    }

    /// Serially replays an explicit schedule (as recorded by the
    /// deterministic mode) and reports the outcomes. The serial-replay
    /// oracle asserts that this — on a fresh, identically-seeded world —
    /// matches the original run exactly.
    ///
    /// # Panics
    /// Panics if the schedule is not a valid interleaving of the specs'
    /// query streams (each session's entries must cover `0..len` in
    /// order).
    pub fn serve_schedule(
        &self,
        specs: &[SessionSpec],
        registry: &Registry,
        schema: Option<&Schema>,
        schedule: &[ScheduleEntry],
        sinks: Option<&[&dyn TraceSink]>,
    ) -> ServeReport {
        let t0 = Instant::now();
        let mut running = self.start_sessions(specs, registry, schema, sinks);
        for entry in schedule {
            let r = &mut running[entry.session];
            assert_eq!(
                entry.query,
                r.outcomes.len(),
                "schedule replays session {}'s queries out of order",
                entry.session
            );
            r.step(specs);
        }
        let mut slots: Vec<Option<SessionOutcome>> = (0..specs.len()).map(|_| None).collect();
        for r in running {
            assert_eq!(
                r.outcomes.len(),
                specs[r.idx].queries.len(),
                "schedule does not run session {} to completion",
                r.idx
            );
            let (idx, out) = r.finish(specs);
            slots[idx] = Some(out);
        }
        let sessions: Vec<SessionOutcome> = slots.into_iter().map(|s| s.unwrap()).collect();
        let total_queries = sessions.iter().map(|s| s.queries.len()).sum();
        ServeReport {
            sessions,
            schedule: schedule.to_vec(),
            wall_ms: t0.elapsed().as_secs_f64() * 1000.0,
            total_queries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_query::parse_query;
    use axml_xml::Document;

    fn doc() -> Document {
        let mut d = Document::with_root("r");
        let a = d.add_element(d.root(), "a");
        d.add_text(a, "x");
        d
    }

    fn specs(n: usize, q: usize) -> Vec<SessionSpec> {
        let query = parse_query("/r/a/$X -> $X").unwrap();
        (0..n)
            .map(|i| SessionSpec::new(format!("s{i}"), "d", vec![query.clone(); q]))
            .collect()
    }

    #[test]
    fn deterministic_mode_is_reproducible_and_replayable() {
        let registry = Registry::new();
        let mut store = DocumentStore::new();
        store.insert("d", doc());
        let specs = specs(3, 2);
        let mode = SchedulerMode::DeterministicSeeded { seed: 7 };
        let one = store.serve(&specs, &registry, None, &mode, None);
        assert_eq!(one.total_queries, 6);
        assert_eq!(one.schedule.len(), 6);
        let two = store.serve(&specs, &registry, None, &mode, None);
        assert_eq!(one.schedule, two.schedule, "same seed, same interleaving");
        assert_eq!(one.answers_by_session(), two.answers_by_session());
        // serial replay of the recorded schedule matches
        let replay = store.serve_schedule(&specs, &registry, None, &one.schedule, None);
        assert_eq!(one.answers_by_session(), replay.answers_by_session());
    }

    #[test]
    fn different_seeds_reach_different_interleavings() {
        let registry = Registry::new();
        let mut store = DocumentStore::new();
        store.insert("d", doc());
        let specs = specs(4, 3);
        let schedules: BTreeSet<Vec<(usize, usize)>> = (0..8)
            .map(|seed| {
                store
                    .serve(
                        &specs,
                        &registry,
                        None,
                        &SchedulerMode::DeterministicSeeded { seed },
                        None,
                    )
                    .schedule
                    .iter()
                    .map(|e| (e.session, e.query))
                    .collect()
            })
            .collect();
        assert!(schedules.len() > 1, "8 seeds all produced one schedule");
    }

    #[test]
    fn concurrent_pool_completes_all_sessions() {
        let registry = Registry::new();
        let mut store = DocumentStore::new();
        store.insert("d", doc());
        let specs = specs(5, 3);
        let report = store.serve(
            &specs,
            &registry,
            None,
            &SchedulerMode::Concurrent { workers: 4 },
            None,
        );
        assert_eq!(report.total_queries, 15);
        assert!(report.schedule.is_empty());
        for (i, s) in report.sessions.iter().enumerate() {
            assert_eq!(s.name, format!("s{i}"), "outcomes keep spec order");
            assert_eq!(s.queries.len(), 3);
            for q in &s.queries {
                assert!(q.complete);
                assert_eq!(q.answers.len(), 1);
            }
        }
        assert!(report.latency_histogram().count() == 15);
    }

    #[test]
    fn idle_heavy_pool_terminates() {
        // Regression: with more workers than runnable sessions, most
        // workers are idle and stealing from each other the whole run —
        // the configuration that deadlocked when a worker held its own
        // deque lock while probing another's. The run must terminate
        // with every query answered.
        let registry = Registry::new();
        let mut store = DocumentStore::new();
        store.insert("d", doc());
        let specs = specs(2, 4);
        let report = store.serve(
            &specs,
            &registry,
            None,
            &SchedulerMode::Concurrent { workers: 8 },
            None,
        );
        assert_eq!(report.total_queries, 8);
        for s in &report.sessions {
            assert!(s.queries.iter().all(|q| q.complete));
        }
    }

    #[test]
    fn empty_query_streams_complete_immediately() {
        let registry = Registry::new();
        let mut store = DocumentStore::new();
        store.insert("d", doc());
        let specs = vec![
            SessionSpec::new("empty", "d", Vec::new()),
            SessionSpec::new("busy", "d", vec![parse_query("/r/a/$X -> $X").unwrap()]),
        ];
        for mode in [
            SchedulerMode::DeterministicSeeded { seed: 1 },
            SchedulerMode::Concurrent { workers: 2 },
        ] {
            let report = store.serve(&specs, &registry, None, &mode, None);
            assert_eq!(report.sessions[0].queries.len(), 0);
            assert_eq!(report.sessions[1].queries.len(), 1);
        }
    }
}
