//! Crash recovery: rebuild a `DocumentStore` from its write-ahead logs.
//!
//! Recovery of one log is a pure function of its bytes ([`recover_log`]):
//! scan the CRC-framed valid prefix ([`crate::wal::scan_frames`]), then
//! replay sequentially — start from the newest intact full-document
//! checkpoint already seen, apply each `Splices` record via
//! `Document::splice_by_call_id` (exact, because the binary codec
//! preserves call ids and the id counter), adopt `Snapshot` fallbacks,
//! and track the last persisted watermark per subscription. Any
//! replay-level inconsistency (version gap, unknown call id) is treated
//! exactly like a framing failure: the log is truncated at that frame
//! and everything before it is the recovered state.
//!
//! Directory-level recovery ([`recover_dir`]) additionally truncates
//! each physical file to its valid prefix — making recovery idempotent:
//! a second recovery (even after another crash during the first) sees
//! the same valid prefix and reproduces the same state.

use crate::wal::{doc_name_from_file, scan_frames, LogDir, WalError, WalRecord};
use axml_xml::Document;
use std::collections::BTreeMap;

/// Outcome of recovering one log file (pure, in-memory).
pub struct RecoveredLog {
    /// The recovered document, or `None` when no intact checkpoint
    /// exists (the document was never acknowledged durable).
    pub doc: Option<Document>,
    /// Version the recovered document corresponds to.
    pub version: u64,
    /// Valid frames consumed.
    pub frames: usize,
    /// Splice operations replayed on top of the checkpoint.
    pub splices_replayed: usize,
    /// Version of the checkpoint replay started from.
    pub checkpoint_version: u64,
    /// Publication records since that last checkpoint (seeds the
    /// checkpoint cadence of the adopted log).
    pub records_since_checkpoint: u64,
    /// Last persisted watermark per subscription, clamped to `version`.
    pub watermarks: BTreeMap<String, u64>,
    /// Byte length of the valid prefix; the file is truncated here.
    pub valid_len: u64,
    /// Offset and reason of the truncation point, if the log did not end
    /// cleanly.
    pub truncated: Option<(u64, String)>,
}

/// Replays one log image. Never fails: corruption shortens the valid
/// prefix instead.
pub fn recover_log(buf: &[u8]) -> RecoveredLog {
    let scan = scan_frames(buf);
    let mut truncated = scan.truncated;
    let mut valid_len = scan.valid_len;
    let mut state: Option<(u64, Document)> = None;
    let mut watermarks: BTreeMap<String, u64> = BTreeMap::new();
    let mut frames = 0usize;
    let mut splices_replayed = 0usize;
    let mut checkpoint_version = 0u64;
    let mut records_since_checkpoint = 0u64;

    'replay: for (offset, record) in scan.records {
        match record {
            WalRecord::Checkpoint { version, doc } => {
                // A checkpoint always follows the publication record of
                // the same version (or opens the log at its insert
                // version); anything else is corruption.
                if let Some((v, _)) = &state {
                    if version != *v {
                        truncated = Some((
                            offset,
                            format!("checkpoint at v{version} but log is at v{v}"),
                        ));
                        valid_len = offset;
                        break 'replay;
                    }
                }
                checkpoint_version = version;
                records_since_checkpoint = 0;
                state = Some((version, doc));
            }
            WalRecord::Splices { version, ops, .. } => {
                let Some((v, doc)) = &mut state else {
                    truncated = Some((offset, "splice record before any checkpoint".to_string()));
                    valid_len = offset;
                    break 'replay;
                };
                if version != *v + 1 {
                    truncated = Some((
                        offset,
                        format!("splice record at v{version} but log is at v{v}"),
                    ));
                    valid_len = offset;
                    break 'replay;
                }
                for (call, result) in &ops {
                    if doc
                        .splice_by_call_id(axml_xml::CallId(*call), result)
                        .is_none()
                    {
                        truncated =
                            Some((offset, format!("splice references unknown call id {call}")));
                        valid_len = offset;
                        break 'replay;
                    }
                    splices_replayed += 1;
                }
                *v = version;
                records_since_checkpoint += 1;
            }
            WalRecord::Snapshot { version, doc, .. } => {
                if let Some((v, _)) = &state {
                    if version != *v + 1 {
                        truncated = Some((
                            offset,
                            format!("snapshot record at v{version} but log is at v{v}"),
                        ));
                        valid_len = offset;
                        break 'replay;
                    }
                }
                state = Some((version, doc));
                records_since_checkpoint += 1;
            }
            WalRecord::Watermark {
                subscription,
                version,
            } => {
                watermarks.insert(subscription, version);
            }
        }
        frames += 1;
    }

    let (version, doc) = match state {
        Some((v, d)) => (v, Some(d)),
        None => (0, None),
    };
    // A watermark past the recovered version refers to lost (unacked)
    // publications; clamp so re-anchoring never claims the future.
    for w in watermarks.values_mut() {
        *w = (*w).min(version);
    }
    RecoveredLog {
        doc,
        version,
        frames,
        splices_replayed,
        checkpoint_version,
        records_since_checkpoint,
        watermarks,
        valid_len,
        truncated,
    }
}

/// Per-document recovery outcome, as reported to callers and the CLI.
#[derive(Clone, Debug)]
pub struct DocRecovery {
    /// Document name (decoded from the log file name).
    pub name: String,
    /// Log file name inside the store directory.
    pub file: String,
    /// Valid frames consumed.
    pub frames: usize,
    /// Splices replayed on top of the newest intact checkpoint.
    pub splices_replayed: usize,
    /// Version of the checkpoint replay started from.
    pub checkpoint_version: u64,
    /// Version the document was recovered to.
    pub recovered_version: u64,
    /// Offset the log was truncated at, if it did not end cleanly.
    pub truncated_at: Option<u64>,
    /// Why the log was truncated there.
    pub truncate_reason: Option<String>,
    /// Persisted subscription watermarks (clamped to the recovered
    /// version).
    pub watermarks: BTreeMap<String, u64>,
    /// Set when the document could not be recovered at all (no intact
    /// checkpoint): the one-line diagnostic with file, offset and reason.
    pub error: Option<String>,
}

/// Outcome of recovering a whole store directory.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// One entry per log file found, sorted by document name.
    pub docs: Vec<DocRecovery>,
}

impl RecoveryReport {
    /// Whether every log recovered to a usable document.
    pub fn ok(&self) -> bool {
        self.docs.iter().all(|d| d.error.is_none())
    }

    /// The first unrecoverable document's diagnostic, if any.
    pub fn first_error(&self) -> Option<&str> {
        self.docs.iter().find_map(|d| d.error.as_deref())
    }

    /// Total splices replayed across all documents.
    pub fn splices_replayed(&self) -> usize {
        self.docs.iter().map(|d| d.splices_replayed).sum()
    }

    /// Whether any log had a torn or corrupt tail truncated.
    pub fn any_truncated(&self) -> bool {
        self.docs.iter().any(|d| d.truncated_at.is_some())
    }
}

/// A recovered document ready for the store to adopt, paired with its
/// report entry.
pub(crate) struct RecoveredDoc {
    pub name: String,
    pub file: String,
    pub doc: Option<Document>,
    pub version: u64,
    pub records_since_checkpoint: u64,
    pub report: DocRecovery,
}

/// Scans `dir`, recovers every `.wal` file, and truncates each file to
/// its valid prefix. Fails only on directory-level I/O errors — corrupt
/// logs become report entries, not errors.
pub(crate) fn recover_dir(dir: &dyn LogDir) -> Result<Vec<RecoveredDoc>, WalError> {
    let mut out = Vec::new();
    for file in dir.list()? {
        let Some(name) = doc_name_from_file(&file) else {
            continue;
        };
        let buf = dir.read(&file)?;
        let recovered = recover_log(&buf);
        // Truncate the physical file to the valid prefix so the log can
        // be appended to again and a re-run recovers identically. Skip
        // the write when nothing is being cut (keeps recovery read-only
        // in the happy path) and when the doc is unrecoverable (leave
        // the evidence in place for diagnosis).
        if recovered.doc.is_some() && recovered.valid_len < buf.len() as u64 {
            dir.truncate(&file, recovered.valid_len)?;
        }
        let error = if recovered.doc.is_none() {
            let (offset, reason) = recovered
                .truncated
                .clone()
                .unwrap_or((0, "log contains no checkpoint".to_string()));
            Some(format!(
                "unrecoverable document {name:?}: {file} invalid at offset {offset}: {reason}"
            ))
        } else {
            None
        };
        let report = DocRecovery {
            name: name.clone(),
            file: file.clone(),
            frames: recovered.frames,
            splices_replayed: recovered.splices_replayed,
            checkpoint_version: recovered.checkpoint_version,
            recovered_version: recovered.version,
            truncated_at: recovered.truncated.as_ref().map(|(o, _)| *o),
            truncate_reason: recovered.truncated.as_ref().map(|(_, r)| r.clone()),
            watermarks: recovered.watermarks.clone(),
            error,
        };
        out.push(RecoveredDoc {
            name,
            file,
            doc: recovered.doc,
            version: recovered.version,
            records_since_checkpoint: recovered.records_since_checkpoint,
            report,
        });
    }
    out.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{encode_record, frame, WAL_MAGIC};
    use axml_xml::Document;

    fn doc_with_call() -> (Document, axml_xml::CallId) {
        let mut d = Document::default();
        let root = d.add_root("site");
        let call = d.add_call(root, "svc");
        let (cid, _) = d.call_info(call).unwrap();
        (d, cid)
    }

    fn log(records: &[WalRecord]) -> Vec<u8> {
        let mut buf = WAL_MAGIC.to_vec();
        for r in records {
            buf.extend_from_slice(&frame(&encode_record(r)));
        }
        buf
    }

    #[test]
    fn replays_splices_on_checkpoint() {
        let (d, cid) = doc_with_call();
        let mut result = Document::default();
        result.add_root_text("42");
        let buf = log(&[
            WalRecord::Checkpoint {
                version: 0,
                doc: d.clone(),
            },
            WalRecord::Splices {
                version: 1,
                changed_paths: None,
                ops: vec![(cid.0, result.clone())],
            },
            WalRecord::Watermark {
                subscription: "s".into(),
                version: 1,
            },
        ]);
        let rec = recover_log(&buf);
        assert!(rec.truncated.is_none());
        assert_eq!(rec.version, 1);
        assert_eq!(rec.frames, 3);
        assert_eq!(rec.splices_replayed, 1);
        assert_eq!(rec.watermarks.get("s"), Some(&1));
        let doc = rec.doc.expect("recovered");
        doc.check_integrity().unwrap();
        let xml = axml_xml::to_xml(&doc);
        assert!(xml.contains("42"), "{xml}");
        // The spliced call is gone.
        assert!(doc.find_call(cid).is_none());
    }

    #[test]
    fn version_gap_truncates_at_offending_frame() {
        let (d, cid) = doc_with_call();
        let mut result = Document::default();
        result.add_root_text("x");
        let buf = log(&[
            WalRecord::Checkpoint {
                version: 0,
                doc: d.clone(),
            },
            WalRecord::Splices {
                version: 2, // gap: v1 missing
                changed_paths: None,
                ops: vec![(cid.0, result)],
            },
        ]);
        let rec = recover_log(&buf);
        assert_eq!(rec.version, 0);
        assert_eq!(rec.frames, 1);
        let (_, reason) = rec.truncated.expect("truncated");
        assert!(reason.contains("v2"), "{reason}");
        // valid_len covers only the checkpoint frame.
        assert!(rec.valid_len < buf.len() as u64);
    }

    #[test]
    fn unknown_call_id_truncates() {
        let (d, _) = doc_with_call();
        let mut result = Document::default();
        result.add_root_text("x");
        let buf = log(&[
            WalRecord::Checkpoint { version: 0, doc: d },
            WalRecord::Splices {
                version: 1,
                changed_paths: None,
                ops: vec![(999, result)],
            },
        ]);
        let rec = recover_log(&buf);
        assert_eq!(rec.version, 0);
        let (_, reason) = rec.truncated.expect("truncated");
        assert!(reason.contains("unknown call id 999"), "{reason}");
    }

    #[test]
    fn no_checkpoint_is_unrecoverable() {
        let rec = recover_log(&log(&[WalRecord::Watermark {
            subscription: "s".into(),
            version: 3,
        }]));
        assert!(rec.doc.is_none());
        assert_eq!(rec.version, 0);
        // Watermarks clamp to the recovered version.
        assert_eq!(rec.watermarks.get("s"), Some(&0));
    }

    #[test]
    fn newest_checkpoint_wins_and_counts_reset() {
        let (d, cid) = doc_with_call();
        let mut result = Document::default();
        result.add_root_text("1");
        let mut d1 = d.clone();
        d1.splice_by_call_id(cid, &result).unwrap();
        let buf = log(&[
            WalRecord::Checkpoint {
                version: 0,
                doc: d.clone(),
            },
            WalRecord::Splices {
                version: 1,
                changed_paths: None,
                ops: vec![(cid.0, result.clone())],
            },
            WalRecord::Checkpoint {
                version: 1,
                doc: d1.clone(),
            },
            WalRecord::Snapshot {
                version: 2,
                changed_paths: None,
                doc: d1,
            },
        ]);
        let rec = recover_log(&buf);
        assert!(rec.truncated.is_none());
        assert_eq!(rec.version, 2);
        assert_eq!(rec.checkpoint_version, 1);
        assert_eq!(rec.records_since_checkpoint, 1);
    }
}
