//! Write-ahead log for published splices.
//!
//! Every publication of a durable document appends one CRC-framed record
//! to that document's append-only log file *before* the new version
//! becomes visible to readers (the append runs inside the
//! `VersionedDocument` publish lock via a
//! [`PublicationTap`]). Periodically the log folds the
//! splice history into a full-document checkpoint frame so recovery
//! replay stays bounded.
//!
//! The log speaks to storage through the [`LogDir`] / [`LogFile`] traits
//! with two implementations:
//!
//! * [`FsDir`] — real files under a directory, `O_APPEND` writes,
//!   `sync_data` for fsync.
//! * [`SimDir`] — a deterministic in-memory disk with a seeded
//!   [`CrashProfile`]: each file keeps a *durable* byte vector (what
//!   survives a crash) and a *buffered* tail (appended but not yet
//!   synced). A crash moves a seeded-length prefix of the buffered tail
//!   into the durable image — modelling torn writes — and may zero a
//!   span (dropped/reordered page flush) or flip a bit (rot) **inside
//!   that unsynced tail only**. Synced bytes are never touched: that is
//!   the contract fsync buys, and the crash-matrix oracle asserts the
//!   whole stack preserves it end to end.
//!
//! ## Frame format
//!
//! A log file is `AXMLWAL1` (8 magic bytes) followed by frames:
//!
//! ```text
//! [len: u32 LE] [crc32: u32 LE over payload] [payload: len bytes]
//! ```
//!
//! The payload is one [`WalRecord`] (tag byte + body). Recovery scans
//! frames in order and truncates the file at the first frame whose
//! length is implausible, whose payload is short, or whose CRC or
//! decoding fails — everything before that point is the *valid prefix*.

use crate::checkpoint::{DurabilityOptions, DurabilityStats};
use axml_obs::{Event, EventKind, TraceSink};
use axml_xml::{
    decode_document, document_to_bytes, Document, Forest, Publication, PublicationTap, SpliceOp,
};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Magic bytes opening every log file; doubles as a format version.
pub const WAL_MAGIC: &[u8; 8] = b"AXMLWAL1";

/// Upper bound on a single frame payload; anything larger in a length
/// field is treated as corruption rather than attempted as an allocation.
pub const MAX_FRAME_LEN: u32 = 1 << 30;

/// A durability failure: I/O, simulated crash, or corruption. The string
/// is a complete one-line diagnostic (file, offset and reason where
/// known) suitable for the CLI to print verbatim.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalError(pub String);

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for WalError {}

// ---------------------------------------------------------------------------
// CRC32 (IEEE reflected, polynomial 0xEDB88320) — the workspace vendors no
// checksum crate, so the table lives here.
// ---------------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// IEEE CRC32 of `bytes` (the checksum zip/gzip use).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Storage traits
// ---------------------------------------------------------------------------

/// One append-only log file.
pub trait LogFile: Send + Sync {
    /// Append bytes at the end of the file. Buffered until [`sync`].
    ///
    /// [`sync`]: LogFile::sync
    fn append(&self, bytes: &[u8]) -> Result<(), WalError>;
    /// Flush all appended bytes to stable storage. On return, every byte
    /// appended so far must survive a crash.
    fn sync(&self) -> Result<(), WalError>;
}

/// A directory of log files, addressed by file name (use
/// [`log_file_name`] to derive one from a document name).
pub trait LogDir: Send + Sync {
    /// Open `name` for appending, creating it empty if absent.
    fn open_append(&self, name: &str) -> Result<Box<dyn LogFile>, WalError>;
    /// Read the entire current contents of `name`.
    fn read(&self, name: &str) -> Result<Vec<u8>, WalError>;
    /// Truncate `name` to `len` bytes (used by recovery to discard a
    /// torn tail).
    fn truncate(&self, name: &str, len: u64) -> Result<(), WalError>;
    /// All log file names present, sorted.
    fn list(&self) -> Result<Vec<String>, WalError>;
}

/// Log file name for a document: percent-encodes anything outside
/// `[A-Za-z0-9._-]` and appends `.wal`.
pub fn log_file_name(doc: &str) -> String {
    let mut out = String::with_capacity(doc.len() + 4);
    for b in doc.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'.' | b'_' | b'-' => out.push(b as char),
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out.push_str(".wal");
    out
}

/// Inverse of [`log_file_name`]: recovers the document name from a log
/// file name, or `None` if it is not a well-formed log file name.
pub fn doc_name_from_file(file: &str) -> Option<String> {
    let stem = file.strip_suffix(".wal")?;
    let bytes = stem.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = stem.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

// ---------------------------------------------------------------------------
// Real filesystem backend
// ---------------------------------------------------------------------------

/// Log directory backed by real files under `root`.
pub struct FsDir {
    root: PathBuf,
}

impl FsDir {
    /// Use `root` as the store directory, creating it if missing.
    pub fn create(root: impl Into<PathBuf>) -> Result<FsDir, WalError> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| WalError(format!("cannot create store dir {}: {e}", root.display())))?;
        Ok(FsDir { root })
    }

    /// Open an existing store directory without creating it.
    pub fn open(root: impl Into<PathBuf>) -> Result<FsDir, WalError> {
        let root = root.into();
        if !root.is_dir() {
            return Err(WalError(format!(
                "store dir {} does not exist",
                root.display()
            )));
        }
        Ok(FsDir { root })
    }
}

struct FsFile {
    path: PathBuf,
    file: Mutex<std::fs::File>,
}

impl LogFile for FsFile {
    fn append(&self, bytes: &[u8]) -> Result<(), WalError> {
        let mut f = self.file.lock().unwrap();
        f.write_all(bytes)
            .map_err(|e| WalError(format!("append to {}: {e}", self.path.display())))
    }

    fn sync(&self) -> Result<(), WalError> {
        let f = self.file.lock().unwrap();
        f.sync_data()
            .map_err(|e| WalError(format!("fsync {}: {e}", self.path.display())))
    }
}

impl LogDir for FsDir {
    fn open_append(&self, name: &str) -> Result<Box<dyn LogFile>, WalError> {
        let path = self.root.join(name);
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| WalError(format!("open {}: {e}", path.display())))?;
        Ok(Box::new(FsFile {
            path,
            file: Mutex::new(file),
        }))
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, WalError> {
        let path = self.root.join(name);
        std::fs::read(&path).map_err(|e| WalError(format!("read {}: {e}", path.display())))
    }

    fn truncate(&self, name: &str, len: u64) -> Result<(), WalError> {
        let path = self.root.join(name);
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| WalError(format!("open {}: {e}", path.display())))?;
        file.set_len(len)
            .map_err(|e| WalError(format!("truncate {}: {e}", path.display())))?;
        file.sync_data()
            .map_err(|e| WalError(format!("fsync {}: {e}", path.display())))
    }

    fn list(&self) -> Result<Vec<String>, WalError> {
        let mut names = Vec::new();
        let entries = std::fs::read_dir(&self.root)
            .map_err(|e| WalError(format!("read store dir {}: {e}", self.root.display())))?;
        for entry in entries {
            let entry = entry
                .map_err(|e| WalError(format!("read store dir {}: {e}", self.root.display())))?;
            if let Some(name) = entry.file_name().to_str() {
                if name.ends_with(".wal") {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }
}

// ---------------------------------------------------------------------------
// Deterministic in-memory backend with crash injection
// ---------------------------------------------------------------------------

/// How and when a [`SimDir`] crashes. All randomness flows from `seed`
/// through a splitmix64 stream, so a given profile replays the same
/// crash byte-for-byte.
#[derive(Clone, Debug, Default)]
pub struct CrashProfile {
    /// Seed for every seeded choice below.
    pub seed: u64,
    /// Crash when the directory's operation counter (appends, syncs,
    /// truncates) reaches this count; `None` = never crash on its own.
    pub crash_after_ops: Option<u64>,
    /// On crash, zero out a seeded span inside the surviving unsynced
    /// tail — modelling a dropped or reordered page flush.
    pub drop_flush_span: bool,
    /// On crash, flip one seeded bit inside the surviving unsynced tail —
    /// modelling bit rot the CRC must catch.
    pub bit_rot: bool,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Clone, Default)]
struct SimFileState {
    /// Bytes guaranteed to survive a crash (covered by a completed sync,
    /// or the torn prefix that happened to hit the platter).
    durable: Vec<u8>,
    /// Appended but not yet synced.
    buffered: Vec<u8>,
}

struct SimState {
    files: BTreeMap<String, SimFileState>,
    profile: CrashProfile,
    rng: u64,
    ops: u64,
    crashed: bool,
}

/// Deterministic in-memory log directory with seeded crash injection.
/// Cloning shares the underlying disk (file handles need the directory
/// alive).
#[derive(Clone)]
pub struct SimDir {
    state: Arc<Mutex<SimState>>,
}

impl SimDir {
    /// An empty simulated disk that crashes per `profile`.
    pub fn new(profile: CrashProfile) -> SimDir {
        let rng = profile.seed ^ 0xA076_1D64_78BD_642F;
        SimDir {
            state: Arc::new(Mutex::new(SimState {
                files: BTreeMap::new(),
                profile,
                rng,
                ops: 0,
                crashed: false,
            })),
        }
    }

    /// Whether the simulated machine has crashed (all further I/O fails).
    pub fn crashed(&self) -> bool {
        self.state.lock().unwrap().crashed
    }

    /// Crash immediately, applying the profile's torn-write/corruption
    /// model to every file's unsynced tail.
    pub fn crash_now(&self) {
        let mut st = self.state.lock().unwrap();
        if !st.crashed {
            crash(&mut st);
        }
    }

    /// Total I/O operations performed so far (appends + syncs + truncates).
    pub fn ops(&self) -> u64 {
        self.state.lock().unwrap().ops
    }

    /// The disk as the next process boot sees it: after a crash, only the
    /// durable images; before one (clean shutdown), durable plus buffered.
    /// The reopened directory starts with fresh counters and crashes per
    /// `profile` — pass `CrashProfile::default()` for a reliable restart.
    pub fn reopen(&self, profile: CrashProfile) -> SimDir {
        let st = self.state.lock().unwrap();
        let files = st
            .files
            .iter()
            .map(|(name, f)| {
                let mut durable = f.durable.clone();
                if !st.crashed {
                    durable.extend_from_slice(&f.buffered);
                }
                (
                    name.clone(),
                    SimFileState {
                        durable,
                        buffered: Vec::new(),
                    },
                )
            })
            .collect();
        let rng = profile.seed ^ 0xA076_1D64_78BD_642F;
        SimDir {
            state: Arc::new(Mutex::new(SimState {
                files,
                profile,
                rng,
                ops: 0,
                crashed: false,
            })),
        }
    }

    /// Raw persisted bytes of `name` as a post-crash boot would read them.
    pub fn persisted(&self, name: &str) -> Vec<u8> {
        let st = self.state.lock().unwrap();
        match st.files.get(name) {
            Some(f) if st.crashed => f.durable.clone(),
            Some(f) => {
                let mut all = f.durable.clone();
                all.extend_from_slice(&f.buffered);
                all
            }
            None => Vec::new(),
        }
    }

    /// Overwrite the persisted bytes of `name` — for tests that corrupt
    /// a log by hand.
    pub fn set_persisted(&self, name: &str, bytes: Vec<u8>) {
        let mut st = self.state.lock().unwrap();
        st.files.insert(
            name.to_string(),
            SimFileState {
                durable: bytes,
                buffered: Vec::new(),
            },
        );
    }
}

/// Applies the crash model: for each file a seeded-length prefix of the
/// buffered tail reaches the durable image (torn write), optionally with
/// a zeroed span or a flipped bit *within that unsynced tail*. Durable
/// bytes — everything a completed sync covered — are never modified.
fn crash(st: &mut SimState) {
    st.crashed = true;
    let profile = st.profile.clone();
    let mut rng = st.rng;
    for file in st.files.values_mut() {
        let buffered = std::mem::take(&mut file.buffered);
        if buffered.is_empty() {
            continue;
        }
        let keep = (splitmix64(&mut rng) % (buffered.len() as u64 + 1)) as usize;
        let mut tail = buffered[..keep].to_vec();
        if profile.drop_flush_span && tail.len() > 2 {
            let start = (splitmix64(&mut rng) % tail.len() as u64) as usize;
            let len = 1 + (splitmix64(&mut rng) % (tail.len() - start) as u64) as usize;
            for b in &mut tail[start..start + len] {
                *b = 0;
            }
        }
        if profile.bit_rot && !tail.is_empty() {
            let pos = (splitmix64(&mut rng) % tail.len() as u64) as usize;
            let bit = (splitmix64(&mut rng) % 8) as u8;
            tail[pos] ^= 1 << bit;
        }
        file.durable.extend_from_slice(&tail);
    }
    st.rng = rng;
}

/// Counts one op; crashes if the profile says so. Returns `true` when
/// the op must fail (already crashed, or crashed on this very op).
fn sim_tick(st: &mut SimState) -> bool {
    if st.crashed {
        return true;
    }
    st.ops += 1;
    if let Some(limit) = st.profile.crash_after_ops {
        if st.ops >= limit {
            crash(st);
            return true;
        }
    }
    false
}

fn sim_crashed_err() -> WalError {
    WalError("simulated crash: log unavailable".to_string())
}

struct SimFile {
    dir: SimDir,
    name: String,
}

impl LogFile for SimFile {
    fn append(&self, bytes: &[u8]) -> Result<(), WalError> {
        let mut st = self.dir.state.lock().unwrap();
        if st.crashed {
            return Err(sim_crashed_err());
        }
        // Buffer first, then tick: if the crash lands on this op the
        // just-appended bytes are part of the torn tail.
        st.files
            .entry(self.name.clone())
            .or_default()
            .buffered
            .extend_from_slice(bytes);
        if sim_tick(&mut st) {
            return Err(sim_crashed_err());
        }
        Ok(())
    }

    fn sync(&self) -> Result<(), WalError> {
        let mut st = self.dir.state.lock().unwrap();
        // Tick first: a crash on the sync op means the buffered tail was
        // NOT promoted — the classic crash between append and fsync.
        if sim_tick(&mut st) {
            return Err(sim_crashed_err());
        }
        if let Some(f) = st.files.get_mut(&self.name) {
            let buffered = std::mem::take(&mut f.buffered);
            f.durable.extend_from_slice(&buffered);
        }
        Ok(())
    }
}

impl LogDir for SimDir {
    fn open_append(&self, name: &str) -> Result<Box<dyn LogFile>, WalError> {
        let mut st = self.state.lock().unwrap();
        if st.crashed {
            return Err(sim_crashed_err());
        }
        st.files.entry(name.to_string()).or_default();
        Ok(Box::new(SimFile {
            dir: self.clone(),
            name: name.to_string(),
        }))
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, WalError> {
        let st = self.state.lock().unwrap();
        match st.files.get(name) {
            Some(f) if st.crashed => Ok(f.durable.clone()),
            Some(f) => {
                let mut all = f.durable.clone();
                all.extend_from_slice(&f.buffered);
                Ok(all)
            }
            None => Err(WalError(format!("no such log file {name}"))),
        }
    }

    fn truncate(&self, name: &str, len: u64) -> Result<(), WalError> {
        let mut st = self.state.lock().unwrap();
        if sim_tick(&mut st) {
            return Err(sim_crashed_err());
        }
        let Some(f) = st.files.get_mut(name) else {
            return Err(WalError(format!("no such log file {name}")));
        };
        // Recovery truncates a reopened (buffered-empty) file; fold any
        // buffered tail in before cutting so the view stays consistent.
        let buffered = std::mem::take(&mut f.buffered);
        f.durable.extend_from_slice(&buffered);
        f.durable.truncate(len as usize);
        Ok(())
    }

    fn list(&self) -> Result<Vec<String>, WalError> {
        let st = self.state.lock().unwrap();
        Ok(st.files.keys().cloned().collect())
    }
}

// ---------------------------------------------------------------------------
// Record codec
// ---------------------------------------------------------------------------

/// One logical log record (the payload of one frame).
#[derive(Clone, Debug)]
pub enum WalRecord {
    /// Full document image at `version`; recovery replays splices on top
    /// of the newest one.
    Checkpoint {
        /// Publication version the image corresponds to.
        version: u64,
        /// The full document (exact binary image, call ids preserved).
        doc: Document,
    },
    /// The splices of one publication (the common, compact record).
    Splices {
        /// Version this publication produced.
        version: u64,
        /// Changed root paths the publisher tagged, if any.
        changed_paths: Option<Vec<Vec<String>>>,
        /// `(call id, result forest)` pairs, in splice order.
        ops: Vec<(u64, Forest)>,
    },
    /// Full-image fallback when a publication's delta is unknown (the
    /// document was mutated outside `splice_call` since the last publish).
    Snapshot {
        /// Version this publication produced.
        version: u64,
        /// Changed root paths the publisher tagged, if any.
        changed_paths: Option<Vec<Vec<String>>>,
        /// The full document after the publication.
        doc: Document,
    },
    /// A subscription's delivery watermark advanced — lets recovery
    /// re-anchor the subscription instead of forcing a full re-eval.
    Watermark {
        /// Subscription name.
        subscription: String,
        /// Last document version the subscription has fully processed.
        version: u64,
    },
}

impl WalRecord {
    /// Short name used in `wal_append` trace events and diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            WalRecord::Checkpoint { .. } => "checkpoint",
            WalRecord::Splices { .. } => "splices",
            WalRecord::Snapshot { .. } => "snapshot",
            WalRecord::Watermark { .. } => "watermark",
        }
    }
}

const TAG_CHECKPOINT: u8 = 1;
const TAG_SPLICES: u8 = 2;
const TAG_SNAPSHOT: u8 = 3;
const TAG_WATERMARK: u8 = 4;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

fn put_paths(out: &mut Vec<u8>, paths: &Option<Vec<Vec<String>>>) {
    match paths {
        None => out.push(0),
        Some(list) => {
            out.push(1);
            put_u32(out, list.len() as u32);
            for path in list {
                put_u32(out, path.len() as u32);
                for step in path {
                    put_bytes(out, step.as_bytes());
                }
            }
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Result<u8, WalError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| WalError("record truncated".to_string()))?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, WalError> {
        let end = self.pos + 4;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| WalError("record truncated".to_string()))?;
        self.pos = end;
        Ok(u32::from_le_bytes(bytes.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WalError> {
        let end = self.pos + 8;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| WalError("record truncated".to_string()))?;
        self.pos = end;
        Ok(u64::from_le_bytes(bytes.try_into().unwrap()))
    }

    fn bytes(&mut self) -> Result<&'a [u8], WalError> {
        let len = self.u32()? as usize;
        if len > self.buf.len() - self.pos {
            return Err(WalError("record truncated".to_string()));
        }
        let end = self.pos + len;
        let b = &self.buf[self.pos..end];
        self.pos = end;
        Ok(b)
    }

    fn string(&mut self) -> Result<String, WalError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| WalError("invalid UTF-8 in record".to_string()))
    }

    fn doc(&mut self) -> Result<Document, WalError> {
        let b = self.bytes()?;
        decode_document(b).map_err(|e| WalError(format!("embedded document: {e}")))
    }

    fn paths(&mut self) -> Result<Option<Vec<Vec<String>>>, WalError> {
        match self.u8()? {
            0 => Ok(None),
            1 => {
                let n = self.u32()? as usize;
                let mut list = Vec::new();
                for _ in 0..n {
                    let m = self.u32()? as usize;
                    let mut path = Vec::new();
                    for _ in 0..m {
                        path.push(self.string()?);
                    }
                    list.push(path);
                }
                Ok(Some(list))
            }
            other => Err(WalError(format!("invalid path flag {other}"))),
        }
    }

    fn finish(&self) -> Result<(), WalError> {
        if self.pos != self.buf.len() {
            return Err(WalError(format!(
                "{} trailing bytes after record",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Serializes one record as a frame payload.
pub fn encode_record(record: &WalRecord) -> Vec<u8> {
    let mut out = Vec::new();
    match record {
        WalRecord::Checkpoint { version, doc } => {
            out.push(TAG_CHECKPOINT);
            put_u64(&mut out, *version);
            put_bytes(&mut out, &document_to_bytes(doc));
        }
        WalRecord::Splices {
            version,
            changed_paths,
            ops,
        } => {
            out.push(TAG_SPLICES);
            put_u64(&mut out, *version);
            put_paths(&mut out, changed_paths);
            put_u32(&mut out, ops.len() as u32);
            for (call, result) in ops {
                put_u64(&mut out, *call);
                put_bytes(&mut out, &document_to_bytes(result));
            }
        }
        WalRecord::Snapshot {
            version,
            changed_paths,
            doc,
        } => {
            out.push(TAG_SNAPSHOT);
            put_u64(&mut out, *version);
            put_paths(&mut out, changed_paths);
            put_bytes(&mut out, &document_to_bytes(doc));
        }
        WalRecord::Watermark {
            subscription,
            version,
        } => {
            out.push(TAG_WATERMARK);
            put_bytes(&mut out, subscription.as_bytes());
            put_u64(&mut out, *version);
        }
    }
    out
}

/// Parses one frame payload back into a record.
pub fn decode_record(buf: &[u8]) -> Result<WalRecord, WalError> {
    let mut r = Reader { buf, pos: 0 };
    let record = match r.u8()? {
        TAG_CHECKPOINT => {
            let version = r.u64()?;
            let doc = r.doc()?;
            WalRecord::Checkpoint { version, doc }
        }
        TAG_SPLICES => {
            let version = r.u64()?;
            let changed_paths = r.paths()?;
            let n = r.u32()? as usize;
            let mut ops = Vec::new();
            for _ in 0..n {
                let call = r.u64()?;
                let result = r.doc()?;
                ops.push((call, result));
            }
            WalRecord::Splices {
                version,
                changed_paths,
                ops,
            }
        }
        TAG_SNAPSHOT => {
            let version = r.u64()?;
            let changed_paths = r.paths()?;
            let doc = r.doc()?;
            WalRecord::Snapshot {
                version,
                changed_paths,
                doc,
            }
        }
        TAG_WATERMARK => {
            let subscription = r.string()?;
            let version = r.u64()?;
            WalRecord::Watermark {
                subscription,
                version,
            }
        }
        other => return Err(WalError(format!("unknown record tag {other}"))),
    };
    r.finish()?;
    Ok(record)
}

/// Wraps a payload in a `[len][crc][payload]` frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(payload));
    out.extend_from_slice(payload);
    out
}

/// Result of scanning a log file's frames.
pub struct FrameScan {
    /// Decoded records with the byte offset of their frame, in order.
    pub records: Vec<(u64, WalRecord)>,
    /// Length of the valid prefix — recovery truncates the file here.
    pub valid_len: u64,
    /// Where and why the scan stopped early, if it did.
    pub truncated: Option<(u64, String)>,
}

/// Scans `buf` (a whole log file) frame by frame, stopping at the first
/// invalid frame. An invalid or missing header yields an empty scan
/// truncated at offset 0.
pub fn scan_frames(buf: &[u8]) -> FrameScan {
    if buf.len() < WAL_MAGIC.len() || &buf[..WAL_MAGIC.len()] != WAL_MAGIC {
        let reason = if buf.is_empty() {
            "empty log file".to_string()
        } else {
            "bad or torn log header".to_string()
        };
        return FrameScan {
            records: Vec::new(),
            valid_len: 0,
            truncated: Some((0, reason)),
        };
    }
    let mut records = Vec::new();
    let mut pos = WAL_MAGIC.len();
    let mut truncated = None;
    while pos < buf.len() {
        let offset = pos as u64;
        let remaining = buf.len() - pos;
        if remaining < 8 {
            truncated = Some((
                offset,
                format!("torn frame header ({remaining} of 8 bytes)"),
            ));
            break;
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap());
        let stored_crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_FRAME_LEN {
            truncated = Some((offset, format!("implausible frame length {len}")));
            break;
        }
        let len = len as usize;
        if remaining - 8 < len {
            truncated = Some((
                offset,
                format!("torn frame payload ({} of {len} bytes)", remaining - 8),
            ));
            break;
        }
        let payload = &buf[pos + 8..pos + 8 + len];
        let computed = crc32(payload);
        if computed != stored_crc {
            truncated = Some((
                offset,
                format!("CRC mismatch (stored {stored_crc:08x}, computed {computed:08x})"),
            ));
            break;
        }
        match decode_record(payload) {
            Ok(record) => records.push((offset, record)),
            Err(e) => {
                truncated = Some((offset, format!("undecodable record: {e}")));
                break;
            }
        }
        pos += 8 + len;
    }
    FrameScan {
        records,
        valid_len: pos as u64,
        truncated,
    }
}

// ---------------------------------------------------------------------------
// DurabilityManager
// ---------------------------------------------------------------------------

struct DocLog {
    file: Box<dyn LogFile>,
    records_since_checkpoint: u64,
    appends_since_sync: u32,
    appended_version: u64,
    acked_version: Option<u64>,
    failed: Option<String>,
}

/// Owns the log directory and one open log per durable document. A
/// [`DocTap`] installed on each document's `VersionedDocument` routes
/// every publication here *before* it becomes visible (write-ahead).
pub struct DurabilityManager {
    dir: Box<dyn LogDir>,
    options: DurabilityOptions,
    logs: Mutex<BTreeMap<String, DocLog>>,
    stats: Mutex<DurabilityStats>,
    sink: Mutex<Option<Arc<dyn TraceSink>>>,
    seq: AtomicU64,
}

impl DurabilityManager {
    /// A manager over `dir` with the given policy. Does not scan the
    /// directory — use [`crate::recover::recover_dir`] (via
    /// `DocumentStore::recover`) to adopt existing logs.
    pub fn new(dir: Box<dyn LogDir>, options: DurabilityOptions) -> Arc<DurabilityManager> {
        Arc::new(DurabilityManager {
            dir,
            options,
            logs: Mutex::new(BTreeMap::new()),
            stats: Mutex::new(DurabilityStats::default()),
            sink: Mutex::new(None),
            seq: AtomicU64::new(0),
        })
    }

    /// Configured policy.
    pub fn options(&self) -> &DurabilityOptions {
        &self.options
    }

    /// Stream `wal_*` trace events to `sink`.
    pub fn set_sink(&self, sink: Arc<dyn TraceSink>) {
        *self.sink.lock().unwrap() = Some(sink);
    }

    /// Aggregate append/sync/checkpoint counters.
    pub fn stats(&self) -> DurabilityStats {
        *self.stats.lock().unwrap()
    }

    /// Last publication version of `doc` covered by a completed sync —
    /// the version the crash-matrix oracle asserts recovery never loses.
    pub fn acked_version(&self, doc: &str) -> Option<u64> {
        self.logs
            .lock()
            .unwrap()
            .get(doc)
            .and_then(|l| l.acked_version)
    }

    /// Last publication version appended (synced or not).
    pub fn appended_version(&self, doc: &str) -> Option<u64> {
        self.logs
            .lock()
            .unwrap()
            .get(doc)
            .map(|l| l.appended_version)
    }

    /// The sticky failure of `doc`'s log, if it has one. Once a log
    /// fails (I/O error or simulated crash), further publications for
    /// that document are not logged.
    pub fn failure(&self, doc: &str) -> Option<String> {
        self.logs
            .lock()
            .unwrap()
            .get(doc)
            .and_then(|l| l.failed.clone())
    }

    fn emit(&self, kind: EventKind) {
        let sink = self.sink.lock().unwrap().clone();
        if let Some(sink) = sink {
            sink.emit(&Event {
                seq: self.seq.fetch_add(1, Ordering::Relaxed),
                sim_ms: 0.0,
                round: 0,
                layer: 0,
                cpu_ms: None,
                kind,
            });
        }
    }

    /// Starts a fresh log for a newly inserted document: (re)creates the
    /// file, writes the header and a `Checkpoint` at `version`, and syncs
    /// unconditionally — an insert is only acknowledged durable once its
    /// initial checkpoint is on disk.
    pub fn attach_new_doc(&self, name: &str, doc: &Document, version: u64) -> Result<(), WalError> {
        let file_name = log_file_name(name);
        let result: Result<(Box<dyn LogFile>, usize), WalError> = (|| {
            // An insert over an existing name restarts that document's
            // history; the old log is discarded.
            if self.dir.list()?.contains(&file_name) {
                self.dir.truncate(&file_name, 0)?;
            }
            let file = self.dir.open_append(&file_name)?;
            let payload = encode_record(&WalRecord::Checkpoint {
                version,
                doc: doc.clone(),
            });
            let framed = frame(&payload);
            let mut bytes = WAL_MAGIC.to_vec();
            bytes.extend_from_slice(&framed);
            file.append(&bytes)?;
            file.sync()?;
            Ok((file, framed.len()))
        })();
        match result {
            Ok((file, bytes)) => {
                self.logs.lock().unwrap().insert(
                    name.to_string(),
                    DocLog {
                        file,
                        records_since_checkpoint: 0,
                        appends_since_sync: 0,
                        appended_version: version,
                        acked_version: Some(version),
                        failed: None,
                    },
                );
                self.stats.lock().unwrap().checkpoints += 1;
                self.emit(EventKind::WalCheckpoint {
                    doc: name.to_string(),
                    version,
                    bytes,
                });
                Ok(())
            }
            Err(e) => {
                // Record the sticky failure so later publications skip the
                // log instead of panicking inside the publish lock.
                self.logs.lock().unwrap().insert(
                    name.to_string(),
                    DocLog {
                        file: Box::new(FailedFile),
                        records_since_checkpoint: 0,
                        appends_since_sync: 0,
                        appended_version: version,
                        acked_version: None,
                        failed: Some(e.0.clone()),
                    },
                );
                Err(e)
            }
        }
    }

    /// Adopts a recovered log: the file is already positioned at its
    /// valid prefix and `version` was recovered from it. Everything on
    /// disk is by definition durable, so `acked = version`.
    pub(crate) fn adopt_recovered(
        &self,
        name: &str,
        file: Box<dyn LogFile>,
        version: u64,
        records_since_checkpoint: u64,
    ) {
        self.logs.lock().unwrap().insert(
            name.to_string(),
            DocLog {
                file,
                records_since_checkpoint,
                appends_since_sync: 0,
                appended_version: version,
                acked_version: Some(version),
                failed: None,
            },
        );
    }

    /// Called by [`DocTap`] inside the publish lock: appends the
    /// publication's record (splices when the journal is clean, full
    /// snapshot otherwise), syncs per policy, and writes a checkpoint
    /// when one is due.
    fn record_publication(&self, name: &str, publication: &Publication<'_>) {
        let record = match publication.splices {
            Some(ops) => WalRecord::Splices {
                version: publication.version,
                changed_paths: publication.changed_paths.map(|p| p.to_vec()),
                ops: ops
                    .iter()
                    .map(|op: &SpliceOp| (op.call.0, op.result.clone()))
                    .collect(),
            },
            None => WalRecord::Snapshot {
                version: publication.version,
                changed_paths: publication.changed_paths.map(|p| p.to_vec()),
                doc: publication.doc.clone(),
            },
        };
        let record_name = record.kind_name();
        let mut logs = self.logs.lock().unwrap();
        let Some(log) = logs.get_mut(name) else {
            return;
        };
        if log.failed.is_some() {
            return;
        }
        let framed = frame(&encode_record(&record));
        if let Err(e) = log.file.append(&framed) {
            log.failed = Some(e.0);
            return;
        }
        log.appended_version = publication.version;
        log.appends_since_sync += 1;
        self.stats.lock().unwrap().appends += 1;
        let mut synced = false;
        if self.options.sync_due(log.appends_since_sync) {
            match log.file.sync() {
                Ok(()) => {
                    log.acked_version = Some(log.appended_version);
                    log.appends_since_sync = 0;
                    synced = true;
                    self.stats.lock().unwrap().synced_appends += 1;
                }
                Err(e) => {
                    log.failed = Some(e.0);
                    return;
                }
            }
        }
        self.emit(EventKind::WalAppend {
            doc: name.to_string(),
            version: publication.version,
            record: record_name.to_string(),
            bytes: framed.len(),
            synced,
        });
        log.records_since_checkpoint += 1;
        if self.options.checkpoint_due(log.records_since_checkpoint) {
            let payload = encode_record(&WalRecord::Checkpoint {
                version: publication.version,
                doc: publication.doc.clone(),
            });
            let framed = frame(&payload);
            if let Err(e) = log.file.append(&framed) {
                log.failed = Some(e.0);
                return;
            }
            // A checkpoint rides the same sync cadence as ordinary
            // appends; under `Always` it is immediately durable.
            if self.options.sync_due(log.appends_since_sync + 1) {
                match log.file.sync() {
                    Ok(()) => {
                        log.acked_version = Some(log.appended_version);
                        log.appends_since_sync = 0;
                    }
                    Err(e) => {
                        log.failed = Some(e.0);
                        return;
                    }
                }
            } else {
                log.appends_since_sync += 1;
            }
            log.records_since_checkpoint = 0;
            self.stats.lock().unwrap().checkpoints += 1;
            self.emit(EventKind::WalCheckpoint {
                doc: name.to_string(),
                version: publication.version,
                bytes: framed.len(),
            });
        }
    }

    /// Persists a subscription watermark advance (best effort: failures
    /// stick to the log and stop further writes, never panic).
    pub fn record_watermark(&self, doc: &str, subscription: &str, version: u64) {
        let record = WalRecord::Watermark {
            subscription: subscription.to_string(),
            version,
        };
        let mut logs = self.logs.lock().unwrap();
        let Some(log) = logs.get_mut(doc) else {
            return;
        };
        if log.failed.is_some() {
            return;
        }
        let framed = frame(&encode_record(&record));
        if let Err(e) = log.file.append(&framed) {
            log.failed = Some(e.0);
            return;
        }
        log.appends_since_sync += 1;
        self.stats.lock().unwrap().appends += 1;
        let mut synced = false;
        if self.options.sync_due(log.appends_since_sync) {
            match log.file.sync() {
                Ok(()) => {
                    log.acked_version = Some(log.appended_version);
                    log.appends_since_sync = 0;
                    synced = true;
                    self.stats.lock().unwrap().synced_appends += 1;
                }
                Err(e) => {
                    log.failed = Some(e.0);
                    return;
                }
            }
        }
        self.emit(EventKind::WalAppend {
            doc: doc.to_string(),
            version,
            record: "watermark".to_string(),
            bytes: framed.len(),
            synced,
        });
    }

    /// Emits a `wal_recovery` trace event (recovery itself lives in
    /// `recover.rs`; the manager owns the sink).
    pub(crate) fn emit_recovery(
        &self,
        doc: &str,
        version: u64,
        frames: usize,
        splices_replayed: usize,
        truncated: bool,
    ) {
        self.emit(EventKind::WalRecovery {
            doc: doc.to_string(),
            version,
            frames,
            splices_replayed,
            truncated,
        });
    }

    pub(crate) fn dir(&self) -> &dyn LogDir {
        self.dir.as_ref()
    }
}

/// Placeholder file for a log whose creation failed; every operation
/// re-reports the failure.
struct FailedFile;

impl LogFile for FailedFile {
    fn append(&self, _bytes: &[u8]) -> Result<(), WalError> {
        Err(WalError("log creation previously failed".to_string()))
    }
    fn sync(&self) -> Result<(), WalError> {
        Err(WalError("log creation previously failed".to_string()))
    }
}

/// The [`PublicationTap`] installed on each durable document. Runs
/// inside the publish write lock, so the WAL append strictly precedes
/// reader visibility of the version it records.
pub struct DocTap {
    manager: Arc<DurabilityManager>,
    name: String,
}

impl DocTap {
    /// Tap routing `name`'s publications into `manager`.
    pub fn new(manager: Arc<DurabilityManager>, name: impl Into<String>) -> DocTap {
        DocTap {
            manager,
            name: name.into(),
        }
    }
}

impl PublicationTap for DocTap {
    fn on_publish(&self, publication: &Publication<'_>) {
        self.manager.record_publication(&self.name, publication);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_xml::Document;

    fn tiny_doc() -> Document {
        let mut d = Document::default();
        let root = d.add_root("site");
        d.add_text(root, "hello");
        d
    }

    #[test]
    fn crc32_matches_known_vector() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn file_names_round_trip() {
        for name in ["doc", "a/b", "weird name%", "héllo", "x.wal"] {
            let file = log_file_name(name);
            assert!(file.ends_with(".wal"));
            assert!(!file.trim_end_matches(".wal").contains('/'), "{file}");
            assert_eq!(doc_name_from_file(&file).as_deref(), Some(name));
        }
        assert_eq!(doc_name_from_file("not-a-log"), None);
    }

    #[test]
    fn records_round_trip() {
        let records = vec![
            WalRecord::Checkpoint {
                version: 7,
                doc: tiny_doc(),
            },
            WalRecord::Splices {
                version: 8,
                changed_paths: Some(vec![vec!["site".into(), "item".into()], vec![]]),
                ops: vec![(3, tiny_doc()), (5, Document::default())],
            },
            WalRecord::Snapshot {
                version: 9,
                changed_paths: None,
                doc: tiny_doc(),
            },
            WalRecord::Watermark {
                subscription: "subs/1".into(),
                version: 4,
            },
        ];
        for record in &records {
            let payload = encode_record(record);
            let back = decode_record(&payload).expect("decode");
            assert_eq!(record.kind_name(), back.kind_name());
            let payload2 = encode_record(&back);
            assert_eq!(payload, payload2, "re-encode must be identical");
        }
    }

    #[test]
    fn scan_stops_at_corrupt_frame_and_reports_offset() {
        let mut buf = WAL_MAGIC.to_vec();
        let p1 = encode_record(&WalRecord::Watermark {
            subscription: "s".into(),
            version: 1,
        });
        buf.extend_from_slice(&frame(&p1));
        let second_offset = buf.len() as u64;
        let p2 = encode_record(&WalRecord::Watermark {
            subscription: "t".into(),
            version: 2,
        });
        buf.extend_from_slice(&frame(&p2));
        // Flip a payload bit in the second frame.
        let pos = second_offset as usize + 8;
        buf[pos] ^= 0x40;
        let scan = scan_frames(&buf);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, second_offset);
        let (offset, reason) = scan.truncated.expect("truncated");
        assert_eq!(offset, second_offset);
        assert!(reason.contains("CRC mismatch"), "{reason}");
    }

    #[test]
    fn scan_rejects_bad_header_and_torn_tails() {
        assert!(scan_frames(b"").truncated.is_some());
        assert!(scan_frames(b"AXMLW").truncated.is_some());
        assert!(scan_frames(b"NOTMAGIC").truncated.is_some());
        // Valid header + torn frame header.
        let mut buf = WAL_MAGIC.to_vec();
        buf.extend_from_slice(&[1, 2, 3]);
        let scan = scan_frames(&buf);
        assert_eq!(scan.valid_len, 8);
        assert!(scan.truncated.unwrap().1.contains("torn frame header"));
        // Valid header + frame claiming more payload than exists.
        let mut buf = WAL_MAGIC.to_vec();
        let payload = encode_record(&WalRecord::Watermark {
            subscription: "s".into(),
            version: 1,
        });
        let mut f = frame(&payload);
        f.truncate(f.len() - 2);
        buf.extend_from_slice(&f);
        let scan = scan_frames(&buf);
        assert_eq!(scan.valid_len, 8);
        assert!(scan.truncated.unwrap().1.contains("torn frame payload"));
    }

    #[test]
    fn sim_dir_sync_promotes_and_crash_drops_unsynced_tail() {
        let dir = SimDir::new(CrashProfile::default());
        let file = dir.open_append("d.wal").unwrap();
        file.append(b"synced").unwrap();
        file.sync().unwrap();
        file.append(b"buffered").unwrap();
        // Clean view sees both; crash with seed 0 keeps a seeded prefix
        // of only the unsynced tail.
        assert_eq!(dir.read("d.wal").unwrap(), b"syncedbuffered");
        dir.crash_now();
        let after = dir.read("d.wal").unwrap();
        assert!(after.len() >= b"synced".len());
        assert!(after.starts_with(b"synced"));
        assert!(after.len() <= b"syncedbuffered".len());
        // All further I/O fails.
        assert!(file.append(b"x").is_err());
        assert!(file.sync().is_err());
    }

    #[test]
    fn sim_dir_crash_after_ops_is_deterministic() {
        let run = |seed| {
            let dir = SimDir::new(CrashProfile {
                seed,
                crash_after_ops: Some(5),
                drop_flush_span: true,
                bit_rot: true,
            });
            let file = dir.open_append("d.wal").unwrap();
            for i in 0..10u8 {
                if file.append(&[i; 16]).is_err() {
                    break;
                }
                if file.sync().is_err() {
                    break;
                }
            }
            assert!(dir.crashed());
            dir.reopen(CrashProfile::default()).read("d.wal").unwrap()
        };
        assert_eq!(run(42), run(42));
        // Different seeds generally tear differently; at minimum the
        // reopened image is a prefix-plus-tail of what was appended.
        let image = run(7);
        assert!(image.len() <= 10 * 16);
    }

    #[test]
    fn manager_appends_records_and_checkpoints() {
        let dir = SimDir::new(CrashProfile::default());
        let options = DurabilityOptions {
            checkpoint_every: 2,
            ..DurabilityOptions::default()
        };
        let manager = DurabilityManager::new(Box::new(dir.clone()), options);
        let doc = tiny_doc();
        manager.attach_new_doc("doc", &doc, 0).unwrap();
        assert_eq!(manager.acked_version("doc"), Some(0));

        // Simulate two publications through the tap.
        let tap = DocTap::new(Arc::clone(&manager), "doc");
        for version in 1..=2u64 {
            tap.on_publish(&Publication {
                version,
                doc: &doc,
                changed_paths: None,
                splices: Some(&[]),
            });
        }
        assert_eq!(manager.acked_version("doc"), Some(2));
        let stats = manager.stats();
        assert_eq!(stats.appends, 2);
        assert_eq!(stats.synced_appends, 2);
        // Initial checkpoint + cadence checkpoint after record 2.
        assert_eq!(stats.checkpoints, 2);

        let scan = scan_frames(&dir.read(&log_file_name("doc")).unwrap());
        assert!(scan.truncated.is_none());
        let kinds: Vec<&str> = scan.records.iter().map(|(_, r)| r.kind_name()).collect();
        assert_eq!(
            kinds,
            vec!["checkpoint", "splices", "splices", "checkpoint"]
        );
    }
}
