//! Sessions: a stream of queries against one stored document, with the
//! call-result cache and the simulated clock persisting across queries.
//!
//! A session never borrows its document exclusively: it holds a handle
//! to the document's version chain ([`VersionedDocument`]), snapshots the
//! currently published version for each query, and evaluates against a
//! private copy-on-write working copy. That is what lets N sessions run
//! concurrently over one store with snapshot isolation — see
//! [`crate::sched`] for the scheduler that drives them.

use crate::cache::{CacheStats, CallCache};
use crate::plan_cache::PlanCache;
use axml_core::{Engine, EngineConfig, EngineStats, EvalReport, TraceEvent};
use axml_obs::TraceSink;
use axml_query::{construct_results, render_result, Pattern};
use axml_schema::Schema;
use axml_services::Registry;
use axml_xml::{to_xml, DocSnapshot, Document, VersionedDocument};
use std::collections::BTreeSet;
use std::sync::Arc;

/// How a [`Session`] evaluates its queries.
#[derive(Clone, Debug)]
pub struct SessionOptions {
    /// Engine configuration used for every query in the session.
    pub engine: EngineConfig,
    /// When `true` (the default) each query runs on a *snapshot* of the
    /// stored document, so materialized call results do not persist in
    /// the document itself — cross-query reuse flows through the cache
    /// alone, which is the quantity the store is built to measure. When
    /// `false`, queries materialize into the stored document: the working
    /// copy with its spliced results is *published* as the document's next
    /// version, and later queries (of this or any other session) see it.
    pub snapshot_per_query: bool,
    /// When `true` (the default) sessions opened through a
    /// [`crate::DocumentStore`] fetch their [`axml_core::CompiledQuery`]
    /// from the store's shared [`PlanCache`] instead of letting the
    /// engine compile transiently. Purely a performance knob: answers,
    /// traces and stats are byte-identical either way.
    pub plan_cache: bool,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            engine: EngineConfig::default(),
            snapshot_per_query: true,
            plan_cache: true,
        }
    }
}

impl SessionOptions {
    /// Options with the given engine configuration (snapshot mode).
    pub fn with_engine(engine: EngineConfig) -> Self {
        SessionOptions {
            engine,
            ..SessionOptions::default()
        }
    }
}

/// What one session query produced.
#[derive(Clone, Debug)]
pub struct SessionReport {
    /// Engine measurements for this query alone (`sim_time_ms` is the
    /// time this query added to the session clock).
    pub stats: EngineStats,
    /// Whether the answer is the full answer (see [`EvalReport`]).
    pub complete: bool,
    /// The rendered answer tuples, deduplicated and ordered.
    pub answers: BTreeSet<Vec<String>>,
    /// The constructed `<results>` document, serialized.
    pub result_xml: String,
    /// Execution trace (empty unless the engine config enables tracing).
    pub trace: Vec<TraceEvent>,
    /// Cumulative cache counters *after* this query.
    pub cache: CacheStats,
    /// The session's simulated clock *after* this query, in ms.
    pub clock_ms: f64,
    /// The document version this query evaluated against.
    pub doc_version: u64,
}

/// A stream of queries against one document.
///
/// Each query runs through a fresh [`Engine`] wired to the session's
/// shared [`CallCache`] and started at the session's simulated clock, so
/// TTL validity windows measure real (simulated) elapsed time across the
/// whole query sequence: query 3 at clock 950 ms still hits entries
/// cached by query 1 at clock 0 ms if their windows are ≥ 950 ms wide.
///
/// A `deadline_ms` in [`SessionOptions::engine`] is a *per-query* budget,
/// anchored at each query's own start clock — a session at clock 950 ms
/// with a 100 ms deadline gives the next query until 1050 ms. Because
/// cache hits cost zero simulated time, re-asking a deadline-truncated
/// query makes monotone progress through the shared cache (see the
/// `per_query_deadlines_converge_through_the_session_cache` test).
///
/// Every query reads a frozen snapshot of the document's current version
/// (snapshot isolation: concurrent publications never tear a read). In
/// persistent mode the materialized working copy is published as the next
/// version when the query finishes, via compare-and-swap against the
/// version it read: a conflicting concurrent publication triggers a
/// re-snapshot and re-evaluation, so concurrent persistent sessions on
/// one document never discard each other's splices (see
/// [`Session::query`]).
pub struct Session<'a> {
    doc: Arc<VersionedDocument>,
    registry: &'a Registry,
    schema: Option<&'a Schema>,
    cache: Arc<CallCache>,
    plans: Option<Arc<PlanCache>>,
    options: SessionOptions,
    observer: Option<&'a dyn TraceSink>,
    clock_ms: f64,
    queries_run: usize,
}

impl<'a> Session<'a> {
    /// A session over `doc` using the given cache; the clock starts at 0.
    pub fn new(
        doc: Arc<VersionedDocument>,
        registry: &'a Registry,
        schema: Option<&'a Schema>,
        cache: Arc<CallCache>,
        options: SessionOptions,
    ) -> Self {
        Session {
            doc,
            registry,
            schema,
            cache,
            plans: None,
            options,
            observer: None,
            clock_ms: 0.0,
            queries_run: 0,
        }
    }

    /// Attaches the shared compiled-plan cache: each query fetches its
    /// [`axml_core::CompiledQuery`] from it (compiling on first use) and
    /// hands the plan to the engine, which consults it only when its
    /// compatibility key matches — so a session on unusual config falls
    /// back to transient compilation, never a misapplied plan.
    pub fn with_plans(mut self, plans: Arc<PlanCache>) -> Self {
        self.plans = Some(plans);
        self
    }

    /// Attaches a structured-trace observer shared by every query in the
    /// session: each query's engine emits into it, producing one stream
    /// of consecutive query spans on the session's (monotone) simulated
    /// clock.
    pub fn with_observer(mut self, observer: &'a dyn TraceSink) -> Self {
        self.observer = Some(observer);
        self
    }

    /// The session's simulated clock, in milliseconds.
    pub fn clock_ms(&self) -> f64 {
        self.clock_ms
    }

    /// Queries evaluated so far.
    pub fn queries_run(&self) -> usize {
        self.queries_run
    }

    /// A snapshot of the currently published version of the document this
    /// session evaluates against.
    pub fn doc(&self) -> DocSnapshot {
        self.doc.snapshot()
    }

    /// The document's version chain (shared with the store and with any
    /// concurrent sessions over the same document).
    pub fn versioned(&self) -> &Arc<VersionedDocument> {
        &self.doc
    }

    /// The shared call cache.
    pub fn cache(&self) -> &Arc<CallCache> {
        &self.cache
    }

    /// Advances the simulated clock by `ms` without running a query —
    /// models idle time between queries, during which cached entries age
    /// toward their validity horizons.
    pub fn advance_clock(&mut self, ms: f64) {
        assert!(ms >= 0.0, "the simulated clock cannot run backwards");
        self.clock_ms += ms;
    }

    /// Evaluates one query at the session's current clock and advances
    /// the clock by the simulated time the evaluation consumed.
    ///
    /// In persistent mode the materialized working copy is published
    /// with a compare-and-swap against the version the query read: if a
    /// concurrent session published first, this session re-snapshots the
    /// winner and re-evaluates on top of it, so no publication is ever
    /// silently discarded (no lost updates). Retries are cheap — the
    /// losing attempt warmed the shared cache, so the re-evaluation's
    /// calls are mostly zero-cost hits — and under a scheduler run they
    /// are finite: every conflict means some other query published, and
    /// a run publishes at most once per query. The clock advances for
    /// every attempt (the work was performed); the report describes the
    /// attempt that won.
    pub fn query(&mut self, query: &Pattern) -> SessionReport {
        // one fetch per query() call: the plan key is fixed across CAS
        // retries, so conflict re-evaluations reuse the same plan
        let plan = self
            .plans
            .as_ref()
            .filter(|_| self.options.engine.use_plans)
            .map(|pc| pc.fetch(query, self.schema, &self.options.engine));
        loop {
            let mut engine = Engine::new(self.registry, self.options.engine.clone())
                .with_cache(self.cache.as_ref())
                .starting_at(self.clock_ms);
            if let Some(plan) = &plan {
                engine = engine.with_plan(Arc::clone(plan));
            }
            if let Some(schema) = self.schema {
                engine = engine.with_schema(schema);
            }
            if let Some(observer) = self.observer {
                engine = engine.with_observer(observer);
            }
            let snapshot = self.doc.snapshot();
            let doc_version = snapshot.version();
            let mut working = snapshot.to_document();
            let report = engine.evaluate(&mut working, query);
            self.clock_ms += report.stats.sim_time_ms;
            if !self.options.snapshot_per_query {
                // materialize: publish the spliced working copy as the
                // next version so later queries find no calls left to
                // invoke — but only if nobody published since our
                // snapshot (the clone is O(pages): COW page pointers).
                if self.doc.publish_if(doc_version, working.clone()).is_err() {
                    continue;
                }
            }
            self.queries_run += 1;
            return self.package(query, &working, report, doc_version);
        }
    }

    fn package(
        &self,
        query: &Pattern,
        doc: &Document,
        report: EvalReport,
        doc_version: u64,
    ) -> SessionReport {
        let answers: BTreeSet<Vec<String>> =
            render_result(doc, &report.result).into_iter().collect();
        let result_xml = to_xml(&construct_results(doc, query, &report.result));
        SessionReport {
            stats: report.stats,
            complete: report.complete,
            answers,
            result_xml,
            trace: report.trace,
            cache: self.cache.stats(),
            clock_ms: self.clock_ms,
            doc_version,
        }
    }
}
