//! The long-lived document store: named AXML documents that survive
//! across queries, sharing one [`CallCache`] so work done answering one
//! query pays for the next.
//!
//! Documents are held as [`VersionedDocument`]s — atomically published
//! copy-on-write versions — so any number of sessions can read (and,
//! in persistent mode, publish) concurrently with snapshot isolation:
//! a reader sees exactly the version that was current when it took its
//! snapshot, never a partially applied splice.

use crate::cache::{CacheConfig, CallCache};
use crate::checkpoint::DurabilityOptions;
use crate::plan_cache::{PlanCache, PlanCacheConfig};
use crate::recover::{recover_dir, RecoveryReport};
use crate::session::{Session, SessionOptions};
use crate::wal::{DocTap, DurabilityManager, LogDir, WalError};
use axml_schema::Schema;
use axml_services::Registry;
use axml_xml::{DocSnapshot, Document, VersionedDocument};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A collection of named AXML documents plus the call-result cache they
/// share. Documents are owned by the store and survive across queries —
/// the peer/repository side of the paper's setting, where the same
/// document answers a stream of queries over time.
#[derive(Default)]
pub struct DocumentStore {
    docs: BTreeMap<String, Arc<VersionedDocument>>,
    cache: Arc<CallCache>,
    plans: Arc<PlanCache>,
    wal: Option<Arc<DurabilityManager>>,
    recovered_watermarks: BTreeMap<String, BTreeMap<String, u64>>,
}

impl DocumentStore {
    /// An empty store with the default cache configuration.
    pub fn new() -> Self {
        DocumentStore::default()
    }

    /// An empty store whose shared cache uses `config`.
    pub fn with_cache_config(config: CacheConfig) -> Self {
        DocumentStore {
            cache: Arc::new(CallCache::new(config)),
            ..DocumentStore::default()
        }
    }

    /// An empty store whose shared compiled-plan cache uses `config`.
    pub fn with_plan_config(config: PlanCacheConfig) -> Self {
        DocumentStore {
            plans: Arc::new(PlanCache::new(config)),
            ..DocumentStore::default()
        }
    }

    /// An empty store with explicit call-cache and plan-cache configs.
    pub fn with_configs(cache: CacheConfig, plans: PlanCacheConfig) -> Self {
        DocumentStore {
            cache: Arc::new(CallCache::new(cache)),
            plans: Arc::new(PlanCache::new(plans)),
            ..DocumentStore::default()
        }
    }

    /// A durable store: every document inserted from now on keeps a
    /// write-ahead log of its publications in `dir` (initial checkpoint,
    /// then one record per publish, periodic checkpoints per `options`).
    pub fn durable(dir: Box<dyn LogDir>, options: DurabilityOptions) -> Self {
        Self::durable_with_configs(
            dir,
            options,
            CacheConfig::default(),
            PlanCacheConfig::default(),
        )
    }

    /// [`DocumentStore::durable`] with explicit cache configurations.
    pub fn durable_with_configs(
        dir: Box<dyn LogDir>,
        options: DurabilityOptions,
        cache: CacheConfig,
        plans: PlanCacheConfig,
    ) -> Self {
        DocumentStore {
            wal: Some(DurabilityManager::new(dir, options)),
            ..Self::with_configs(cache, plans)
        }
    }

    /// Recovers a durable store from the write-ahead logs in `dir`:
    /// scans each log's CRC-valid prefix, truncates any torn tail,
    /// replays splices atop the newest intact checkpoint, and re-publishes
    /// each document at its recovered version. The returned report lists
    /// per-document outcomes (including unrecoverable logs, which are
    /// skipped, and persisted subscription watermarks for re-anchoring).
    ///
    /// The recovered store is itself durable: new publications continue
    /// appending to the (truncated) logs under the same policy.
    pub fn recover(
        dir: Box<dyn LogDir>,
        options: DurabilityOptions,
    ) -> Result<(Self, RecoveryReport), WalError> {
        Self::recover_with_configs(
            dir,
            options,
            CacheConfig::default(),
            PlanCacheConfig::default(),
        )
    }

    /// [`DocumentStore::recover`] with explicit cache configurations.
    pub fn recover_with_configs(
        dir: Box<dyn LogDir>,
        options: DurabilityOptions,
        cache: CacheConfig,
        plans: PlanCacheConfig,
    ) -> Result<(Self, RecoveryReport), WalError> {
        let recovered = recover_dir(dir.as_ref())?;
        let manager = DurabilityManager::new(dir, options);
        let mut store = DocumentStore {
            wal: Some(Arc::clone(&manager)),
            ..Self::with_configs(cache, plans)
        };
        let mut report = RecoveryReport::default();
        for rec in recovered {
            if let Some(mut doc) = rec.doc {
                doc.enable_splice_journal();
                let file = manager.dir().open_append(&rec.file)?;
                manager.adopt_recovered(&rec.name, file, rec.version, rec.records_since_checkpoint);
                manager.emit_recovery(
                    &rec.name,
                    rec.version,
                    rec.report.frames,
                    rec.report.splices_replayed,
                    rec.report.truncated_at.is_some(),
                );
                let versioned = Arc::new(VersionedDocument::new_at(doc, rec.version));
                versioned.set_tap(Arc::new(DocTap::new(Arc::clone(&manager), &rec.name)));
                store.docs.insert(rec.name.clone(), versioned);
                store
                    .recovered_watermarks
                    .insert(rec.name.clone(), rec.report.watermarks.clone());
            }
            report.docs.push(rec.report);
        }
        Ok((store, report))
    }

    /// The durability manager, when this store was opened durable.
    pub fn durability(&self) -> Option<&Arc<DurabilityManager>> {
        self.wal.as_ref()
    }

    /// A subscription watermark persisted in `doc`'s log before the last
    /// crash, if the store was just recovered. Subscriptions re-anchor
    /// here: when the watermark is older than the recovered log can
    /// serve, catch-up soundly degrades to a full re-evaluation.
    pub fn recovered_watermark(&self, doc: &str, subscription: &str) -> Option<u64> {
        self.recovered_watermarks
            .get(doc)?
            .get(subscription)
            .copied()
    }

    /// Adds (or replaces) a document under `name` (as version 0 of a
    /// fresh version chain). Returns the previously published document
    /// stored under that name, if any.
    ///
    /// On a durable store this also starts the document's write-ahead
    /// log (header + initial checkpoint, synced before this returns) and
    /// enables its splice journal so publications log compact splice
    /// records. A log that cannot be created is recorded as a sticky
    /// failure on [`DurabilityManager::failure`] rather than panicking —
    /// the document still works, it just is not durable.
    pub fn insert(&mut self, name: impl Into<String>, doc: Document) -> Option<Document> {
        let name = name.into();
        let mut doc = doc;
        let versioned = if let Some(wal) = &self.wal {
            doc.enable_splice_journal();
            let _ = wal.attach_new_doc(&name, &doc, 0);
            let versioned = Arc::new(VersionedDocument::new(doc));
            versioned.set_tap(Arc::new(DocTap::new(Arc::clone(wal), &name)));
            versioned
        } else {
            Arc::new(VersionedDocument::new(doc))
        };
        self.docs
            .insert(name, versioned)
            .map(|v| v.snapshot().to_document())
    }

    /// Removes the document stored under `name`, returning its currently
    /// published version.
    pub fn remove(&mut self, name: &str) -> Option<Document> {
        self.docs.remove(name).map(|v| v.snapshot().to_document())
    }

    /// A frozen snapshot of the currently published version of the
    /// document stored under `name`.
    pub fn get(&self, name: &str) -> Option<DocSnapshot> {
        self.docs.get(name).map(|v| v.snapshot())
    }

    /// The version chain stored under `name` — the handle concurrent
    /// sessions share. Snapshot it to read; publish to it to write.
    pub fn versioned(&self, name: &str) -> Option<&Arc<VersionedDocument>> {
        self.docs.get(name)
    }

    /// The names of all stored documents, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.docs.keys().map(|s| s.as_str()).collect()
    }

    /// Number of stored documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the store holds no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The shared call-result cache.
    pub fn cache(&self) -> &Arc<CallCache> {
        &self.cache
    }

    /// The shared compiled-plan cache. Sessions opened with
    /// [`SessionOptions::plan_cache`] (the default) fetch their compiled
    /// query plans from it.
    pub fn plans(&self) -> &Arc<PlanCache> {
        &self.plans
    }

    /// Enables publication-history retention on the document stored under
    /// `name` (see [`VersionedDocument::enable_history`]) so subscribers
    /// can catch up on missed splices from their own watermarks. Returns
    /// `false` when no document is stored under that name.
    pub fn watch(&self, name: &str, history_capacity: usize) -> bool {
        match self.docs.get(name) {
            Some(v) => {
                v.enable_history(history_capacity);
                true
            }
            None => false,
        }
    }

    /// The next simulated instant at which some cached call result lapses
    /// — the subscription refresh driver's scheduling hook: before that
    /// time every re-invocation is a zero-cost hit, so a refresh pass can
    /// sleep until it. `None` when nothing ever expires.
    pub fn next_refresh_ms(&self) -> Option<f64> {
        self.cache.earliest_expiry()
    }

    /// Opens a [`Session`] over the document stored under `name`: a
    /// stream of queries evaluated against the document with the store's
    /// shared cache and a simulated clock that persists between queries.
    /// Returns `None` if no document is stored under `name`.
    ///
    /// Takes `&self`: sessions do not borrow the document exclusively, so
    /// any number can be open (and running, on different threads) at once.
    pub fn session<'a>(
        &self,
        name: &str,
        registry: &'a Registry,
        schema: Option<&'a Schema>,
        options: SessionOptions,
    ) -> Option<Session<'a>> {
        let cache = Arc::clone(&self.cache);
        let doc = Arc::clone(self.docs.get(name)?);
        let use_plans = options.plan_cache;
        let session = Session::new(doc, registry, schema, cache, options);
        Some(if use_plans {
            session.with_plans(Arc::clone(&self.plans))
        } else {
            session
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_names_remove() {
        let mut store = DocumentStore::new();
        assert!(store.is_empty());
        store.insert("a", Document::with_root("a"));
        store.insert("b", Document::with_root("b"));
        assert_eq!(store.names(), ["a", "b"]);
        assert_eq!(store.len(), 2);
        assert_eq!(
            store
                .get("a")
                .unwrap()
                .label(store.get("a").unwrap().root()),
            "a"
        );
        assert!(store.versioned("b").is_some());
        let old = store.insert("a", Document::with_root("a2"));
        assert!(old.is_some());
        assert!(store.remove("b").is_some());
        assert_eq!(store.names(), ["a"]);
        assert!(store.get("missing").is_none());
    }

    #[test]
    fn published_versions_are_visible_through_get() {
        let mut store = DocumentStore::new();
        store.insert("a", Document::with_root("a"));
        let v = Arc::clone(store.versioned("a").unwrap());
        let before = store.get("a").unwrap();
        let mut work = before.to_document();
        work.add_element(work.root(), "child");
        v.publish(work);
        assert!(before.children(before.root()).is_empty());
        let after = store.get("a").unwrap();
        assert_eq!(after.children(after.root()).len(), 1);
        assert_eq!(after.version(), before.version() + 1);
    }
}
