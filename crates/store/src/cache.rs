//! The memoized call-result cache — `(service, params)` → result forest,
//! with per-service TTL validity windows charged to the simulated clock,
//! LRU eviction under byte/entry budgets, and invalidation hooks.
//!
//! Soundness: a hit is only ever served *within its validity window*. A
//! service is assumed to answer a given parameter forest identically for
//! `ttl` simulated milliseconds after an observed answer; the window is a
//! per-service policy knob (`f64::INFINITY` models the paper's
//! deterministic services, `0` disables caching for a service). Pushed
//! queries participate in the cache key — a provider-side pruned result
//! is correct only for the query it was pruned for, so it is never served
//! to a different one.

use axml_query::render;
use axml_services::{CacheLookup, CachedCall, InvokeCache, InvokeOutcome, PushedQuery};
use axml_xml::{forest_serialized_len, to_xml, Forest};
use std::collections::HashMap;
use std::sync::Mutex;

/// Configuration of a [`CallCache`].
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Validity window for services without a specific TTL, in simulated
    /// milliseconds. `f64::INFINITY` (the default) never expires —
    /// appropriate for deterministic services; `0.0` disables caching.
    pub default_ttl_ms: f64,
    /// Per-service TTL overrides.
    pub ttl_overrides: HashMap<String, f64>,
    /// Maximum number of cached entries before LRU eviction (default 4096).
    pub max_entries: usize,
    /// Maximum total serialized result bytes before LRU eviction
    /// (default 16 MiB).
    pub max_bytes: usize,
    /// When `true`, a circuit breaker tripping open purges the service's
    /// entries (freshness over availability). The default `false` keeps
    /// serving cached successes within their validity windows while the
    /// service is failing — stale-while-error availability.
    pub invalidate_on_breaker_open: bool,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            default_ttl_ms: f64::INFINITY,
            ttl_overrides: HashMap::new(),
            max_entries: 4096,
            max_bytes: 16 * 1024 * 1024,
            invalidate_on_breaker_open: false,
        }
    }
}

impl CacheConfig {
    /// A config whose default validity window is `ttl_ms`.
    pub fn with_ttl_ms(ttl_ms: f64) -> Self {
        CacheConfig {
            default_ttl_ms: ttl_ms,
            ..CacheConfig::default()
        }
    }

    /// Sets a per-service TTL override (builder style).
    pub fn ttl_for(mut self, service: impl Into<String>, ttl_ms: f64) -> Self {
        self.ttl_overrides.insert(service.into(), ttl_ms);
        self
    }

    fn ttl(&self, service: &str) -> f64 {
        self.ttl_overrides
            .get(service)
            .copied()
            .unwrap_or(self.default_ttl_ms)
    }
}

/// Cumulative cache counters (monotone across a store's lifetime).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes answered by a valid entry.
    pub hits: u64,
    /// Probes that found nothing.
    pub misses: u64,
    /// Probes that found an expired entry (removed on sight).
    pub stale: u64,
    /// Entries stored (including replacements).
    pub insertions: u64,
    /// Entries evicted by the LRU budget.
    pub evictions: u64,
    /// Entries removed by explicit or breaker-driven invalidation.
    pub invalidations: u64,
}

impl CacheStats {
    /// hits / (hits + misses + stale), or 0.0 with no probes.
    pub fn hit_rate(&self) -> f64 {
        let probes = self.hits + self.misses + self.stale;
        if probes == 0 {
            0.0
        } else {
            self.hits as f64 / probes as f64
        }
    }
}

/// Cache key: service name, serialized parameter forest, and (for pushed
/// calls) the rendered pushed pattern plus its edge kind — a pruned
/// result is only valid for the exact query it was pruned for.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Key {
    service: String,
    params_xml: String,
    pushed: Option<(String, bool)>,
}

impl Key {
    fn new(service: &str, params: &Forest, pushed: Option<&PushedQuery>) -> Self {
        Key {
            service: service.to_string(),
            params_xml: to_xml(params),
            pushed: pushed.map(|pq| (render(&pq.pattern), pq.via == axml_query::EdgeKind::Child)),
        }
    }
}

struct Entry {
    result: Forest,
    bytes: usize,
    size_bytes: usize,
    pushed: bool,
    inserted_at_ms: f64,
    expires_at_ms: f64,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<Key, Entry>,
    total_bytes: usize,
    tick: u64,
    stats: CacheStats,
}

impl Inner {
    fn remove(&mut self, key: &Key) -> Option<Entry> {
        let e = self.map.remove(key)?;
        self.total_bytes -= e.size_bytes;
        Some(e)
    }

    /// Evicts least-recently-used entries until the budgets hold.
    /// Deterministic: `last_used` ticks are unique, so the victim order
    /// does not depend on hash-map iteration order.
    fn evict_to_budget(&mut self, max_entries: usize, max_bytes: usize) {
        while self.map.len() > max_entries || self.total_bytes > max_bytes {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            let Some(k) = victim else { break };
            self.remove(&k);
            self.stats.evictions += 1;
        }
    }
}

/// A shared, internally synchronized call-result cache implementing the
/// engine-facing [`InvokeCache`] contract.
///
/// All timestamps are **simulated** milliseconds — the engine passes its
/// [`axml_services::SimClock`] time — so validity windows are charged to
/// the same clock as network latency and breaker cooldowns, and every
/// replay with the same seed observes identical hits and evictions.
pub struct CallCache {
    config: CacheConfig,
    inner: Mutex<Inner>,
}

impl Default for CallCache {
    fn default() -> Self {
        CallCache::new(CacheConfig::default())
    }
}

impl CallCache {
    /// An empty cache with the given configuration.
    pub fn new(config: CacheConfig) -> Self {
        CallCache {
            config,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The configuration this cache enforces.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// A snapshot of the cumulative counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().unwrap().stats
    }

    /// Live entries currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total serialized result bytes currently held.
    pub fn total_bytes(&self) -> usize {
        self.inner.lock().unwrap().total_bytes
    }

    /// Drops every entry belonging to `service` (explicit invalidation
    /// hook). Returns the number of entries removed.
    pub fn invalidate_service(&self, service: &str) -> usize {
        let mut inner = self.inner.lock().unwrap();
        let doomed: Vec<Key> = inner
            .map
            .keys()
            .filter(|k| k.service == service)
            .cloned()
            .collect();
        let n = doomed.len();
        for k in &doomed {
            inner.remove(k);
        }
        inner.stats.invalidations += n as u64;
        n
    }

    /// Drops every entry. Returns the number of entries removed.
    pub fn invalidate_all(&self) -> usize {
        let mut inner = self.inner.lock().unwrap();
        let n = inner.map.len();
        inner.map.clear();
        inner.total_bytes = 0;
        inner.stats.invalidations += n as u64;
        n
    }

    /// Eagerly drops entries whose validity window has passed at
    /// simulated time `now_ms` (expiry is otherwise lazy, on lookup).
    /// Returns the number of entries removed.
    pub fn purge_expired(&self, now_ms: f64) -> usize {
        let mut inner = self.inner.lock().unwrap();
        let doomed: Vec<Key> = inner
            .map
            .iter()
            .filter(|(_, e)| e.expires_at_ms <= now_ms)
            .map(|(k, _)| k.clone())
            .collect();
        let n = doomed.len();
        for k in &doomed {
            inner.remove(k);
        }
        inner.stats.invalidations += n as u64;
        n
    }
}

impl InvokeCache for CallCache {
    fn lookup(
        &self,
        service: &str,
        params: &Forest,
        pushed: Option<&PushedQuery>,
        now_ms: f64,
    ) -> CacheLookup {
        let key = Key::new(service, params, pushed);
        let mut inner = self.inner.lock().unwrap();
        let Some(entry) = inner.map.get(&key) else {
            inner.stats.misses += 1;
            return CacheLookup::Miss;
        };
        if entry.expires_at_ms <= now_ms {
            inner.remove(&key);
            inner.stats.stale += 1;
            return CacheLookup::Stale;
        }
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.map.get_mut(&key).expect("entry just probed");
        entry.last_used = tick;
        let hit = CachedCall {
            result: entry.result.clone(),
            bytes: entry.bytes,
            pushed: entry.pushed,
            age_ms: now_ms - entry.inserted_at_ms,
        };
        inner.stats.hits += 1;
        CacheLookup::Hit(hit)
    }

    fn store(
        &self,
        service: &str,
        params: &Forest,
        pushed: Option<&PushedQuery>,
        outcome: &InvokeOutcome,
        now_ms: f64,
    ) {
        let ttl = self.config.ttl(service);
        if ttl <= 0.0 {
            return; // caching disabled for this service
        }
        let size_bytes = forest_serialized_len(&outcome.result);
        if size_bytes > self.config.max_bytes {
            return; // a single over-budget result would evict everything
        }
        let key = Key::new(service, params, pushed);
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let entry = Entry {
            result: outcome.result.clone(),
            bytes: outcome.bytes,
            size_bytes,
            pushed: outcome.pushed,
            inserted_at_ms: now_ms,
            expires_at_ms: now_ms + ttl,
            last_used: inner.tick,
        };
        if let Some(old) = inner.remove(&key) {
            // replacement: the old window is superseded by the fresh answer
            let _ = old;
        }
        inner.total_bytes += entry.size_bytes;
        inner.map.insert(key, entry);
        inner.stats.insertions += 1;
        inner.evict_to_budget(self.config.max_entries, self.config.max_bytes);
    }

    fn on_breaker_transition(&self, service: &str, open: bool) {
        if open && self.config.invalidate_on_breaker_open {
            self.invalidate_service(service);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_xml::parse;

    fn outcome(xml: &str) -> InvokeOutcome {
        let result = parse(xml).unwrap();
        let bytes = forest_serialized_len(&result);
        InvokeOutcome {
            result,
            bytes,
            cost_ms: 10.0,
            pushed: false,
            attempts: 1,
        }
    }

    fn params(text: &str) -> Forest {
        let mut f = Forest::new();
        f.add_root_text(text);
        f
    }

    #[test]
    fn hit_within_window_stale_after() {
        let cache = CallCache::new(CacheConfig::with_ttl_ms(100.0));
        cache.store("s", &params("k"), None, &outcome("<a/>"), 0.0);
        assert!(matches!(
            cache.lookup("s", &params("k"), None, 50.0),
            CacheLookup::Hit(_)
        ));
        // at exactly the boundary the entry is expired
        assert!(matches!(
            cache.lookup("s", &params("k"), None, 100.0),
            CacheLookup::Stale
        ));
        // the expired entry was removed on sight: next probe is a miss
        assert!(matches!(
            cache.lookup("s", &params("k"), None, 100.0),
            CacheLookup::Miss
        ));
        let s = cache.stats();
        assert_eq!((s.hits, s.stale, s.misses), (1, 1, 1));
    }

    #[test]
    fn keys_distinguish_service_params_and_push() {
        let cache = CallCache::default();
        cache.store("s", &params("a"), None, &outcome("<a/>"), 0.0);
        assert!(matches!(
            cache.lookup("s", &params("b"), None, 0.0),
            CacheLookup::Miss
        ));
        assert!(matches!(
            cache.lookup("t", &params("a"), None, 0.0),
            CacheLookup::Miss
        ));
        let pq = PushedQuery {
            pattern: axml_query::parse_query("/a").unwrap(),
            via: axml_query::EdgeKind::Child,
        };
        // a plain entry must not answer a pushed probe, nor vice versa
        assert!(matches!(
            cache.lookup("s", &params("a"), Some(&pq), 0.0),
            CacheLookup::Miss
        ));
        cache.store("s", &params("a"), Some(&pq), &outcome("<b/>"), 0.0);
        let CacheLookup::Hit(h) = cache.lookup("s", &params("a"), Some(&pq), 0.0) else {
            panic!("pushed entry should hit");
        };
        assert_eq!(axml_xml::to_xml(&h.result), "<b/>");
    }

    #[test]
    fn lru_eviction_under_entry_budget() {
        let cache = CallCache::new(CacheConfig {
            max_entries: 2,
            ..CacheConfig::default()
        });
        cache.store("s", &params("1"), None, &outcome("<a/>"), 0.0);
        cache.store("s", &params("2"), None, &outcome("<b/>"), 0.0);
        // touch 1 so 2 becomes the LRU victim
        assert!(matches!(
            cache.lookup("s", &params("1"), None, 1.0),
            CacheLookup::Hit(_)
        ));
        cache.store("s", &params("3"), None, &outcome("<c/>"), 2.0);
        assert_eq!(cache.len(), 2);
        assert!(matches!(
            cache.lookup("s", &params("2"), None, 3.0),
            CacheLookup::Miss
        ));
        assert!(matches!(
            cache.lookup("s", &params("1"), None, 3.0),
            CacheLookup::Hit(_)
        ));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn byte_budget_and_oversized_results() {
        let small = outcome("<a/>");
        let unit = forest_serialized_len(&small.result);
        let cache = CallCache::new(CacheConfig {
            max_bytes: 2 * unit,
            ..CacheConfig::default()
        });
        cache.store("s", &params("1"), None, &small, 0.0);
        cache.store("s", &params("2"), None, &small, 0.0);
        assert_eq!(cache.len(), 2);
        cache.store("s", &params("3"), None, &small, 0.0);
        assert_eq!(cache.len(), 2, "byte budget evicts the LRU entry");
        assert!(cache.total_bytes() <= 2 * unit);
        // a result bigger than the whole budget is not stored at all
        let big = outcome("<a><b>xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx</b></a>");
        cache.store("s", &params("4"), None, &big, 0.0);
        assert!(matches!(
            cache.lookup("s", &params("4"), None, 0.0),
            CacheLookup::Miss
        ));
    }

    #[test]
    fn invalidation_hooks() {
        let cache = CallCache::default();
        cache.store("s", &params("1"), None, &outcome("<a/>"), 0.0);
        cache.store("s", &params("2"), None, &outcome("<a/>"), 0.0);
        cache.store("t", &params("1"), None, &outcome("<a/>"), 0.0);
        assert_eq!(cache.invalidate_service("s"), 2);
        assert_eq!(cache.len(), 1);
        // breaker hook is inert by default (availability over freshness)
        cache.on_breaker_transition("t", true);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.invalidate_all(), 1);
        assert!(cache.is_empty());

        let strict = CallCache::new(CacheConfig {
            invalidate_on_breaker_open: true,
            ..CacheConfig::default()
        });
        strict.store("t", &params("1"), None, &outcome("<a/>"), 0.0);
        strict.on_breaker_transition("t", false);
        assert_eq!(strict.len(), 1, "closing transition keeps entries");
        strict.on_breaker_transition("t", true);
        assert!(strict.is_empty(), "opening transition purges the service");
    }

    #[test]
    fn per_service_ttl_and_purge() {
        let cache = CallCache::new(
            CacheConfig::with_ttl_ms(1_000.0)
                .ttl_for("fast", 10.0)
                .ttl_for("never", 0.0),
        );
        cache.store("fast", &params("1"), None, &outcome("<a/>"), 0.0);
        cache.store("slow", &params("1"), None, &outcome("<a/>"), 0.0);
        cache.store("never", &params("1"), None, &outcome("<a/>"), 0.0);
        assert_eq!(cache.len(), 2, "ttl 0 disables caching for a service");
        assert_eq!(cache.purge_expired(500.0), 1, "fast expired, slow lives");
        assert!(matches!(
            cache.lookup("slow", &params("1"), None, 500.0),
            CacheLookup::Hit(_)
        ));
    }
}
