//! The memoized call-result cache — `(service, params)` → result forest,
//! with per-service TTL validity windows charged to the simulated clock,
//! LRU eviction under byte/entry budgets, and invalidation hooks.
//!
//! Soundness: a hit is only ever served *within its validity window*. A
//! service is assumed to answer a given parameter forest identically for
//! `ttl` simulated milliseconds after an observed answer; the window is a
//! per-service policy knob (`f64::INFINITY` models the paper's
//! deterministic services, `0` disables caching for a service). Pushed
//! queries participate in the cache key — a provider-side pruned result
//! is correct only for the query it was pruned for, so it is never served
//! to a different one.
//!
//! Two implementations share these semantics:
//!
//! * [`CallCache`] — the serving-path cache, hash-**sharded** so N
//!   concurrent sessions don't serialize on one lock. Each shard has its
//!   own mutex and counters; LRU ticks come from one atomic so recency is
//!   globally ordered, and whole-cache operations — LRU eviction, service
//!   invalidation, purges — lock the shards in index order, so they stay
//!   atomic with respect to concurrent probes. Under any single-threaded
//!   sequence of operations its observable decisions (hit/miss/stale,
//!   victims, counters) are *identical* to the single-lock cache — pinned
//!   by the equivalence proptests in `tests/sharded_props.rs`.
//! * [`SingleLockCache`] — the original one-mutex implementation, kept as
//!   the executable specification the sharded cache is tested against.

use axml_query::render;
use axml_services::{CacheLookup, CachedCall, InvokeCache, InvokeOutcome, PushedQuery};
use axml_xml::{forest_serialized_len, to_xml, Forest};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Configuration of a [`CallCache`].
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Validity window for services without a specific TTL, in simulated
    /// milliseconds. `f64::INFINITY` (the default) never expires —
    /// appropriate for deterministic services; `0.0` disables caching.
    pub default_ttl_ms: f64,
    /// Per-service TTL overrides.
    pub ttl_overrides: HashMap<String, f64>,
    /// Maximum number of cached entries before LRU eviction (default 4096).
    /// The budget is global, not per shard.
    pub max_entries: usize,
    /// Maximum total serialized result bytes before LRU eviction
    /// (default 16 MiB). The budget is global, not per shard.
    pub max_bytes: usize,
    /// When `true`, a circuit breaker tripping open purges the service's
    /// entries (freshness over availability). The default `false` keeps
    /// serving cached successes within their validity windows while the
    /// service is failing — stale-while-error availability.
    pub invalidate_on_breaker_open: bool,
    /// Number of lock shards in a [`CallCache`] (default 8, minimum 1).
    /// Purely a concurrency knob: shard count never changes hit/miss/TTL/
    /// LRU/invalidation decisions, only which mutex a key contends on.
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            default_ttl_ms: f64::INFINITY,
            ttl_overrides: HashMap::new(),
            max_entries: 4096,
            max_bytes: 16 * 1024 * 1024,
            invalidate_on_breaker_open: false,
            shards: 8,
        }
    }
}

impl CacheConfig {
    /// A config whose default validity window is `ttl_ms`.
    pub fn with_ttl_ms(ttl_ms: f64) -> Self {
        CacheConfig {
            default_ttl_ms: ttl_ms,
            ..CacheConfig::default()
        }
    }

    /// Sets a per-service TTL override (builder style).
    pub fn ttl_for(mut self, service: impl Into<String>, ttl_ms: f64) -> Self {
        self.ttl_overrides.insert(service.into(), ttl_ms);
        self
    }

    /// Sets the shard count (builder style; clamped to ≥ 1).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    fn ttl(&self, service: &str) -> f64 {
        self.ttl_overrides
            .get(service)
            .copied()
            .unwrap_or(self.default_ttl_ms)
    }
}

/// Cumulative cache counters (monotone across a store's lifetime).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes answered by a valid entry.
    pub hits: u64,
    /// Probes that found nothing.
    pub misses: u64,
    /// Probes that found an expired entry (removed on sight).
    pub stale: u64,
    /// Entries stored (including replacements).
    pub insertions: u64,
    /// Entries evicted by the LRU budget.
    pub evictions: u64,
    /// Entries removed by explicit or breaker-driven invalidation.
    pub invalidations: u64,
}

impl CacheStats {
    /// hits / (hits + misses + stale), or 0.0 with no probes.
    pub fn hit_rate(&self) -> f64 {
        let probes = self.hits + self.misses + self.stale;
        if probes == 0 {
            0.0
        } else {
            self.hits as f64 / probes as f64
        }
    }

    /// Component-wise sum (used to fold per-shard counters into totals).
    pub fn merged(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            stale: self.stale + other.stale,
            insertions: self.insertions + other.insertions,
            evictions: self.evictions + other.evictions,
            invalidations: self.invalidations + other.invalidations,
        }
    }
}

/// Cache key: service name, serialized parameter forest, and (for pushed
/// calls) the rendered pushed pattern plus its edge kind — a pruned
/// result is only valid for the exact query it was pruned for.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Key {
    service: String,
    params_xml: String,
    pushed: Option<(String, bool)>,
}

impl Key {
    fn new(service: &str, params: &Forest, pushed: Option<&PushedQuery>) -> Self {
        Key {
            service: service.to_string(),
            params_xml: to_xml(params),
            pushed: pushed.map(|pq| (render(&pq.pattern), pq.via == axml_query::EdgeKind::Child)),
        }
    }

    /// Which of `n` shards this key lives in. `DefaultHasher` with a fixed
    /// initial state is deterministic within a build, which is all the
    /// placement needs — semantics never depend on the shard chosen.
    fn shard(&self, n: usize) -> usize {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        (h.finish() % n as u64) as usize
    }
}

struct Entry {
    result: Forest,
    bytes: usize,
    size_bytes: usize,
    pushed: bool,
    inserted_at_ms: f64,
    expires_at_ms: f64,
    last_used: u64,
}

// ---------------------------------------------------------------------------
// Sharded cache (the serving path)
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Shard {
    map: HashMap<Key, Entry>,
    bytes: usize,
    stats: CacheStats,
}

impl Shard {
    fn remove(&mut self, key: &Key) -> Option<Entry> {
        let e = self.map.remove(key)?;
        self.bytes -= e.size_bytes;
        Some(e)
    }

    /// This shard's least-recently-used entry, as `(last_used, key)`.
    fn lru_min(&self) -> Option<(u64, Key)> {
        self.map
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, e)| (e.last_used, k.clone()))
    }
}

/// A shared, internally synchronized call-result cache implementing the
/// engine-facing [`InvokeCache`] contract.
///
/// All timestamps are **simulated** milliseconds — the engine passes its
/// [`axml_services::SimClock`] time — so validity windows are charged to
/// the same clock as network latency and breaker cooldowns, and every
/// replay with the same seed observes identical hits and evictions.
///
/// Internally hash-sharded (see [`CacheConfig::shards`]): lookups and
/// stores lock only the key's shard, so concurrent sessions touching
/// different keys do not contend. Budgets and LRU order stay *global*:
/// recency ticks are drawn from one atomic counter and eviction locks all
/// shards (in index order, so two evictors cannot deadlock) to remove the
/// globally least-recently-used entry — exactly the victim the single-lock
/// cache would pick. Service-wide invalidation and eager purges take all
/// shard locks the same way, so they are atomic with respect to
/// concurrent lookups, just like the single-lock cache.
pub struct CallCache {
    config: CacheConfig,
    shards: Vec<Mutex<Shard>>,
    tick: AtomicU64,
}

impl Default for CallCache {
    fn default() -> Self {
        CallCache::new(CacheConfig::default())
    }
}

impl CallCache {
    /// An empty cache with the given configuration.
    pub fn new(config: CacheConfig) -> Self {
        let n = config.shards.max(1);
        CallCache {
            config,
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            tick: AtomicU64::new(0),
        }
    }

    /// The configuration this cache enforces.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Number of lock shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// A snapshot of the cumulative counters, summed over all shards.
    pub fn stats(&self) -> CacheStats {
        self.shard_stats()
            .iter()
            .fold(CacheStats::default(), |acc, s| acc.merged(s))
    }

    /// Per-shard counter snapshots, in shard-index order. Summing them
    /// component-wise yields exactly [`CallCache::stats`] — the identity
    /// the `axml-obs` stats oracle checks.
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().stats)
            .collect()
    }

    /// Per-shard `(hits, misses, stale)` probe counters in the shape
    /// [`axml_obs::StatsView`]'s `cache_shards` field expects — the
    /// harness-side bridge for the shard-sum accounting check.
    pub fn shard_probe_counters(&self) -> Vec<(usize, usize, usize)> {
        self.shard_stats()
            .iter()
            .map(|s| (s.hits as usize, s.misses as usize, s.stale as usize))
            .collect()
    }

    /// Live entries currently held.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().map.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total serialized result bytes currently held.
    pub fn total_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().bytes).sum()
    }

    /// Drops every entry belonging to `service` (explicit invalidation
    /// hook). Returns the number of entries removed.
    ///
    /// Atomic: all shards are locked (in index order, like eviction)
    /// before any entry is dropped, so a concurrent lookup sees either
    /// every entry of the service or none — the same guarantee
    /// [`SingleLockCache`] gives.
    pub fn invalidate_service(&self, service: &str) -> usize {
        let mut guards: Vec<_> = self.shards.iter().map(|s| s.lock().unwrap()).collect();
        let mut n = 0;
        for shard in guards.iter_mut() {
            let doomed: Vec<Key> = shard
                .map
                .keys()
                .filter(|k| k.service == service)
                .cloned()
                .collect();
            for k in &doomed {
                shard.remove(k);
            }
            shard.stats.invalidations += doomed.len() as u64;
            n += doomed.len();
        }
        n
    }

    /// Drops every entry. Returns the number of entries removed.
    /// Atomic across shards, like [`CallCache::invalidate_service`].
    pub fn invalidate_all(&self) -> usize {
        let mut guards: Vec<_> = self.shards.iter().map(|s| s.lock().unwrap()).collect();
        let mut n = 0;
        for shard in guards.iter_mut() {
            let removed = shard.map.len();
            shard.map.clear();
            shard.bytes = 0;
            shard.stats.invalidations += removed as u64;
            n += removed;
        }
        n
    }

    /// Eagerly drops entries whose validity window has passed at
    /// simulated time `now_ms` (expiry is otherwise lazy, on lookup).
    /// Returns the number of entries removed.
    /// Atomic across shards, like [`CallCache::invalidate_service`].
    pub fn purge_expired(&self, now_ms: f64) -> usize {
        let mut guards: Vec<_> = self.shards.iter().map(|s| s.lock().unwrap()).collect();
        let mut n = 0;
        for shard in guards.iter_mut() {
            let doomed: Vec<Key> = shard
                .map
                .iter()
                .filter(|(_, e)| e.expires_at_ms <= now_ms)
                .map(|(k, _)| k.clone())
                .collect();
            for k in &doomed {
                shard.remove(k);
            }
            shard.stats.invalidations += doomed.len() as u64;
            n += doomed.len();
        }
        n
    }

    /// The end of the TTL validity window of the cached entry for
    /// `(service, params, pushed)`, in simulated milliseconds —
    /// `f64::INFINITY` for entries that never expire, `None` when
    /// nothing is cached under that key. Purely observational: unlike a
    /// lookup, this never counts as a probe, touches recency, or removes
    /// an expired entry.
    pub fn expiry_of(
        &self,
        service: &str,
        params: &Forest,
        pushed: Option<&PushedQuery>,
    ) -> Option<f64> {
        let key = Key::new(service, params, pushed);
        let shard = self.shards[key.shard(self.shards.len())].lock().unwrap();
        shard.map.get(&key).map(|e| e.expires_at_ms)
    }

    /// The earliest *finite* expiry instant over all live entries: the
    /// next simulated time at which some cached result lapses and a
    /// refresh could do real work. `None` when nothing ever expires
    /// (cache empty, or every window infinite).
    pub fn earliest_expiry(&self) -> Option<f64> {
        let mut min: Option<f64> = None;
        for s in &self.shards {
            let shard = s.lock().unwrap();
            for e in shard.map.values() {
                if e.expires_at_ms.is_finite() && min.is_none_or(|m| e.expires_at_ms < m) {
                    min = Some(e.expires_at_ms);
                }
            }
        }
        min
    }

    /// Evicts globally least-recently-used entries until the budgets hold.
    /// Locks every shard in index order (a fixed total order, so two
    /// concurrent evictors cannot deadlock) and picks victims by global
    /// minimum `last_used` — ticks are unique, so the choice is
    /// deterministic and identical to the single-lock cache's.
    ///
    /// Per-shard LRU minima are maintained incrementally: picking a
    /// victim is an O(shards) min over the minima, and only the shard
    /// that lost its minimum is rescanned — never every entry of every
    /// shard per victim, so steady-state-full insertion stays cheap.
    fn evict_to_budget(&self) {
        let mut guards: Vec<_> = self.shards.iter().map(|s| s.lock().unwrap()).collect();
        let mut entries: usize = guards.iter().map(|g| g.map.len()).sum();
        let mut bytes: usize = guards.iter().map(|g| g.bytes).sum();
        if entries <= self.config.max_entries && bytes <= self.config.max_bytes {
            return;
        }
        let mut minima: Vec<Option<(u64, Key)>> = guards.iter().map(|g| g.lru_min()).collect();
        while entries > self.config.max_entries || bytes > self.config.max_bytes {
            let victim = minima
                .iter()
                .enumerate()
                .filter_map(|(i, m)| m.as_ref().map(|(tick, _)| (*tick, i)))
                .min();
            let Some((_, i)) = victim else { return };
            let (_, key) = minima[i].take().expect("victim shard has a minimum");
            let removed = guards[i].remove(&key).expect("minimum key is present");
            entries -= 1;
            bytes -= removed.size_bytes;
            guards[i].stats.evictions += 1;
            minima[i] = guards[i].lru_min();
        }
    }
}

impl InvokeCache for CallCache {
    fn lookup(
        &self,
        service: &str,
        params: &Forest,
        pushed: Option<&PushedQuery>,
        now_ms: f64,
    ) -> CacheLookup {
        let key = Key::new(service, params, pushed);
        let mut shard = self.shards[key.shard(self.shards.len())].lock().unwrap();
        let Some(entry) = shard.map.get(&key) else {
            shard.stats.misses += 1;
            return CacheLookup::Miss;
        };
        if entry.expires_at_ms <= now_ms {
            shard.remove(&key);
            shard.stats.stale += 1;
            return CacheLookup::Stale;
        }
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let entry = shard.map.get_mut(&key).expect("entry just probed");
        entry.last_used = tick;
        let hit = CachedCall {
            result: entry.result.clone(),
            bytes: entry.bytes,
            pushed: entry.pushed,
            age_ms: now_ms - entry.inserted_at_ms,
        };
        shard.stats.hits += 1;
        CacheLookup::Hit(hit)
    }

    fn store(
        &self,
        service: &str,
        params: &Forest,
        pushed: Option<&PushedQuery>,
        outcome: &InvokeOutcome,
        now_ms: f64,
    ) {
        let ttl = self.config.ttl(service);
        if ttl <= 0.0 {
            return; // caching disabled for this service
        }
        let size_bytes = forest_serialized_len(&outcome.result);
        if size_bytes > self.config.max_bytes {
            return; // a single over-budget result would evict everything
        }
        let key = Key::new(service, params, pushed);
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let entry = Entry {
            result: outcome.result.clone(),
            bytes: outcome.bytes,
            size_bytes,
            pushed: outcome.pushed,
            inserted_at_ms: now_ms,
            expires_at_ms: now_ms + ttl,
            last_used: tick,
        };
        {
            let mut shard = self.shards[key.shard(self.shards.len())].lock().unwrap();
            if let Some(old) = shard.remove(&key) {
                // replacement: the old window is superseded by the fresh answer
                let _ = old;
            }
            shard.bytes += entry.size_bytes;
            shard.map.insert(key, entry);
            shard.stats.insertions += 1;
            // the shard lock is released before eviction takes all locks
        }
        self.evict_to_budget();
    }

    fn on_breaker_transition(&self, service: &str, open: bool) {
        if open && self.config.invalidate_on_breaker_open {
            self.invalidate_service(service);
        }
    }
}

// ---------------------------------------------------------------------------
// Single-lock reference implementation
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Inner {
    map: HashMap<Key, Entry>,
    total_bytes: usize,
    tick: u64,
    stats: CacheStats,
}

impl Inner {
    fn remove(&mut self, key: &Key) -> Option<Entry> {
        let e = self.map.remove(key)?;
        self.total_bytes -= e.size_bytes;
        Some(e)
    }

    /// Evicts least-recently-used entries until the budgets hold.
    /// Deterministic: `last_used` ticks are unique, so the victim order
    /// does not depend on hash-map iteration order.
    fn evict_to_budget(&mut self, max_entries: usize, max_bytes: usize) {
        while self.map.len() > max_entries || self.total_bytes > max_bytes {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            let Some(k) = victim else { break };
            self.remove(&k);
            self.stats.evictions += 1;
        }
    }
}

/// The original one-mutex call cache, kept as the executable
/// specification for [`CallCache`]: under identical single-threaded event
/// sequences both make identical hit/miss/stale/LRU/invalidation
/// decisions (see `tests/sharded_props.rs`).
pub struct SingleLockCache {
    config: CacheConfig,
    inner: Mutex<Inner>,
}

impl Default for SingleLockCache {
    fn default() -> Self {
        SingleLockCache::new(CacheConfig::default())
    }
}

impl SingleLockCache {
    /// An empty cache with the given configuration (`config.shards` is
    /// ignored — there is only one lock).
    pub fn new(config: CacheConfig) -> Self {
        SingleLockCache {
            config,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The configuration this cache enforces.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// A snapshot of the cumulative counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().unwrap().stats
    }

    /// Live entries currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total serialized result bytes currently held.
    pub fn total_bytes(&self) -> usize {
        self.inner.lock().unwrap().total_bytes
    }

    /// Drops every entry belonging to `service`. Returns the number of
    /// entries removed.
    pub fn invalidate_service(&self, service: &str) -> usize {
        let mut inner = self.inner.lock().unwrap();
        let doomed: Vec<Key> = inner
            .map
            .keys()
            .filter(|k| k.service == service)
            .cloned()
            .collect();
        let n = doomed.len();
        for k in &doomed {
            inner.remove(k);
        }
        inner.stats.invalidations += n as u64;
        n
    }

    /// Drops every entry. Returns the number of entries removed.
    pub fn invalidate_all(&self) -> usize {
        let mut inner = self.inner.lock().unwrap();
        let n = inner.map.len();
        inner.map.clear();
        inner.total_bytes = 0;
        inner.stats.invalidations += n as u64;
        n
    }

    /// Eagerly drops entries expired at simulated time `now_ms`. Returns
    /// the number of entries removed.
    pub fn purge_expired(&self, now_ms: f64) -> usize {
        let mut inner = self.inner.lock().unwrap();
        let doomed: Vec<Key> = inner
            .map
            .iter()
            .filter(|(_, e)| e.expires_at_ms <= now_ms)
            .map(|(k, _)| k.clone())
            .collect();
        let n = doomed.len();
        for k in &doomed {
            inner.remove(k);
        }
        inner.stats.invalidations += n as u64;
        n
    }
}

impl InvokeCache for SingleLockCache {
    fn lookup(
        &self,
        service: &str,
        params: &Forest,
        pushed: Option<&PushedQuery>,
        now_ms: f64,
    ) -> CacheLookup {
        let key = Key::new(service, params, pushed);
        let mut inner = self.inner.lock().unwrap();
        let Some(entry) = inner.map.get(&key) else {
            inner.stats.misses += 1;
            return CacheLookup::Miss;
        };
        if entry.expires_at_ms <= now_ms {
            inner.remove(&key);
            inner.stats.stale += 1;
            return CacheLookup::Stale;
        }
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.map.get_mut(&key).expect("entry just probed");
        entry.last_used = tick;
        let hit = CachedCall {
            result: entry.result.clone(),
            bytes: entry.bytes,
            pushed: entry.pushed,
            age_ms: now_ms - entry.inserted_at_ms,
        };
        inner.stats.hits += 1;
        CacheLookup::Hit(hit)
    }

    fn store(
        &self,
        service: &str,
        params: &Forest,
        pushed: Option<&PushedQuery>,
        outcome: &InvokeOutcome,
        now_ms: f64,
    ) {
        let ttl = self.config.ttl(service);
        if ttl <= 0.0 {
            return; // caching disabled for this service
        }
        let size_bytes = forest_serialized_len(&outcome.result);
        if size_bytes > self.config.max_bytes {
            return; // a single over-budget result would evict everything
        }
        let key = Key::new(service, params, pushed);
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let entry = Entry {
            result: outcome.result.clone(),
            bytes: outcome.bytes,
            size_bytes,
            pushed: outcome.pushed,
            inserted_at_ms: now_ms,
            expires_at_ms: now_ms + ttl,
            last_used: inner.tick,
        };
        if let Some(old) = inner.remove(&key) {
            // replacement: the old window is superseded by the fresh answer
            let _ = old;
        }
        inner.total_bytes += entry.size_bytes;
        inner.map.insert(key, entry);
        inner.stats.insertions += 1;
        inner.evict_to_budget(self.config.max_entries, self.config.max_bytes);
    }

    fn on_breaker_transition(&self, service: &str, open: bool) {
        if open && self.config.invalidate_on_breaker_open {
            self.invalidate_service(service);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_xml::parse;

    fn outcome(xml: &str) -> InvokeOutcome {
        let result = parse(xml).unwrap();
        let bytes = forest_serialized_len(&result);
        InvokeOutcome {
            result,
            bytes,
            cost_ms: 10.0,
            pushed: false,
            attempts: 1,
        }
    }

    fn params(text: &str) -> Forest {
        let mut f = Forest::new();
        f.add_root_text(text);
        f
    }

    #[test]
    fn hit_within_window_stale_after() {
        let cache = CallCache::new(CacheConfig::with_ttl_ms(100.0));
        cache.store("s", &params("k"), None, &outcome("<a/>"), 0.0);
        assert!(matches!(
            cache.lookup("s", &params("k"), None, 50.0),
            CacheLookup::Hit(_)
        ));
        // at exactly the boundary the entry is expired
        assert!(matches!(
            cache.lookup("s", &params("k"), None, 100.0),
            CacheLookup::Stale
        ));
        // the expired entry was removed on sight: next probe is a miss
        assert!(matches!(
            cache.lookup("s", &params("k"), None, 100.0),
            CacheLookup::Miss
        ));
        let s = cache.stats();
        assert_eq!((s.hits, s.stale, s.misses), (1, 1, 1));
    }

    #[test]
    fn keys_distinguish_service_params_and_push() {
        let cache = CallCache::default();
        cache.store("s", &params("a"), None, &outcome("<a/>"), 0.0);
        assert!(matches!(
            cache.lookup("s", &params("b"), None, 0.0),
            CacheLookup::Miss
        ));
        assert!(matches!(
            cache.lookup("t", &params("a"), None, 0.0),
            CacheLookup::Miss
        ));
        let pq = PushedQuery {
            pattern: axml_query::parse_query("/a").unwrap(),
            via: axml_query::EdgeKind::Child,
        };
        // a plain entry must not answer a pushed probe, nor vice versa
        assert!(matches!(
            cache.lookup("s", &params("a"), Some(&pq), 0.0),
            CacheLookup::Miss
        ));
        cache.store("s", &params("a"), Some(&pq), &outcome("<b/>"), 0.0);
        let CacheLookup::Hit(h) = cache.lookup("s", &params("a"), Some(&pq), 0.0) else {
            panic!("pushed entry should hit");
        };
        assert_eq!(axml_xml::to_xml(&h.result), "<b/>");
    }

    #[test]
    fn lru_eviction_under_entry_budget() {
        let cache = CallCache::new(CacheConfig {
            max_entries: 2,
            ..CacheConfig::default()
        });
        cache.store("s", &params("1"), None, &outcome("<a/>"), 0.0);
        cache.store("s", &params("2"), None, &outcome("<b/>"), 0.0);
        // touch 1 so 2 becomes the LRU victim
        assert!(matches!(
            cache.lookup("s", &params("1"), None, 1.0),
            CacheLookup::Hit(_)
        ));
        cache.store("s", &params("3"), None, &outcome("<c/>"), 2.0);
        assert_eq!(cache.len(), 2);
        assert!(matches!(
            cache.lookup("s", &params("2"), None, 3.0),
            CacheLookup::Miss
        ));
        assert!(matches!(
            cache.lookup("s", &params("1"), None, 3.0),
            CacheLookup::Hit(_)
        ));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn byte_budget_and_oversized_results() {
        let small = outcome("<a/>");
        let unit = forest_serialized_len(&small.result);
        let cache = CallCache::new(CacheConfig {
            max_bytes: 2 * unit,
            ..CacheConfig::default()
        });
        cache.store("s", &params("1"), None, &small, 0.0);
        cache.store("s", &params("2"), None, &small, 0.0);
        assert_eq!(cache.len(), 2);
        cache.store("s", &params("3"), None, &small, 0.0);
        assert_eq!(cache.len(), 2, "byte budget evicts the LRU entry");
        assert!(cache.total_bytes() <= 2 * unit);
        // a result bigger than the whole budget is not stored at all
        let big = outcome("<a><b>xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx</b></a>");
        cache.store("s", &params("4"), None, &big, 0.0);
        assert!(matches!(
            cache.lookup("s", &params("4"), None, 0.0),
            CacheLookup::Miss
        ));
    }

    #[test]
    fn invalidation_hooks() {
        let cache = CallCache::default();
        cache.store("s", &params("1"), None, &outcome("<a/>"), 0.0);
        cache.store("s", &params("2"), None, &outcome("<a/>"), 0.0);
        cache.store("t", &params("1"), None, &outcome("<a/>"), 0.0);
        assert_eq!(cache.invalidate_service("s"), 2);
        assert_eq!(cache.len(), 1);
        // breaker hook is inert by default (availability over freshness)
        cache.on_breaker_transition("t", true);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.invalidate_all(), 1);
        assert!(cache.is_empty());

        let strict = CallCache::new(CacheConfig {
            invalidate_on_breaker_open: true,
            ..CacheConfig::default()
        });
        strict.store("t", &params("1"), None, &outcome("<a/>"), 0.0);
        strict.on_breaker_transition("t", false);
        assert_eq!(strict.len(), 1, "closing transition keeps entries");
        strict.on_breaker_transition("t", true);
        assert!(strict.is_empty(), "opening transition purges the service");
    }

    #[test]
    fn per_service_ttl_and_purge() {
        let cache = CallCache::new(
            CacheConfig::with_ttl_ms(1_000.0)
                .ttl_for("fast", 10.0)
                .ttl_for("never", 0.0),
        );
        cache.store("fast", &params("1"), None, &outcome("<a/>"), 0.0);
        cache.store("slow", &params("1"), None, &outcome("<a/>"), 0.0);
        cache.store("never", &params("1"), None, &outcome("<a/>"), 0.0);
        assert_eq!(cache.len(), 2, "ttl 0 disables caching for a service");
        assert_eq!(cache.purge_expired(500.0), 1, "fast expired, slow lives");
        assert!(matches!(
            cache.lookup("slow", &params("1"), None, 500.0),
            CacheLookup::Hit(_)
        ));
    }

    #[test]
    fn expiry_introspection() {
        let cache = CallCache::new(
            CacheConfig::with_ttl_ms(1_000.0)
                .ttl_for("fast", 10.0)
                .ttl_for("forever", f64::INFINITY),
        );
        assert_eq!(cache.earliest_expiry(), None, "empty cache: nothing lapses");
        cache.store("forever", &params("1"), None, &outcome("<a/>"), 0.0);
        assert_eq!(
            cache.expiry_of("forever", &params("1"), None),
            Some(f64::INFINITY)
        );
        assert_eq!(
            cache.earliest_expiry(),
            None,
            "infinite windows never lapse"
        );
        cache.store("slow", &params("1"), None, &outcome("<a/>"), 5.0);
        cache.store("fast", &params("1"), None, &outcome("<a/>"), 5.0);
        assert_eq!(cache.expiry_of("fast", &params("1"), None), Some(15.0));
        assert_eq!(cache.expiry_of("slow", &params("1"), None), Some(1_005.0));
        assert_eq!(cache.expiry_of("fast", &params("other"), None), None);
        assert_eq!(cache.earliest_expiry(), Some(15.0));
        // observation is not a probe: no stats moved, and an expired
        // entry is still visible until a real lookup removes it
        let before = cache.stats();
        assert_eq!(cache.expiry_of("fast", &params("1"), None), Some(15.0));
        assert_eq!(cache.stats(), before);
        assert!(matches!(
            cache.lookup("fast", &params("1"), None, 20.0),
            CacheLookup::Stale
        ));
        assert_eq!(cache.earliest_expiry(), Some(1_005.0));
    }

    #[test]
    fn shard_stats_sum_to_totals() {
        let cache = CallCache::new(CacheConfig::default().with_shards(4));
        assert_eq!(cache.shard_count(), 4);
        for i in 0..20 {
            cache.store("s", &params(&format!("{i}")), None, &outcome("<a/>"), 0.0);
            cache.lookup("s", &params(&format!("{i}")), None, 1.0);
            cache.lookup("s", &params(&format!("missing-{i}")), None, 1.0);
        }
        let per_shard = cache.shard_stats();
        assert_eq!(per_shard.len(), 4);
        let summed = per_shard
            .iter()
            .fold(CacheStats::default(), |acc, s| acc.merged(s));
        assert_eq!(summed, cache.stats());
        assert_eq!(summed.hits, 20);
        assert_eq!(summed.misses, 20);
        assert_eq!(summed.insertions, 20);
        // keys actually spread across shards (20 distinct keys, 4 shards)
        let populated = per_shard.iter().filter(|s| s.insertions > 0).count();
        assert!(populated > 1, "all keys hashed into one shard");
    }

    #[test]
    fn single_lock_reference_matches_on_a_smoke_sequence() {
        let sharded = CallCache::new(CacheConfig::with_ttl_ms(100.0).with_shards(4));
        let single = SingleLockCache::new(CacheConfig::with_ttl_ms(100.0));
        for (i, now) in [(1, 0.0), (2, 10.0), (3, 20.0)] {
            let p = params(&format!("{i}"));
            sharded.store("s", &p, None, &outcome("<a/>"), now);
            single.store("s", &p, None, &outcome("<a/>"), now);
        }
        for now in [50.0, 99.9, 100.0, 200.0] {
            for i in 1..=3 {
                let p = params(&format!("{i}"));
                let a = matches!(sharded.lookup("s", &p, None, now), CacheLookup::Hit(_));
                let b = matches!(single.lookup("s", &p, None, now), CacheLookup::Hit(_));
                assert_eq!(a, b, "divergence at t={now} key={i}");
            }
        }
        assert_eq!(sharded.stats(), single.stats());
        assert_eq!(sharded.len(), single.len());
        assert_eq!(sharded.total_bytes(), single.total_bytes());
    }
}
