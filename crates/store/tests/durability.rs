//! The crash-matrix oracle — the durability subsystem's headline test.
//!
//! One deterministic workload (K persistent-mode queries, each forcing
//! one service call and publishing one version) runs twice:
//!
//! 1. **Reference run** — no crash; records the document's XML at every
//!    version `0..=K`.
//! 2. **Crashed runs** — the same workload on a [`SimDir`] whose seeded
//!    [`CrashProfile`] kills the disk mid-flight (torn writes, dropped
//!    flush spans, bit rot — all restricted to the unsynced tail), swept
//!    across crash points × checkpoint cadences × fsync policies × fault
//!    seeds by proptest.
//!
//! After each crash the store is recovered from the persisted image and
//! the oracle asserts:
//!
//! * **Acknowledged prefix** — every fsync-acknowledged publication
//!   survives: `acked ≤ recovered_version`, and the recovered document
//!   is *byte-identical* (XML) to the reference run at that version.
//! * **No corrupt state** — the unacknowledged tail may be lost but
//!   never surfaces partially: the recovered version is always some
//!   exact reference prefix, and the arena passes `check_integrity`.
//! * **Idempotence** — recovering twice (or crashing during recovery
//!   and recovering again) yields the same state.
//! * **Continuity** — the recovered store accepts the remaining
//!   workload and converges to the reference run's final state.

use axml_query::{parse_query, Pattern};
use axml_services::{CallRequest, FnService, Registry};
use axml_store::{
    log_file_name, scan_frames, CrashProfile, DocumentStore, DurabilityOptions, FsyncPolicy,
    RecoveryReport, SessionOptions, SimDir,
};
use axml_xml::{parse, to_xml};
use proptest::prelude::*;
use std::sync::Arc;

const K: usize = 6;

fn registry() -> Registry {
    let mut r = Registry::new();
    r.register(FnService::new("svc", |req: &CallRequest| {
        let key = req.first_text().unwrap_or("?");
        parse(&format!("<val>{key}</val>")).unwrap()
    }));
    r
}

/// `<r><g0><call svc>0</call></g0> ... >` — query `i` forces exactly
/// group `i`'s call, so each query splices one result and publishes one
/// version.
fn doc() -> axml_xml::Document {
    let mut d = axml_xml::Document::with_root("r");
    let root = d.root();
    for i in 0..K {
        let g = d.add_element(root, format!("g{i}"));
        let c = d.add_call(g, "svc");
        d.add_text(c, format!("{i}"));
    }
    d
}

fn query(i: usize) -> Pattern {
    parse_query(&format!("/r/g{i}/val/$V -> $V")).unwrap()
}

fn persistent() -> SessionOptions {
    SessionOptions {
        snapshot_per_query: false,
        ..SessionOptions::default()
    }
}

/// Runs queries `from..K` against the durable store, returning the XML
/// after each publication, indexed by version.
fn run_workload(store: &mut DocumentStore, registry: &Registry, from: usize) -> Vec<String> {
    let mut by_version = Vec::new();
    for i in from..K {
        let mut session = store
            .session("doc", registry, None, persistent())
            .expect("doc stored");
        let report = session.query(&query(i));
        assert_eq!(report.answers.len(), 1, "query {i} has one answer row");
        drop(session);
        by_version.push(to_xml(&store.get("doc").unwrap().to_document()));
    }
    by_version
}

/// The uncrashed reference: XML at every version `0..=K`.
fn reference() -> Vec<String> {
    let registry = registry();
    let dir = SimDir::new(CrashProfile::default());
    let mut store = DocumentStore::durable(Box::new(dir), DurabilityOptions::default());
    store.insert("doc", doc());
    let mut xml = vec![to_xml(&store.get("doc").unwrap().to_document())];
    xml.extend(run_workload(&mut store, &registry, 0));
    assert_eq!(xml.len(), K + 1);
    xml
}

fn recover(dir: SimDir, options: DurabilityOptions) -> (DocumentStore, RecoveryReport) {
    DocumentStore::recover(Box::new(dir), options).expect("recovery runs")
}

/// The core oracle for one matrix point. Returns the recovered version
/// (None when the crash predated the acknowledged insert).
fn check_crash_point(
    reference_xml: &[String],
    crash_after_ops: u64,
    options: DurabilityOptions,
    profile: CrashProfile,
) -> Option<u64> {
    let registry = registry();
    let dir = SimDir::new(CrashProfile {
        crash_after_ops: Some(crash_after_ops),
        ..profile.clone()
    });
    let mut store = DocumentStore::durable(Box::new(dir.clone()), options.clone());
    store.insert("doc", doc());
    let _ = run_workload(&mut store, &registry, 0);
    let manager = Arc::clone(store.durability().expect("durable store"));
    let acked = manager.acked_version("doc");
    let crashed = dir.crashed();
    drop(store);

    // Recover from the persisted image (what the next boot sees).
    let booted = dir.reopen(CrashProfile::default());
    let (recovered, report) = recover(booted.clone(), options.clone());

    if acked.is_none() {
        // The crash hit before the insert's initial checkpoint was
        // acknowledged: the document may be unrecoverable, but that must
        // be *reported*, never silently papered over.
        if !report.ok() {
            assert!(report.first_error().is_some());
            return None;
        }
    }
    assert!(
        report.ok(),
        "acked insert must recover: {:?}",
        report.first_error()
    );
    let entry = report
        .docs
        .iter()
        .find(|d| d.name == "doc")
        .expect("doc entry");
    let rv = entry.recovered_version;

    // Acknowledged-prefix invariant.
    if let Some(acked) = acked {
        assert!(
            rv >= acked,
            "recovered v{rv} lost acknowledged v{acked} (crash at op {crash_after_ops})"
        );
    }
    assert!(rv <= K as u64, "recovered version beyond the workload");
    if !crashed {
        assert_eq!(rv, K as u64, "clean shutdown must recover everything");
        assert!(entry.truncated_at.is_none(), "clean log has no torn tail");
    }

    // The recovered state is byte-identical to the reference at rv, and
    // structurally sound.
    let recovered_doc = recovered.get("doc").expect("recovered").to_document();
    recovered_doc.check_integrity().expect("arena integrity");
    assert_eq!(
        to_xml(&recovered_doc),
        reference_xml[rv as usize],
        "recovered state must equal the reference at v{rv}"
    );

    // Idempotence: an independent recovery of the same image agrees, and
    // re-recovering the already-truncated log agrees too.
    let (again, report2) = recover(dir.reopen(CrashProfile::default()), options.clone());
    assert_eq!(
        to_xml(&again.get("doc").unwrap().to_document()),
        reference_xml[rv as usize]
    );
    assert_eq!(
        report2
            .docs
            .iter()
            .find(|d| d.name == "doc")
            .unwrap()
            .recovered_version,
        rv
    );
    drop(again);
    let (thrice, report3) = recover(booted.clone(), options.clone());
    assert_eq!(
        report3
            .docs
            .iter()
            .find(|d| d.name == "doc")
            .unwrap()
            .recovered_version,
        rv
    );
    assert_eq!(
        to_xml(&thrice.get("doc").unwrap().to_document()),
        reference_xml[rv as usize]
    );
    drop(thrice);

    // Continuity: the recovered store finishes the remaining workload
    // and converges on the reference's final state.
    let (mut resumed, _) = recover(booted, options);
    let _ = run_workload(&mut resumed, &registry, rv as usize);
    assert_eq!(
        to_xml(&resumed.get("doc").unwrap().to_document()),
        reference_xml[K],
        "resumed run must converge to the reference final state"
    );
    Some(rv)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The crash matrix: crash points × checkpoint cadence × fsync
    /// policy × fault seeds, with torn writes, dropped flush spans and
    /// bit rot all enabled.
    #[test]
    fn crash_matrix(
        crash_after_ops in 1u64..48,
        checkpoint_every in (0u64..4).prop_map(|i| [1u64, 2, 5, 8][i as usize]),
        every_n in (0u64..3).prop_map(|i| [1u32, 2, 3][i as usize]),
        seed in any::<u64>(),
        drop_flush_span in any::<bool>(),
        bit_rot in any::<bool>(),
    ) {
        let reference_xml = reference();
        let options = DurabilityOptions {
            checkpoint_every,
            fsync: if every_n == 1 { FsyncPolicy::Always } else { FsyncPolicy::EveryN(every_n) },
        };
        let profile = CrashProfile { seed, drop_flush_span, bit_rot, crash_after_ops: None };
        check_crash_point(&reference_xml, crash_after_ops, options, profile);
    }
}

/// Exhaustive sweep of every crash point under the default policy — the
/// deterministic backbone behind the randomized matrix above.
#[test]
fn every_crash_point_default_policy() {
    let reference_xml = reference();
    let mut recovered_versions = Vec::new();
    for crash_after_ops in 1..=40 {
        let rv = check_crash_point(
            &reference_xml,
            crash_after_ops,
            DurabilityOptions::default(),
            CrashProfile {
                seed: crash_after_ops,
                drop_flush_span: true,
                bit_rot: true,
                crash_after_ops: None,
            },
        );
        recovered_versions.push(rv);
    }
    // Later crash points recover at least as much (monotone coverage),
    // and the sweep reaches both extremes.
    assert!(recovered_versions.first().unwrap().is_none() || recovered_versions[0] == Some(0));
    assert_eq!(*recovered_versions.last().unwrap(), Some(K as u64));
    let versions: Vec<i64> = recovered_versions
        .iter()
        .map(|v| v.map(|v| v as i64).unwrap_or(-1))
        .collect();
    let mut sorted = versions.clone();
    sorted.sort();
    assert_eq!(
        versions, sorted,
        "recovery must be monotone in the crash point"
    );
}

/// `FsyncPolicy::Never` acknowledges nothing beyond the insert, so a
/// crash may lose every publication — but recovery still never surfaces
/// corruption.
#[test]
fn never_fsync_loses_tail_soundly() {
    let reference_xml = reference();
    let options = DurabilityOptions {
        checkpoint_every: 2,
        fsync: FsyncPolicy::Never,
    };
    for crash_after_ops in [3u64, 5, 9, 14] {
        check_crash_point(
            &reference_xml,
            crash_after_ops,
            options.clone(),
            CrashProfile {
                seed: 99 + crash_after_ops,
                drop_flush_span: true,
                bit_rot: false,
                crash_after_ops: None,
            },
        );
    }
}

/// Hand-planted corruption in the middle of a cleanly persisted log:
/// recovery truncates at the corrupt frame, reports its exact offset,
/// and yields the version the valid prefix supports.
#[test]
fn mid_log_corruption_truncates_with_offset() {
    let reference_xml = reference();
    let registry = registry();
    let dir = SimDir::new(CrashProfile::default());
    let mut store = DocumentStore::durable(
        Box::new(dir.clone()),
        DurabilityOptions {
            checkpoint_every: 0, // keep every record a splice: long replay chain
            fsync: FsyncPolicy::Always,
        },
    );
    store.insert("doc", doc());
    let _ = run_workload(&mut store, &registry, 0);
    drop(store);

    let file = log_file_name("doc");
    let clean = dir.persisted(&file);
    // Find the third frame's offset by scanning the clean log, then flip
    // a byte inside its payload.
    let scan = scan_frames(&clean);
    assert!(scan.truncated.is_none());
    let (third_offset, _) = scan.records[3];
    let mut corrupt = clean.clone();
    corrupt[third_offset as usize + 12] ^= 0x01;
    let booted = dir.reopen(CrashProfile::default());
    booted.set_persisted(&file, corrupt);

    let (recovered, report) = recover(booted, DurabilityOptions::default());
    assert!(report.ok());
    let entry = &report.docs[0];
    assert_eq!(entry.truncated_at, Some(third_offset));
    assert!(
        entry
            .truncate_reason
            .as_deref()
            .unwrap_or("")
            .contains("CRC mismatch"),
        "{:?}",
        entry.truncate_reason
    );
    // Frames: checkpoint v0 + splices v1..v3 survive minus the corrupt one.
    assert_eq!(entry.recovered_version, 2);
    assert_eq!(
        to_xml(&recovered.get("doc").unwrap().to_document()),
        reference_xml[2]
    );
}

/// A log reduced to garbage has no intact checkpoint: the document is
/// reported unrecoverable with a diagnostic, not silently dropped or
/// resurrected empty.
#[test]
fn garbage_log_is_reported_unrecoverable() {
    let dir = SimDir::new(CrashProfile::default());
    dir.set_persisted(&log_file_name("doc"), b"this is not a wal".to_vec());
    let (store, report) = recover(dir, DurabilityOptions::default());
    assert!(store.is_empty());
    assert!(!report.ok());
    let diag = report.first_error().expect("diagnostic");
    assert!(diag.contains("doc"), "{diag}");
    assert!(diag.contains("offset 0"), "{diag}");
}

/// The wal_* trace stream satisfies the durability oracle checks and the
/// manager's aggregate accounting.
#[test]
fn trace_stream_accounts_for_every_append() {
    let registry = registry();
    let dir = SimDir::new(CrashProfile::default());
    let mut store = DocumentStore::durable(
        Box::new(dir),
        DurabilityOptions {
            checkpoint_every: 2,
            fsync: FsyncPolicy::Always,
        },
    );
    let ring = Arc::new(axml_obs::RingSink::unbounded());
    // Insert happens after the sink is attached so its checkpoint shows.
    store
        .durability()
        .unwrap()
        .set_sink(Arc::clone(&ring) as Arc<dyn axml_obs::TraceSink>);
    store.insert("doc", doc());
    let _ = run_workload(&mut store, &registry, 0);
    let stats = store.durability().unwrap().stats();
    assert_eq!(stats.appends, K);
    assert_eq!(stats.synced_appends, K);
    assert_eq!(stats.checkpoints, 1 + K / 2);

    let events = ring.events();
    let violations = axml_obs::check_trace(&events);
    assert!(violations.is_empty(), "{violations:?}");
    let accounting = axml_obs::check_wal_accounting(
        &events,
        stats.appends,
        stats.synced_appends,
        stats.checkpoints,
    );
    assert!(accounting.is_empty(), "{accounting:?}");
}
