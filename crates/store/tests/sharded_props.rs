//! Property: sharding is invisible. The hash-sharded [`CallCache`] and
//! the single-lock reference implementation ([`SingleLockCache`]) are
//! driven through identical event sequences — stores, lookups,
//! invalidations, purges, breaker transitions, at monotone simulated
//! times, under tight LRU budgets and finite TTLs — and must make
//! identical observable decisions: the same hit/stale/miss outcome (and
//! payload) for every probe, the same removal counts, the same final
//! counters, entry count, and byte total. The shard count is itself a
//! generated dimension, so `shards = 1` pins the sharded code path to the
//! reference under the trivial layout too.

use axml_services::{CacheLookup, InvokeCache, InvokeOutcome, PushedQuery};
use axml_store::{CacheConfig, CallCache, SingleLockCache};
use axml_xml::{forest_serialized_len, parse, to_xml, Forest};
use proptest::prelude::*;

const SERVICES: [&str; 3] = ["alpha", "beta", "gamma"];
const PAYLOADS: [&str; 4] = [
    "<a/>",
    "<b>x</b>",
    "<c><d>result</d><d>result</d></c>",
    "<e>xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx</e>",
];

fn params(i: usize) -> Forest {
    let mut f = Forest::new();
    f.add_root_text(format!("param-{i}"));
    f
}

fn payload(i: usize) -> InvokeOutcome {
    let result = parse(PAYLOADS[i % PAYLOADS.len()]).unwrap();
    let bytes = forest_serialized_len(&result);
    InvokeOutcome {
        result,
        bytes,
        cost_ms: 10.0,
        pushed: false,
        attempts: 1,
    }
}

fn pushed_query() -> PushedQuery {
    PushedQuery {
        pattern: axml_query::parse_query("/probe").unwrap(),
        via: axml_query::EdgeKind::Child,
    }
}

/// A lookup outcome flattened to comparable data.
#[derive(Debug, PartialEq)]
enum Probe {
    Hit {
        xml: String,
        bytes: usize,
        pushed: bool,
        age_ms: f64,
    },
    Stale,
    Miss,
}

fn probe(lookup: CacheLookup) -> Probe {
    match lookup {
        CacheLookup::Hit(h) => Probe::Hit {
            xml: to_xml(&h.result),
            bytes: h.bytes,
            pushed: h.pushed,
            age_ms: h.age_ms,
        },
        CacheLookup::Stale => Probe::Stale,
        CacheLookup::Miss => Probe::Miss,
    }
}

/// One event in the generated sequence. Fields are interpreted per
/// opcode; unused fields are simply ignored, which keeps shrinking
/// well-behaved (no dependent strategies).
type Op = (u8, usize, usize, usize, f64);

fn apply<C: InvokeCache>(
    cache: &C,
    op: &Op,
    now_ms: f64,
    invalidate_service: impl Fn(&str) -> usize,
    invalidate_all: impl Fn() -> usize,
    purge: impl Fn(f64) -> usize,
) -> (Option<Probe>, Option<usize>) {
    let (kind, svc, key, pay, _) = *op;
    let service = SERVICES[svc % SERVICES.len()];
    let pushed = (key % 2 == 1).then(pushed_query);
    match kind % 6 {
        0 | 1 => (
            Some(probe(cache.lookup(
                service,
                &params(key),
                pushed.as_ref(),
                now_ms,
            ))),
            None,
        ),
        2 | 3 => {
            cache.store(
                service,
                &params(key),
                pushed.as_ref(),
                &payload(pay),
                now_ms,
            );
            (None, None)
        }
        4 => match key % 3 {
            0 => (None, Some(invalidate_service(service))),
            1 => (None, Some(invalidate_all())),
            _ => (None, Some(purge(now_ms))),
        },
        _ => {
            cache.on_breaker_transition(service, key % 2 == 0);
            (None, None)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The core equivalence property: identical event sequences produce
    /// identical observable behavior regardless of shard count.
    #[test]
    fn sharded_cache_matches_single_lock_reference(
        ops in proptest::collection::vec(
            (0u8..6, 0usize..3, 0usize..6, 0usize..4, 0.0f64..30.0),
            1..60,
        ),
        shards_idx in 0usize..4,
        ttl_idx in 0usize..3,
        max_entries in 2usize..8,
        tight_bytes in any::<bool>(),
        breaker_purges in any::<bool>(),
    ) {
        let shards = [1usize, 2, 4, 8][shards_idx];
        let ttl_ms = [f64::INFINITY, 75.0, 15.0][ttl_idx];
        let unit = forest_serialized_len(&parse(PAYLOADS[0]).unwrap());
        let config = CacheConfig {
            default_ttl_ms: ttl_ms,
            max_entries,
            max_bytes: if tight_bytes { 4 * unit } else { 16 * 1024 * 1024 },
            invalidate_on_breaker_open: breaker_purges,
            ..CacheConfig::default()
        }
        // per-service windows must shard-agnostically apply too
        .ttl_for("beta", 40.0)
        .with_shards(shards);

        let sharded = CallCache::new(config.clone());
        let single = SingleLockCache::new(config);

        let mut now_ms = 0.0;
        for (i, op) in ops.iter().enumerate() {
            now_ms += op.4; // monotone simulated clock
            let a = apply(
                &sharded,
                op,
                now_ms,
                |s| sharded.invalidate_service(s),
                || sharded.invalidate_all(),
                |t| sharded.purge_expired(t),
            );
            let b = apply(
                &single,
                op,
                now_ms,
                |s| single.invalidate_service(s),
                || single.invalidate_all(),
                |t| single.purge_expired(t),
            );
            prop_assert_eq!(
                a, b,
                "op {} ({:?}) diverged at t={} with {} shard(s)",
                i, op, now_ms, shards
            );
            prop_assert_eq!(sharded.len(), single.len(), "len after op {}", i);
            prop_assert_eq!(
                sharded.total_bytes(), single.total_bytes(),
                "bytes after op {}", i
            );
        }
        prop_assert_eq!(sharded.stats(), single.stats());

        // per-shard counters are a partition of the totals
        let folded = sharded
            .shard_stats()
            .iter()
            .fold(axml_store::CacheStats::default(), |acc, s| acc.merged(s));
        prop_assert_eq!(folded, sharded.stats());
        prop_assert_eq!(sharded.shard_count(), shards);
    }

    /// The shard-sum identity feeds the `axml-obs` accounting oracle:
    /// filling `StatsView::cache_shards` from a live cache always passes
    /// the shard-sum check against totals taken from the same cache.
    #[test]
    fn shard_probe_counters_satisfy_the_obs_identity(
        keys in proptest::collection::vec((0usize..8, 0usize..4), 1..40),
        shards_idx in 0usize..4,
    ) {
        let shards = [1usize, 2, 4, 8][shards_idx];
        let cache = CallCache::new(CacheConfig::default().with_shards(shards));
        for &(key, pay) in &keys {
            // probe-then-store so hits, misses, and replacements all occur
            cache.lookup("s", &params(key), None, 0.0);
            cache.store("s", &params(key), None, &payload(pay), 0.0);
        }
        let totals = cache.stats();
        let view = axml_obs::StatsView {
            cache_hits: totals.hits as usize,
            cache_misses: totals.misses as usize,
            cache_stale: totals.stale as usize,
            cache_shards: cache.shard_probe_counters(),
            ..axml_obs::StatsView::default()
        };
        let violations = axml_obs::check_stats(&[], &view);
        prop_assert!(
            !violations.iter().any(|v| v.message.contains("per-shard")),
            "{violations:?}"
        );
    }
}
