//! Property: the cache is invisible in answers. For random documents and
//! random query sequences, every answer a warm session produces equals
//! the answer a cold, cache-less engine produces on a fresh copy of the
//! document — and an immediately repeated query under an infinite
//! validity window costs zero invocations.

use axml_core::{Engine, EngineConfig};
use axml_gen::synthetic::{random_query, random_workload, SyntheticParams};
use axml_query::{render_result, Pattern};
use axml_services::Registry;
use axml_store::{CacheConfig, DocumentStore, SessionOptions};
use axml_xml::Document;
use proptest::prelude::*;
use std::collections::BTreeSet;

type Answers = BTreeSet<Vec<String>>;

fn cold_answers(doc: &Document, q: &Pattern, registry: &Registry) -> Answers {
    let mut d = doc.clone();
    let report = Engine::new(registry, EngineConfig::default()).evaluate(&mut d, q);
    assert!(!report.stats.truncated, "synthetic workloads terminate");
    render_result(&d, &report.result).into_iter().collect()
}

/// A pool of distinct queries, some repeated, in a seed-determined order.
fn query_sequence(qseed: u64, alphabet: usize) -> Vec<Pattern> {
    let pool: Vec<Pattern> = (0..3)
        .map(|i| random_query(qseed.wrapping_add(i * 7919), alphabet, 7))
        .collect();
    // deterministic interleaving with repeats: 0 1 0 2 1 0
    [0usize, 1, 0, 2, 1, 0]
        .iter()
        .map(|&i| pool[i].clone())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cached_sessions_answer_exactly_like_cold_engines(
        wseed in 0u64..10_000,
        qseed in 0u64..10_000,
        doc_nodes in 30usize..100,
        call_probability in 0.05f64..0.5,
        ttl_idx in 0usize..3,
    ) {
        let ttl_ms = [f64::INFINITY, 10_000.0, 50.0][ttl_idx];
        let params = SyntheticParams {
            seed: wseed,
            doc_nodes,
            call_probability,
            ..Default::default()
        };
        let (doc, registry) = random_workload(&params);
        let mut store = DocumentStore::with_cache_config(CacheConfig::with_ttl_ms(ttl_ms));
        store.insert("d", doc.clone());
        let mut session = store
            .session("d", &registry, None, SessionOptions::default())
            .unwrap();
        for (i, q) in query_sequence(qseed, params.alphabet).iter().enumerate() {
            let warm = session.query(q);
            let cold = cold_answers(&doc, q, &registry);
            prop_assert_eq!(
                &warm.answers, &cold,
                "query {} of the session diverged from a cold engine \
                 (wseed={}, qseed={}, ttl={})",
                i, wseed, qseed, ttl_ms
            );
            prop_assert!(warm.complete, "healthy workloads stay complete");
        }
    }

    #[test]
    fn immediate_reevaluation_is_free_under_infinite_ttl(
        wseed in 0u64..10_000,
        qseed in 0u64..10_000,
    ) {
        let params = SyntheticParams { seed: wseed, ..Default::default() };
        let (doc, registry) = random_workload(&params);
        let q = random_query(qseed, params.alphabet, 7);
        let mut store = DocumentStore::new();
        store.insert("d", doc);
        let mut session = store
            .session("d", &registry, None, SessionOptions::default())
            .unwrap();
        let cold = session.query(&q);
        let warm = session.query(&q);
        prop_assert_eq!(warm.stats.calls_invoked, 0, "wseed={}, qseed={}", wseed, qseed);
        prop_assert_eq!(warm.stats.cache_misses, 0, "wseed={}, qseed={}", wseed, qseed);
        prop_assert_eq!(warm.stats.sim_time_ms, 0.0);
        prop_assert_eq!(&warm.answers, &cold.answers);
        prop_assert_eq!(&warm.result_xml, &cold.result_xml);
    }
}
