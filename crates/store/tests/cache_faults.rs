//! Cache semantics under fault injection.
//!
//! The cache's availability contract: a cached success keeps serving
//! hits while its service is failing or its circuit breaker is open
//! (stale-while-error, within the validity window); an *expired* entry
//! gives no such shelter — the call falls through to the normal
//! retry/breaker path and degrades like any other call. And the whole
//! arrangement replays byte-for-byte under a fixed fault seed.

use axml_core::{EngineConfig, EngineStats};
use axml_query::{parse_query, Pattern};
use axml_services::{
    BreakerConfig, CallRequest, FaultProfile, FnService, NetProfile, Registry, RetryPolicy,
};
use axml_store::{CacheConfig, DocumentStore, SessionOptions, SessionReport};
use axml_xml::{parse, Document};
use std::collections::BTreeSet;

/// Seed for every schedule here; `AXML_FAULT_SEED` (set by the CI fault
/// job) replays the suite under a different deterministic world.
fn seed() -> u64 {
    std::env::var("AXML_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Two providers behind one query, as in the engine's fault matrix:
/// faults go into `svcB` only, so `svcA` measures what must survive.
fn registry() -> Registry {
    let mut r = Registry::new();
    for name in ["svcA", "svcB"] {
        r.register(FnService::new(name, move |req: &CallRequest| {
            let key = req.first_text().unwrap_or("?");
            parse(&format!("<item><id>{name}-{key}</id></item>")).unwrap()
        }));
    }
    r.set_default_profile(NetProfile::latency(10.0));
    r
}

fn doc() -> Document {
    let mut d = Document::with_root("r");
    let root = d.root();
    for i in 0..4 {
        for svc in ["svcA", "svcB"] {
            let c = d.add_call(root, svc);
            d.add_text(c, format!("{i}"));
        }
    }
    d
}

fn query() -> Pattern {
    parse_query("/r/item/id/$I -> $I").unwrap()
}

fn store(config: CacheConfig) -> DocumentStore {
    let mut s = DocumentStore::with_cache_config(config);
    s.insert("d", doc());
    s
}

fn run_query(store: &mut DocumentStore, registry: &Registry) -> SessionReport {
    let mut session = store
        .session("d", registry, None, SessionOptions::default())
        .expect("document is stored");
    session.query(&query())
}

fn probes(stats: &EngineStats) -> usize {
    stats.cache_hits + stats.cache_misses + stats.cache_stale
}

#[test]
fn warm_cache_reevaluation_invokes_nothing() {
    // The PR's acceptance criterion, in its simplest form: the second
    // evaluation of the identical query performs ZERO service
    // invocations and renders the identical answer.
    let mut store = store(CacheConfig::default());
    let r = registry();
    let cold = run_query(&mut store, &r);
    assert!(cold.complete);
    assert_eq!(cold.stats.calls_invoked, 8);
    assert_eq!(cold.stats.cache_hits, 0);
    assert!(cold.stats.sim_time_ms > 0.0);

    let warm = run_query(&mut store, &r);
    assert!(warm.complete);
    assert_eq!(warm.stats.calls_invoked, 0, "all calls served by the cache");
    assert_eq!(warm.stats.cache_hits, 8);
    assert_eq!(warm.answers, cold.answers);
    assert_eq!(warm.result_xml, cold.result_xml);
    assert_eq!(
        warm.stats.sim_time_ms, 0.0,
        "cache hits cost zero simulated network time"
    );
}

#[test]
fn cached_success_serves_hits_while_the_service_is_failing() {
    let mut store = store(CacheConfig::default());
    let mut r = registry();
    let cold = run_query(&mut store, &r);
    assert!(cold.complete);

    // both providers go down permanently, retries disabled
    r.set_fault_profile("svcA", FaultProfile::permanent(seed()));
    r.set_fault_profile("svcB", FaultProfile::permanent(seed()));
    r.set_retry_policy(RetryPolicy::none());

    let warm = run_query(&mut store, &r);
    assert!(
        warm.complete,
        "cached successes shelter the query from the outage"
    );
    assert_eq!(warm.stats.calls_invoked, 0);
    assert_eq!(warm.stats.failed_calls, 0);
    assert_eq!(warm.stats.cache_hits, 8);
    assert_eq!(warm.answers, cold.answers);
}

#[test]
fn cached_success_serves_hits_while_the_breaker_is_open() {
    let mut store = store(CacheConfig::default());
    let mut r = registry();
    r.set_breaker_config(BreakerConfig {
        failure_threshold: 2,
        cooldown_ms: 1e9,
    });
    let cold = run_query(&mut store, &r);
    assert!(cold.complete);

    // trip both breakers open by recording failures directly
    for svc in ["svcA", "svcB"] {
        r.breaker_record(svc, false, 0.0);
        r.breaker_record(svc, false, 0.0);
        assert!(!r.breaker_allows(svc, 0.0), "{svc}: breaker must be open");
    }

    let warm = run_query(&mut store, &r);
    assert!(
        warm.complete,
        "hits are probed before the breaker gate, so an open breaker \
         refuses nothing that the cache can answer"
    );
    assert_eq!(warm.stats.calls_invoked, 0);
    assert_eq!(warm.stats.breaker_skips, 0);
    assert_eq!(warm.stats.cache_hits, 8);
    assert_eq!(warm.answers, cold.answers);
}

#[test]
fn breaker_open_purges_when_configured_for_freshness() {
    let mut store = DocumentStore::with_cache_config(CacheConfig {
        invalidate_on_breaker_open: true,
        ..CacheConfig::default()
    });
    store.insert("d", doc());
    // a second document whose calls carry fresh parameters, so its
    // evaluation cannot be served by the cold run's entries
    let mut d2 = Document::with_root("r");
    let root = d2.root();
    for i in 4..8 {
        for svc in ["svcA", "svcB"] {
            let c = d2.add_call(root, svc);
            d2.add_text(c, format!("{i}"));
        }
    }
    store.insert("d2", d2);

    let mut r = registry();
    r.set_breaker_config(BreakerConfig {
        failure_threshold: 1,
        cooldown_ms: 1e9,
    });
    r.set_retry_policy(RetryPolicy::none());
    let cold = run_query(&mut store, &r);
    assert!(cold.complete);
    assert_eq!(store.cache().len(), 8);

    // svcB goes down. Evaluating d2 forces fresh svcB invocations; the
    // first failure flips the breaker open, and the opening transition
    // purges every cached svcB entry — including the cold run's.
    r.set_fault_profile("svcB", FaultProfile::permanent(seed()));
    let mut session = store
        .session("d2", &r, None, SessionOptions::default())
        .unwrap();
    let broken = session.query(&query());
    assert!(!broken.complete);
    drop(session);
    assert!(
        store.cache().stats().invalidations >= 4,
        "the opening transition must purge svcB's entries"
    );

    // the original document's svcB half is gone from the cache too; its
    // calls now miss and are refused by the still-open breaker
    let after = run_query(&mut store, &r);
    assert!(!after.complete);
    assert_eq!(after.stats.cache_hits, 4, "only svcA's entries survive");
    assert_eq!(after.stats.breaker_skips, 4);
}

#[test]
fn expired_entry_falls_through_to_the_retry_and_breaker_path() {
    // 500 ms validity: the cold run populates, then the clock advances
    // past every horizon, then svcB goes down. The expired entries must
    // NOT shelter the query — svcB re-invocations fail through the
    // normal retry path and the answer degrades to svcA's half.
    let mut store = store(CacheConfig::with_ttl_ms(500.0));
    let mut r = registry();
    let cold = run_query(&mut store, &r);
    assert!(cold.complete);
    let reference_partial: BTreeSet<Vec<String>> = cold
        .answers
        .iter()
        .filter(|row| row.iter().all(|v| v.starts_with("svcA-")))
        .cloned()
        .collect();

    r.set_fault_profile("svcB", FaultProfile::permanent(seed()));
    r.set_breaker_config(BreakerConfig::disabled());

    let mut session = store
        .session("d", &r, None, SessionOptions::default())
        .unwrap();
    session.advance_clock(1_000.0); // every validity window has passed
    let stale = session.query(&query());
    assert!(!stale.complete, "expired entries give no shelter");
    assert_eq!(stale.stats.cache_hits, 0);
    assert_eq!(
        stale.stats.cache_stale, 8,
        "every probe found an expired entry"
    );
    assert_eq!(stale.stats.failed_calls, 4, "svcB degrades normally");
    assert_eq!(stale.stats.calls_invoked, 4, "svcA re-invoked fresh");
    assert_eq!(stale.answers, reference_partial);
    // the failed refresh did not poison the cache: only svcA re-cached
    assert!(stale.stats.call_attempts > stale.stats.calls_invoked);
}

#[test]
fn expiry_respects_the_session_clock_not_query_count() {
    // Queries at clock 0, ~80, ~160… against a 10 s window: all hits.
    // One 11 s idle gap and the same query misses everything.
    let store = store(CacheConfig::with_ttl_ms(10_000.0));
    let r = registry();
    let mut session = store
        .session("d", &r, None, SessionOptions::default())
        .unwrap();
    let q = query();
    let cold = session.query(&q);
    assert_eq!(cold.stats.cache_hits, 0);
    for _ in 0..3 {
        let warm = session.query(&q);
        assert_eq!(warm.stats.cache_hits, 8);
        assert!(warm.clock_ms < 10_000.0);
    }
    session.advance_clock(11_000.0);
    let aged = session.query(&q);
    assert_eq!(aged.stats.cache_hits, 0);
    assert_eq!(aged.stats.cache_stale, 8);
    assert!(aged.complete, "healthy services simply re-answer");
    assert_eq!(aged.answers, cold.answers);
}

/// Everything a session run determines, printable — answers, stats,
/// traces (with cache markers), cache counters — but no CPU durations.
fn fingerprint(reports: &[SessionReport]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for (i, rep) in reports.iter().enumerate() {
        let s = &rep.stats;
        writeln!(
            out,
            "q{i}: calls={} failed={} skips={} attempts={} bytes={} \
             hits={} misses={} stale={} sim={} clock={} complete={}",
            s.calls_invoked,
            s.failed_calls,
            s.breaker_skips,
            s.call_attempts,
            s.bytes_transferred,
            s.cache_hits,
            s.cache_misses,
            s.cache_stale,
            s.sim_time_ms,
            rep.clock_ms,
            rep.complete
        )
        .unwrap();
        for row in &rep.answers {
            writeln!(out, "  answer: {row:?}").unwrap();
        }
        for e in &rep.trace {
            writeln!(
                out,
                "  trace: r{} {} /{} cached={} ok={} attempts={} cost={}",
                e.round, e.service, e.path, e.cached, e.ok, e.attempts, e.cost_ms
            )
            .unwrap();
        }
        let c = &rep.cache;
        writeln!(
            out,
            "  cache: h={} m={} s={} ins={} ev={} inv={}",
            c.hits, c.misses, c.stale, c.insertions, c.evictions, c.invalidations
        )
        .unwrap();
    }
    out
}

#[test]
fn chaos_replay_is_byte_identical_under_a_fixed_seed() {
    let one = || {
        let store = store(CacheConfig::with_ttl_ms(300.0));
        let mut r = registry();
        r.set_default_fault_profile(FaultProfile::chaos(seed(), 0.5));
        r.set_retry_policy(RetryPolicy::default().with_timeout_ms(200.0));
        let opts = SessionOptions {
            engine: EngineConfig {
                trace: true,
                ..EngineConfig::default()
            },
            snapshot_per_query: true,
            ..SessionOptions::default()
        };
        let mut session = store.session("d", &r, None, opts).unwrap();
        let q = query();
        let mut reports = Vec::new();
        for i in 0..4 {
            if i == 2 {
                session.advance_clock(400.0); // expire the early entries
            }
            reports.push(session.query(&q));
        }
        fingerprint(&reports)
    };
    assert_eq!(
        one(),
        one(),
        "two session streams with the same fault seed must agree byte-for-byte"
    );
}

#[test]
fn persistent_mode_materializes_instead_of_caching() {
    // snapshot_per_query = false: the first query splices results into
    // the stored document itself, so the second finds no calls at all —
    // zero invocations *and* zero cache probes.
    let store = store(CacheConfig::default());
    let r = registry();
    let opts = SessionOptions {
        engine: EngineConfig::default(),
        snapshot_per_query: false,
        ..SessionOptions::default()
    };
    let mut session = store.session("d", &r, None, opts.clone()).unwrap();
    let cold = session.query(&query());
    assert!(cold.complete);
    assert_eq!(cold.stats.calls_invoked, 8);
    let warm = session.query(&query());
    assert!(warm.complete);
    assert_eq!(warm.stats.calls_invoked, 0);
    assert_eq!(probes(&warm.stats), 0, "no calls remain to probe for");
    assert_eq!(warm.answers, cold.answers);
}

#[test]
fn exhausted_deadline_still_serves_zero_cost_cache_hits() {
    // The deadline gate sits BEHIND the cache probe: a hit costs zero
    // simulated time, so even a query whose budget is already spent at
    // its first instant completes entirely out of the cache.
    let mut store = store(CacheConfig::default());
    let r = registry();
    let cold = run_query(&mut store, &r);
    assert!(cold.complete);

    let opts = SessionOptions::with_engine(EngineConfig {
        deadline_ms: 0.0,
        ..EngineConfig::default()
    });
    let mut session = store.session("d", &r, None, opts).unwrap();
    let warm = session.query(&query());
    assert!(
        warm.complete,
        "an exhausted deadline must not refuse zero-cost hits"
    );
    assert_eq!(warm.stats.cache_hits, 8);
    assert_eq!(warm.stats.calls_invoked, 0);
    assert!(!warm.stats.deadline_exceeded);
    assert_eq!(warm.stats.sim_time_ms, 0.0);
    assert_eq!(warm.answers, cold.answers);
}

#[test]
fn expired_deadline_on_a_cold_cache_degrades_cleanly() {
    // Without cached answers the same zero-budget query invokes nothing
    // and closes the round as a sound (empty) partial answer with the
    // distinct deadline cause — not a generic truncation.
    let mut store = store(CacheConfig::default());
    let r = registry();
    let opts = SessionOptions::with_engine(EngineConfig {
        deadline_ms: 0.0,
        ..EngineConfig::default()
    });
    let mut session = store.session("d", &r, None, opts).unwrap();
    let starved = session.query(&query());
    assert!(!starved.complete);
    assert!(starved.stats.deadline_exceeded);
    assert!(starved.stats.truncated);
    assert_eq!(starved.stats.calls_invoked, 0);
    assert_eq!(starved.stats.failed_calls, 0);
    assert_eq!(starved.stats.sim_time_ms, 0.0);
    assert!(starved.answers.is_empty());
    drop(session);

    // the starved query poisoned nothing: a normal run then completes
    let healthy = run_query(&mut store, &r);
    assert!(healthy.complete);
    assert_eq!(healthy.stats.calls_invoked, 8);
}

#[test]
fn per_query_deadlines_converge_through_the_session_cache() {
    // Each query gets a FRESH 25 ms budget relative to its own start —
    // the session clock does not eat later queries' deadlines — and the
    // calls each query does land in the shared cache. Re-asking the same
    // query therefore makes monotone progress and eventually completes,
    // even though no single query's budget covers the whole workload.
    let store = store(CacheConfig::default());
    let r = registry();
    let opts = SessionOptions::with_engine(EngineConfig {
        parallel: false,
        deadline_ms: 25.0,
        ..EngineConfig::default()
    });
    let mut session = store.session("d", &r, None, opts).unwrap();
    let q = query();
    let mut answered_so_far = 0usize;
    let mut completed_at = None;
    for round in 0..8 {
        let report = session.query(&q);
        assert!(
            report.stats.sim_time_ms <= 25.0 + 1e-9,
            "round {round}: a query may never overrun its own deadline"
        );
        let answered = report.stats.cache_hits + report.stats.calls_invoked;
        assert!(
            answered > answered_so_far,
            "round {round}: every round must make progress"
        );
        answered_so_far = answered;
        if report.complete {
            assert!(!report.stats.deadline_exceeded);
            assert_eq!(report.answers.len(), 8);
            completed_at = Some(round);
            break;
        }
        assert!(report.stats.deadline_exceeded);
    }
    assert!(
        completed_at.is_some(),
        "the cache must carry the workload past its per-query deadline"
    );
}
