//! The service registry — the engine's gateway to "the Web".
//!
//! Dispatches invocations to registered services, applies the per-service
//! network profile to compute simulated costs, plays the provider's side of
//! pushed queries (Section 7), and records traffic statistics.

use crate::fault::{
    fnv64, BreakerConfig, BreakerState, FaultDecision, FaultProfile, RetryPolicy, SALT_HEDGE,
};
use crate::net::{NetProfile, NetStats};
use crate::push::{bindings_result, prune_result, PushMode};
use crate::service::{CallRequest, PushedQuery, Service};
use axml_xml::{forest_serialized_len, to_xml, Forest};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Mutex};

/// Failure to dispatch a call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// No service registered under that name.
    Unknown(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Unknown(n) => write!(f, "unknown service {n:?}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A call that exhausted its retry budget without succeeding.
#[derive(Debug, Clone, PartialEq)]
pub struct FailedCall {
    /// Service name.
    pub service: String,
    /// Attempts made (1 + retries used).
    pub attempts: usize,
    /// Total simulated cost burned: failed attempts plus backoff. The
    /// caller must still charge this to its clock.
    pub cost_ms: f64,
    /// Whether the final attempt failed by exceeding the deadline.
    pub timed_out: bool,
    /// Whether the call was cut short because the end-to-end deadline
    /// budget ran out (rather than by exhausting its retries).
    pub deadline_exceeded: bool,
}

/// Failure modes of [`Registry::invoke_with_policy`].
#[derive(Debug, Clone, PartialEq)]
pub enum InvokeError {
    /// No service registered under that name; nothing was attempted and
    /// no cost accrued.
    Unknown(String),
    /// The service exists but every attempt failed.
    Failed(FailedCall),
}

impl fmt::Display for InvokeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvokeError::Unknown(n) => write!(f, "unknown service {n:?}"),
            InvokeError::Failed(c) => write!(
                f,
                "service {:?} failed after {} attempt(s){}",
                c.service,
                c.attempts,
                if c.timed_out { " (timed out)" } else { "" }
            ),
        }
    }
}

impl std::error::Error for InvokeError {}

/// Everything the engine learns from one invocation.
#[derive(Clone, Debug)]
pub struct InvokeOutcome {
    /// The (possibly provider-side pruned) result forest.
    pub result: Forest,
    /// Result bytes on the wire.
    pub bytes: usize,
    /// Simulated cost of this call, including any failed attempts and
    /// retry backoff that preceded the success.
    pub cost_ms: f64,
    /// Whether a pushed query was evaluated by the provider.
    pub pushed: bool,
    /// Attempts made (1 = succeeded first try).
    pub attempts: usize,
}

/// One line of the registry's call log.
#[derive(Clone, Debug)]
pub struct CallRecord {
    /// Service name.
    pub service: String,
    /// Result bytes (0 for failed calls).
    pub bytes: usize,
    /// Simulated cost, including failed attempts and backoff.
    pub cost_ms: f64,
    /// Whether the provider evaluated a pushed query.
    pub pushed: bool,
    /// Attempts made.
    pub attempts: usize,
    /// Whether the call ultimately succeeded.
    pub ok: bool,
}

/// Default call-log capacity — generous enough to hold every call of
/// the paper-scale experiments, small enough that a long-lived store
/// session cannot grow without bound. Override with
/// [`Registry::set_call_log_capacity`].
pub const DEFAULT_CALL_LOG_CAPACITY: usize = 65_536;

/// The registry's bounded call log: a ring buffer that drops its oldest
/// record once `capacity` is reached, counting what it dropped.
struct CallLog {
    entries: VecDeque<CallRecord>,
    capacity: usize,
    dropped: u64,
}

impl CallLog {
    fn new(capacity: usize) -> Self {
        CallLog {
            entries: VecDeque::new(),
            capacity,
            dropped: 0,
        }
    }

    fn push(&mut self, record: CallRecord) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        while self.entries.len() >= self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(record);
    }
}

/// A registry of services with network profiles, fault schedules, and
/// statistics.
pub struct Registry {
    services: HashMap<String, Arc<dyn Service>>,
    profiles: HashMap<String, NetProfile>,
    default_profile: NetProfile,
    push_mode: PushMode,
    fault_profiles: HashMap<String, FaultProfile>,
    default_fault: Option<FaultProfile>,
    retry: RetryPolicy,
    breaker_config: BreakerConfig,
    breakers: Mutex<HashMap<String, BreakerState>>,
    latency: Mutex<HashMap<String, f64>>,
    stats: Mutex<NetStats>,
    log: Mutex<CallLog>,
}

/// Smoothing factor of the per-service latency EWMA: each observation
/// moves the estimate 30% of the way toward the observed cost.
const LATENCY_EWMA_ALPHA: f64 = 0.3;

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry with a free network and no fault injection.
    pub fn new() -> Self {
        Registry {
            services: HashMap::new(),
            profiles: HashMap::new(),
            default_profile: NetProfile::free(),
            push_mode: PushMode::PrunedResult,
            fault_profiles: HashMap::new(),
            default_fault: None,
            retry: RetryPolicy::default(),
            breaker_config: BreakerConfig::default(),
            breakers: Mutex::new(HashMap::new()),
            latency: Mutex::new(HashMap::new()),
            stats: Mutex::new(NetStats::default()),
            log: Mutex::new(CallLog::new(DEFAULT_CALL_LOG_CAPACITY)),
        }
    }

    /// Registers a service under its own name.
    pub fn register(&mut self, service: impl Service + 'static) -> &mut Self {
        self.services
            .insert(service.name().to_string(), Arc::new(service));
        self
    }

    /// Registers a boxed service.
    pub fn register_arc(&mut self, service: Arc<dyn Service>) -> &mut Self {
        self.services.insert(service.name().to_string(), service);
        self
    }

    /// Sets the network profile of one service.
    pub fn set_profile(&mut self, service: &str, profile: NetProfile) -> &mut Self {
        self.profiles.insert(service.to_string(), profile);
        self
    }

    /// Sets the default network profile for services without a specific one.
    pub fn set_default_profile(&mut self, profile: NetProfile) -> &mut Self {
        self.default_profile = profile;
        self
    }

    /// Chooses how providers answer pushed queries.
    pub fn set_push_mode(&mut self, mode: PushMode) -> &mut Self {
        self.push_mode = mode;
        self
    }

    /// Attaches a fault schedule to one service (overrides both the
    /// default profile and any service-attached profile).
    pub fn set_fault_profile(&mut self, service: &str, profile: FaultProfile) -> &mut Self {
        self.fault_profiles.insert(service.to_string(), profile);
        self
    }

    /// Sets the fault schedule for services without a specific one.
    pub fn set_default_fault_profile(&mut self, profile: FaultProfile) -> &mut Self {
        self.default_fault = Some(profile);
        self
    }

    /// Sets the retry policy used by [`Registry::invoke_with_policy`].
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) -> &mut Self {
        self.retry = policy;
        self
    }

    /// The current retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Sets the per-service circuit-breaker configuration.
    pub fn set_breaker_config(&mut self, config: BreakerConfig) -> &mut Self {
        self.breaker_config = config;
        self
    }

    /// The current circuit-breaker configuration.
    pub fn breaker_config(&self) -> BreakerConfig {
        self.breaker_config
    }

    /// Is the named service registered?
    pub fn has_service(&self, name: &str) -> bool {
        self.services.contains_key(name)
    }

    /// Names of all registered services (sorted).
    pub fn service_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.services.keys().cloned().collect();
        v.sort();
        v
    }

    /// Whether a provider is capable of evaluating pushed queries.
    pub fn supports_push(&self, name: &str) -> bool {
        self.services
            .get(name)
            .map(|s| s.supports_push())
            .unwrap_or(false)
    }

    /// Computes the provider's answer and its network cost without
    /// touching statistics: the (possibly pushed-query-reduced) result,
    /// its wire size, whether a query was pushed, and the base cost.
    fn answer(
        &self,
        service: &Arc<dyn Service>,
        name: &str,
        params: &Forest,
        pushed: Option<&PushedQuery>,
    ) -> (Forest, usize, bool, f64) {
        let req = CallRequest {
            params: params.clone(),
        };
        let full = service.invoke(&req);
        let (result, was_pushed) = match pushed {
            Some(pq) if service.supports_push() => {
                let reduced = match self.push_mode {
                    PushMode::PrunedResult => prune_result(&pq.pattern, &full, pq.via),
                    PushMode::Bindings => bindings_result(&pq.pattern, &full, pq.via),
                };
                (reduced, true)
            }
            _ => (full, false),
        };
        let bytes = forest_serialized_len(&result);
        let cost_ms = self.net_profile(name).cost_ms(bytes);
        (result, bytes, was_pushed, cost_ms)
    }

    fn net_profile(&self, name: &str) -> NetProfile {
        self.profiles
            .get(name)
            .copied()
            .unwrap_or(self.default_profile)
    }

    /// The fault schedule governing calls to `name`, if any: an explicit
    /// per-service profile wins, then the registry default, then a
    /// profile attached to the service itself (see
    /// [`crate::fault::FlakyService`]).
    pub fn fault_profile_for(&self, name: &str) -> Option<FaultProfile> {
        self.fault_profiles
            .get(name)
            .copied()
            .or(self.default_fault)
            .or_else(|| {
                self.services
                    .get(name)
                    .and_then(|s| s.fault_profile().copied())
            })
    }

    /// Invokes a service with the given parameters and optional pushed
    /// query, applying the network model and recording statistics.
    ///
    /// This is the single-attempt, fault-free path: it ignores any
    /// configured [`FaultProfile`] and retry policy, preserving the exact
    /// pre-fault cost model. The engine uses
    /// [`Registry::invoke_with_policy`] instead.
    pub fn invoke(
        &self,
        name: &str,
        params: Forest,
        pushed: Option<&PushedQuery>,
    ) -> Result<InvokeOutcome, ServiceError> {
        let service = self
            .services
            .get(name)
            .ok_or_else(|| ServiceError::Unknown(name.to_string()))?;
        let (result, bytes, was_pushed, cost_ms) = self.answer(service, name, &params, pushed);
        self.stats
            .lock()
            .unwrap()
            .record(bytes, cost_ms, was_pushed);
        self.log.lock().unwrap().push(CallRecord {
            service: name.to_string(),
            bytes,
            cost_ms,
            pushed: was_pushed,
            attempts: 1,
            ok: true,
        });
        Ok(InvokeOutcome {
            result,
            bytes,
            cost_ms,
            pushed: was_pushed,
            attempts: 1,
        })
    }

    /// Invokes a service under the configured fault schedule and retry
    /// policy: attempts are driven by the deterministic [`FaultProfile`]
    /// for the call site, failed attempts and exponential backoff are
    /// charged to the returned simulated cost, and a per-attempt deadline
    /// turns hangs and pathological slowdowns into timeouts.
    ///
    /// On success, `cost_ms` in the outcome covers the *whole* call —
    /// failed attempts, backoff, and the final transfer — so callers
    /// charge their clock exactly once. On [`InvokeError::Failed`], the
    /// burned cost is reported in the error and must still be charged.
    ///
    /// Every fault decision is a pure function of (profile seed, service
    /// name, parameter fingerprint, attempt index), so concurrent callers
    /// observe identical schedules regardless of interleaving.
    pub fn invoke_with_policy(
        &self,
        name: &str,
        params: Forest,
        pushed: Option<&PushedQuery>,
    ) -> Result<InvokeOutcome, InvokeError> {
        self.invoke_budgeted(name, params, pushed, f64::INFINITY, 0)
    }

    /// [`Registry::invoke_with_policy`] under an end-to-end deadline: at
    /// most `budget_ms` of simulated cost may be burned by this call.
    /// Backoff pauses and per-attempt timeouts are clipped to the
    /// remaining budget, and once the budget is gone no further attempt
    /// starts — the call fails with
    /// [`FailedCall::deadline_exceeded`]` == true` and exactly `budget_ms`
    /// burned. An infinite budget is identical to `invoke_with_policy`.
    pub fn invoke_within(
        &self,
        name: &str,
        params: Forest,
        pushed: Option<&PushedQuery>,
        budget_ms: f64,
    ) -> Result<InvokeOutcome, InvokeError> {
        self.invoke_budgeted(name, params, pushed, budget_ms, 0)
    }

    /// The hedge leg of a hedged invocation: same call, same budget
    /// semantics as [`Registry::invoke_within`], but the fault-schedule
    /// fingerprint is salted so the duplicate draws an *independent*
    /// deterministic fate — the point of hedging is that the duplicate may
    /// dodge the tail the primary hit.
    pub fn invoke_hedge(
        &self,
        name: &str,
        params: Forest,
        pushed: Option<&PushedQuery>,
        budget_ms: f64,
    ) -> Result<InvokeOutcome, InvokeError> {
        self.invoke_budgeted(name, params, pushed, budget_ms, SALT_HEDGE)
    }

    fn invoke_budgeted(
        &self,
        name: &str,
        params: Forest,
        pushed: Option<&PushedQuery>,
        budget_ms: f64,
        fp_salt: u64,
    ) -> Result<InvokeOutcome, InvokeError> {
        let service = self
            .services
            .get(name)
            .ok_or_else(|| InvokeError::Unknown(name.to_string()))?;
        if budget_ms <= 0.0 {
            // already expired: nothing is attempted and nothing burned
            // (the engine's deadline gate normally prevents this dispatch)
            self.stats.lock().unwrap().record_failed_call();
            self.log.lock().unwrap().push(CallRecord {
                service: name.to_string(),
                bytes: 0,
                cost_ms: 0.0,
                pushed: false,
                attempts: 0,
                ok: false,
            });
            return Err(InvokeError::Failed(FailedCall {
                service: name.to_string(),
                attempts: 0,
                cost_ms: 0.0,
                timed_out: false,
                deadline_exceeded: true,
            }));
        }
        let fault = self.fault_profile_for(name);
        let fault_active = fault.map(|f| !f.is_inert()).unwrap_or(false);
        if !fault_active {
            if budget_ms.is_infinite() {
                // fast path: identical to the fault-free model
                return self
                    .invoke(name, params, pushed)
                    .map_err(|ServiceError::Unknown(n)| InvokeError::Unknown(n));
            }
            // fault-free but deadline-bounded: the single attempt either
            // fits the budget or burns the whole of it
            let (result, bytes, was_pushed, cost_ms) = self.answer(service, name, &params, pushed);
            if cost_ms <= budget_ms {
                self.stats
                    .lock()
                    .unwrap()
                    .record(bytes, cost_ms, was_pushed);
                self.log.lock().unwrap().push(CallRecord {
                    service: name.to_string(),
                    bytes,
                    cost_ms,
                    pushed: was_pushed,
                    attempts: 1,
                    ok: true,
                });
                return Ok(InvokeOutcome {
                    result,
                    bytes,
                    cost_ms,
                    pushed: was_pushed,
                    attempts: 1,
                });
            }
            self.stats
                .lock()
                .unwrap()
                .record_failed_attempt(budget_ms, true);
            self.stats.lock().unwrap().record_failed_call();
            self.log.lock().unwrap().push(CallRecord {
                service: name.to_string(),
                bytes: 0,
                cost_ms: budget_ms,
                pushed: false,
                attempts: 1,
                ok: false,
            });
            return Err(InvokeError::Failed(FailedCall {
                service: name.to_string(),
                attempts: 1,
                cost_ms: budget_ms,
                timed_out: true,
                deadline_exceeded: true,
            }));
        }
        let fault = fault.expect("fault_active implies a profile");
        let policy = self.retry;
        let net = self.net_profile(name);
        let fingerprint = fnv64(to_xml(&params).as_bytes()) ^ fp_salt;
        // deterministic services: the answer is computed at most once and
        // reused across attempts
        let mut answer: Option<(Forest, usize, bool, f64)> = None;
        let mut total_cost = 0.0;
        let mut timed_out = false;
        let mut deadline_exceeded = false;
        let mut attempts_made = 0usize;
        let attempts_allowed = policy.max_retries + 1;
        for attempt in 0..attempts_allowed {
            if attempt > 0 {
                let pause = policy.backoff_within(attempt - 1, budget_ms - total_cost);
                total_cost += pause;
                self.stats.lock().unwrap().record_backoff(pause);
                if total_cost >= budget_ms {
                    // the deadline expired while backing off: the retry
                    // never starts
                    deadline_exceeded = true;
                    break;
                }
            }
            attempts_made = attempt + 1;
            // the per-attempt timeout never outlives the remaining budget
            let attempt_timeout = policy.timeout_ms.min(budget_ms - total_cost);
            match fault.decide(name, fingerprint, attempt) {
                FaultDecision::Fail => {
                    let cost = net.latency_ms.min(attempt_timeout);
                    total_cost += cost;
                    timed_out = false;
                    self.stats
                        .lock()
                        .unwrap()
                        .record_failed_attempt(cost, false);
                }
                FaultDecision::Timeout => {
                    // with no deadline configured an unbounded hang would
                    // never terminate, so it degrades to a fast failure
                    let cost = if attempt_timeout.is_finite() {
                        attempt_timeout
                    } else {
                        net.latency_ms
                    };
                    total_cost += cost;
                    timed_out = attempt_timeout.is_finite();
                    self.stats
                        .lock()
                        .unwrap()
                        .record_failed_attempt(cost, timed_out);
                }
                healthy_or_slow => {
                    let factor = match healthy_or_slow {
                        FaultDecision::Slow(f) => f,
                        _ => 1.0,
                    };
                    let (result, bytes, was_pushed, base_cost) = answer
                        .get_or_insert_with(|| self.answer(service, name, &params, pushed))
                        .clone();
                    let cost = base_cost * factor;
                    if cost > attempt_timeout {
                        // the slowdown ran past the deadline
                        total_cost += attempt_timeout;
                        timed_out = true;
                        self.stats
                            .lock()
                            .unwrap()
                            .record_failed_attempt(attempt_timeout, true);
                    } else {
                        total_cost += cost;
                        self.stats.lock().unwrap().record(bytes, cost, was_pushed);
                        self.log.lock().unwrap().push(CallRecord {
                            service: name.to_string(),
                            bytes,
                            cost_ms: total_cost,
                            pushed: was_pushed,
                            attempts: attempt + 1,
                            ok: true,
                        });
                        return Ok(InvokeOutcome {
                            result,
                            bytes,
                            cost_ms: total_cost,
                            pushed: was_pushed,
                            attempts: attempt + 1,
                        });
                    }
                }
            }
            if total_cost >= budget_ms {
                // the failed attempt consumed the rest of the budget
                deadline_exceeded = true;
                break;
            }
        }
        self.stats.lock().unwrap().record_failed_call();
        self.log.lock().unwrap().push(CallRecord {
            service: name.to_string(),
            bytes: 0,
            cost_ms: total_cost,
            pushed: false,
            attempts: attempts_made,
            ok: false,
        });
        Err(InvokeError::Failed(FailedCall {
            service: name.to_string(),
            attempts: attempts_made,
            cost_ms: total_cost,
            timed_out,
            deadline_exceeded,
        }))
    }

    /// Whether the circuit breaker currently lets calls through to
    /// `service` at simulated time `now_ms`. An open breaker whose
    /// cooldown has expired lets one probe call through (half-open).
    pub fn breaker_allows(&self, service: &str, now_ms: f64) -> bool {
        let breakers = self.breakers.lock().unwrap();
        match breakers.get(service) {
            Some(state) => now_ms >= state.open_until_ms,
            None => true,
        }
    }

    /// Records the outcome of a completed call for the circuit breaker.
    /// Callers invoke this from a deterministic (sequential) phase so the
    /// breaker state evolution is independent of thread interleaving.
    pub fn breaker_record(&self, service: &str, ok: bool, now_ms: f64) {
        let mut breakers = self.breakers.lock().unwrap();
        let state = breakers.entry(service.to_string()).or_default();
        if ok {
            state.consecutive_failures = 0;
            state.open_until_ms = 0.0;
        } else {
            state.consecutive_failures += 1;
            if state.consecutive_failures >= self.breaker_config.failure_threshold {
                state.open_until_ms = now_ms + self.breaker_config.cooldown_ms;
                state.trips += 1;
                // half-open: after the cooldown one probe call is let
                // through; a further failure re-opens from this count
                state.consecutive_failures = self.breaker_config.failure_threshold - 1;
            }
        }
    }

    /// Counts a call the caller skipped because the breaker was open.
    pub fn record_breaker_skip(&self) {
        self.stats.lock().unwrap().record_breaker_skip();
    }

    /// Feeds one observed call cost into the per-service latency EWMA.
    /// Like [`Registry::breaker_record`], callers invoke this from a
    /// deterministic (sequential) phase so the estimate's evolution is
    /// independent of thread interleaving.
    pub fn latency_observe(&self, service: &str, cost_ms: f64) {
        let mut latency = self.latency.lock().unwrap();
        match latency.get_mut(service) {
            Some(est) => *est += LATENCY_EWMA_ALPHA * (cost_ms - *est),
            None => {
                latency.insert(service.to_string(), cost_ms);
            }
        }
    }

    /// The current latency EWMA of one service, in simulated ms
    /// (`None` before the first observation).
    pub fn latency_ewma(&self, service: &str) -> Option<f64> {
        self.latency.lock().unwrap().get(service).copied()
    }

    /// Breaker bookkeeping for one service, if any calls completed.
    pub fn breaker_state(&self, service: &str) -> Option<BreakerState> {
        self.breakers.lock().unwrap().get(service).copied()
    }

    /// A snapshot of the aggregate statistics.
    pub fn stats(&self) -> NetStats {
        self.stats.lock().unwrap().clone()
    }

    /// A snapshot of the call log (the most recent records, bounded by
    /// [`Registry::set_call_log_capacity`]).
    pub fn call_log(&self) -> Vec<CallRecord> {
        self.log.lock().unwrap().entries.iter().cloned().collect()
    }

    /// Bounds the call log to the most recent `capacity` records
    /// (default: [`DEFAULT_CALL_LOG_CAPACITY`]). Older records are dropped
    /// and counted in [`Registry::dropped_log_entries`], so long-lived
    /// store sessions don't grow memory without bound. Shrinking the
    /// capacity trims existing excess immediately.
    pub fn set_call_log_capacity(&mut self, capacity: usize) -> &mut Self {
        let mut log = self.log.lock().unwrap();
        log.capacity = capacity;
        while log.entries.len() > capacity {
            log.entries.pop_front();
            log.dropped += 1;
        }
        drop(log);
        self
    }

    /// Call records dropped from the bounded log since the last
    /// [`Registry::reset_stats`].
    pub fn dropped_log_entries(&self) -> u64 {
        self.log.lock().unwrap().dropped
    }

    /// Clears statistics, the call log, and all circuit-breaker state, so
    /// a reused registry starts its next run from a clean slate instead of
    /// with breakers already open from the previous one.
    pub fn reset_stats(&self) {
        *self.stats.lock().unwrap() = NetStats::default();
        let mut log = self.log.lock().unwrap();
        log.entries.clear();
        log.dropped = 0;
        drop(log);
        self.reset_breakers();
        self.latency.lock().unwrap().clear();
    }

    /// Clears circuit-breaker state only (all breakers closed, failure
    /// counts zeroed).
    pub fn reset_breakers(&self) {
        self.breakers.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{PushedQuery, StaticService, TableService};
    use axml_query::{parse_query, EdgeKind};
    use axml_xml::parse;

    fn registry() -> Registry {
        let mut r = Registry::new();
        r.register(StaticService::new(
            "getNearbyRestos",
            parse(
                "<restaurant><name>Jo</name><rating>*****</rating></restaurant>\
                 <restaurant><name>Grease</name><rating>*</rating></restaurant>",
            )
            .unwrap(),
        ));
        r
    }

    #[test]
    fn invoke_records_stats_and_log() {
        let r = registry();
        let out = r.invoke("getNearbyRestos", Forest::new(), None).unwrap();
        assert_eq!(out.result.roots().len(), 2);
        assert!(out.bytes > 0);
        let s = r.stats();
        assert_eq!(s.calls, 1);
        assert_eq!(s.bytes, out.bytes);
        assert_eq!(r.call_log().len(), 1);
        r.reset_stats();
        assert_eq!(r.stats().calls, 0);
    }

    #[test]
    fn unknown_service_is_an_error() {
        let r = registry();
        let e = r.invoke("nope", Forest::new(), None).unwrap_err();
        assert_eq!(e, ServiceError::Unknown("nope".into()));
    }

    #[test]
    fn pushed_queries_shrink_transfer() {
        let r = registry();
        let full = r.invoke("getNearbyRestos", Forest::new(), None).unwrap();
        let q = parse_query("/restaurant[rating=\"*****\"]/name").unwrap();
        let pushed = r
            .invoke(
                "getNearbyRestos",
                Forest::new(),
                Some(&PushedQuery {
                    pattern: q,
                    via: EdgeKind::Child,
                }),
            )
            .unwrap();
        assert!(pushed.pushed);
        assert!(pushed.bytes < full.bytes);
        assert!(axml_xml::to_xml(&pushed.result).contains("Jo"));
        assert!(!axml_xml::to_xml(&pushed.result).contains("Grease"));
        assert_eq!(r.stats().pushed_calls, 1);
    }

    #[test]
    fn push_incapable_provider_gets_plain_call() {
        let mut r = Registry::new();
        let mut t = TableService::new("t");
        t.insert("k", parse("<a/><b/>").unwrap());
        r.register(t.without_push());
        let mut params = Forest::new();
        params.add_root_text("k");
        let q = parse_query("/a").unwrap();
        let out = r
            .invoke(
                "t",
                params,
                Some(&PushedQuery {
                    pattern: q,
                    via: EdgeKind::Child,
                }),
            )
            .unwrap();
        assert!(!out.pushed);
        assert_eq!(out.result.roots().len(), 2); // unpruned
    }

    #[test]
    fn policy_path_without_faults_matches_plain_invoke() {
        let r = registry();
        let plain = r.invoke("getNearbyRestos", Forest::new(), None).unwrap();
        r.reset_stats();
        let policy = r
            .invoke_with_policy("getNearbyRestos", Forest::new(), None)
            .unwrap();
        assert_eq!(policy.bytes, plain.bytes);
        assert_eq!(policy.cost_ms, plain.cost_ms);
        assert_eq!(policy.attempts, 1);
        let s = r.stats();
        assert_eq!(s.calls, 1);
        assert_eq!(s.attempts, 1);
        assert_eq!(s.failed_attempts, 0);
    }

    #[test]
    fn transient_faults_are_absorbed_by_retries() {
        let mut r = registry();
        r.set_profile("getNearbyRestos", NetProfile::latency(10.0));
        r.set_default_fault_profile(FaultProfile::transient(1, 2));
        r.set_retry_policy(RetryPolicy {
            max_retries: 3,
            base_backoff_ms: 5.0,
            backoff_factor: 2.0,
            timeout_ms: f64::INFINITY,
        });
        let out = r
            .invoke_with_policy("getNearbyRestos", Forest::new(), None)
            .unwrap();
        assert_eq!(out.attempts, 3);
        // 2 failed attempts at latency 10 + backoffs 5 and 10 + final 10
        assert!((out.cost_ms - (10.0 + 5.0 + 10.0 + 10.0 + 10.0)).abs() < 1e-9);
        let s = r.stats();
        assert_eq!(s.calls, 1);
        assert_eq!(s.attempts, 3);
        assert_eq!(s.failed_attempts, 2);
        assert_eq!(s.failed_calls, 0);
        assert!((s.backoff_ms - 15.0).abs() < 1e-9);
        assert!((s.total_cost_ms - out.cost_ms).abs() < 1e-9);
    }

    #[test]
    fn permanent_faults_exhaust_retries() {
        let mut r = registry();
        r.set_profile("getNearbyRestos", NetProfile::latency(10.0));
        r.set_fault_profile("getNearbyRestos", FaultProfile::permanent(1));
        r.set_retry_policy(RetryPolicy {
            max_retries: 2,
            base_backoff_ms: 1.0,
            backoff_factor: 1.0,
            timeout_ms: f64::INFINITY,
        });
        let err = r
            .invoke_with_policy("getNearbyRestos", Forest::new(), None)
            .unwrap_err();
        let InvokeError::Failed(failed) = err else {
            panic!("expected Failed");
        };
        assert_eq!(failed.attempts, 3);
        assert!(!failed.timed_out);
        assert!((failed.cost_ms - (10.0 * 3.0 + 1.0 * 2.0)).abs() < 1e-9);
        let s = r.stats();
        assert_eq!(s.calls, 0);
        assert_eq!(s.failed_calls, 1);
        assert_eq!(s.failed_attempts, 3);
        let log = r.call_log();
        assert_eq!(log.len(), 1);
        assert!(!log[0].ok);
        assert_eq!(log[0].bytes, 0);
    }

    #[test]
    fn timeouts_burn_the_deadline() {
        let mut r = registry();
        r.set_profile("getNearbyRestos", NetProfile::latency(10.0));
        r.set_fault_profile("getNearbyRestos", FaultProfile::timeouts(1));
        r.set_retry_policy(RetryPolicy {
            max_retries: 1,
            base_backoff_ms: 0.0,
            backoff_factor: 1.0,
            timeout_ms: 500.0,
        });
        let err = r
            .invoke_with_policy("getNearbyRestos", Forest::new(), None)
            .unwrap_err();
        let InvokeError::Failed(failed) = err else {
            panic!("expected Failed");
        };
        assert!(failed.timed_out);
        assert!((failed.cost_ms - 1000.0).abs() < 1e-9);
        assert_eq!(r.stats().timed_out_attempts, 2);
    }

    #[test]
    fn slowdowns_past_the_deadline_time_out() {
        let mut r = registry();
        r.set_profile("getNearbyRestos", NetProfile::latency(100.0));
        r.set_fault_profile(
            "getNearbyRestos",
            FaultProfile {
                seed: 1,
                fail_prob: 0.0,
                transient_failures: 0,
                timeout_prob: 0.0,
                slowdown_prob: 1.0,
                slowdown_factor: 10.0,
            },
        );
        // deadline sits between the normal and the slowed cost
        r.set_retry_policy(RetryPolicy {
            max_retries: 0,
            base_backoff_ms: 0.0,
            backoff_factor: 1.0,
            timeout_ms: 300.0,
        });
        let err = r
            .invoke_with_policy("getNearbyRestos", Forest::new(), None)
            .unwrap_err();
        let InvokeError::Failed(failed) = err else {
            panic!("expected Failed");
        };
        assert!(failed.timed_out);
        assert!((failed.cost_ms - 300.0).abs() < 1e-9);
    }

    #[test]
    fn flaky_service_profile_applies_when_nothing_configured() {
        let mut r = Registry::new();
        r.register(crate::fault::FlakyService::new(
            StaticService::new("s", axml_xml::parse("<a/>").unwrap()),
            FaultProfile::permanent(5),
        ));
        r.set_retry_policy(RetryPolicy::none());
        assert!(r.invoke_with_policy("s", Forest::new(), None).is_err());
        // an explicit per-service profile overrides the attached one
        r.set_fault_profile("s", FaultProfile::none());
        assert!(r.invoke_with_policy("s", Forest::new(), None).is_ok());
    }

    #[test]
    fn policy_invoke_is_deterministic() {
        let run = || {
            let mut r = registry();
            r.set_profile("getNearbyRestos", NetProfile::default());
            r.set_default_fault_profile(FaultProfile::chaos(99, 0.9));
            r.set_retry_policy(RetryPolicy::default().with_timeout_ms(2_000.0));
            let out = r.invoke_with_policy("getNearbyRestos", Forest::new(), None);
            (out.map(|o| (o.bytes, o.cost_ms, o.attempts)), r.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn infinite_budget_matches_invoke_with_policy() {
        let run = |budget: bool| {
            let mut r = registry();
            r.set_profile("getNearbyRestos", NetProfile::default());
            r.set_default_fault_profile(FaultProfile::chaos(99, 0.9));
            r.set_retry_policy(RetryPolicy::default().with_timeout_ms(2_000.0));
            let out = if budget {
                r.invoke_within("getNearbyRestos", Forest::new(), None, f64::INFINITY)
            } else {
                r.invoke_with_policy("getNearbyRestos", Forest::new(), None)
            };
            (out.map(|o| (o.bytes, o.cost_ms, o.attempts)), r.stats())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn deadline_expires_during_backoff() {
        let mut r = registry();
        r.set_profile("getNearbyRestos", NetProfile::latency(10.0));
        r.set_fault_profile("getNearbyRestos", FaultProfile::permanent(1));
        r.set_retry_policy(RetryPolicy {
            max_retries: 3,
            base_backoff_ms: 25.0,
            backoff_factor: 2.0,
            timeout_ms: f64::INFINITY,
        });
        // attempt 0 burns 10, backoff 0 would burn 25 — budget 20 dies
        // mid-backoff, so only one attempt ever runs
        let err = r
            .invoke_within("getNearbyRestos", Forest::new(), None, 20.0)
            .unwrap_err();
        let InvokeError::Failed(failed) = err else {
            panic!("expected Failed");
        };
        assert!(failed.deadline_exceeded);
        assert_eq!(failed.attempts, 1);
        assert!((failed.cost_ms - 20.0).abs() < 1e-9, "{}", failed.cost_ms);
        assert_eq!(r.stats().failed_attempts, 1);
        assert!((r.stats().backoff_ms - 10.0).abs() < 1e-9);
    }

    #[test]
    fn deadline_clips_the_final_attempt() {
        let mut r = registry();
        r.set_profile("getNearbyRestos", NetProfile::latency(10.0));
        r.set_fault_profile("getNearbyRestos", FaultProfile::timeouts(1));
        r.set_retry_policy(RetryPolicy {
            max_retries: 0,
            base_backoff_ms: 0.0,
            backoff_factor: 1.0,
            timeout_ms: f64::INFINITY,
        });
        // no per-attempt timeout, but the budget bounds the hang at 7ms
        let err = r
            .invoke_within("getNearbyRestos", Forest::new(), None, 7.0)
            .unwrap_err();
        let InvokeError::Failed(failed) = err else {
            panic!("expected Failed");
        };
        assert!(failed.deadline_exceeded);
        assert!(failed.timed_out);
        assert!((failed.cost_ms - 7.0).abs() < 1e-9);
    }

    #[test]
    fn fault_free_call_past_its_budget_fails_deadline() {
        let mut r = registry();
        r.set_profile("getNearbyRestos", NetProfile::latency(10.0));
        let err = r
            .invoke_within("getNearbyRestos", Forest::new(), None, 4.0)
            .unwrap_err();
        let InvokeError::Failed(failed) = err else {
            panic!("expected Failed");
        };
        assert!(failed.deadline_exceeded);
        assert!(failed.timed_out);
        assert_eq!(failed.attempts, 1);
        assert!((failed.cost_ms - 4.0).abs() < 1e-9);
        // a roomy budget succeeds without behavioral change
        r.reset_stats();
        let ok = r
            .invoke_within("getNearbyRestos", Forest::new(), None, 100.0)
            .unwrap();
        assert_eq!(ok.cost_ms, 10.0);
    }

    #[test]
    fn exhausted_budget_attempts_nothing() {
        let r = registry();
        let err = r
            .invoke_within("getNearbyRestos", Forest::new(), None, 0.0)
            .unwrap_err();
        let InvokeError::Failed(failed) = err else {
            panic!("expected Failed");
        };
        assert!(failed.deadline_exceeded);
        assert_eq!(failed.attempts, 0);
        assert_eq!(failed.cost_ms, 0.0);
        assert_eq!(r.stats().attempts, 0);
    }

    #[test]
    fn hedge_legs_draw_an_independent_fault_schedule() {
        let mut r = registry();
        r.set_profile("getNearbyRestos", NetProfile::latency(10.0));
        // the primary site is permanently down; the hedge leg's salted
        // fingerprint dodges it for some seed — find one deterministically
        let hedged_survives = (0u64..64).any(|seed| {
            r.set_fault_profile(
                "getNearbyRestos",
                FaultProfile {
                    seed,
                    fail_prob: 0.5,
                    transient_failures: usize::MAX,
                    ..FaultProfile::none()
                },
            );
            r.set_retry_policy(RetryPolicy::none());
            let primary = r.invoke_with_policy("getNearbyRestos", Forest::new(), None);
            let hedge = r.invoke_hedge("getNearbyRestos", Forest::new(), None, f64::INFINITY);
            primary.is_err() && hedge.is_ok()
        });
        assert!(hedged_survives, "some seed lets the hedge dodge the fault");
    }

    #[test]
    fn latency_ewma_tracks_observations() {
        let r = registry();
        assert_eq!(r.latency_ewma("s"), None);
        r.latency_observe("s", 100.0);
        assert_eq!(r.latency_ewma("s"), Some(100.0));
        r.latency_observe("s", 0.0);
        assert!((r.latency_ewma("s").unwrap() - 70.0).abs() < 1e-9);
        r.reset_stats();
        assert_eq!(r.latency_ewma("s"), None);
    }

    #[test]
    fn breaker_opens_after_consecutive_failures_and_cools_down() {
        let mut r = registry();
        r.set_breaker_config(BreakerConfig {
            failure_threshold: 2,
            cooldown_ms: 100.0,
        });
        assert!(r.breaker_allows("s", 0.0));
        r.breaker_record("s", false, 10.0);
        assert!(r.breaker_allows("s", 10.0));
        r.breaker_record("s", false, 20.0);
        // open until 120
        assert!(!r.breaker_allows("s", 50.0));
        assert!(r.breaker_allows("s", 120.0)); // half-open probe
        let state = r.breaker_state("s").unwrap();
        assert_eq!(state.trips, 1);
        // probe failure re-opens immediately
        r.breaker_record("s", false, 130.0);
        assert!(!r.breaker_allows("s", 131.0));
        // probe success fully closes
        r.breaker_record("s", true, 300.0);
        assert!(r.breaker_allows("s", 300.0));
        assert_eq!(r.breaker_state("s").unwrap().consecutive_failures, 0);
    }

    #[test]
    fn reset_stats_clears_breaker_state() {
        let mut r = registry();
        r.set_breaker_config(BreakerConfig {
            failure_threshold: 2,
            cooldown_ms: 1_000.0,
        });
        r.breaker_record("getNearbyRestos", false, 10.0);
        r.breaker_record("getNearbyRestos", false, 20.0);
        assert!(!r.breaker_allows("getNearbyRestos", 30.0), "breaker open");
        // a reused registry must start its next run with breakers closed
        r.reset_stats();
        assert!(r.breaker_allows("getNearbyRestos", 30.0));
        assert!(r.breaker_state("getNearbyRestos").is_none());
        assert_eq!(r.stats().calls, 0);
    }

    #[test]
    fn call_log_is_a_bounded_ring_buffer() {
        let mut r = registry();
        r.set_call_log_capacity(3);
        for _ in 0..5 {
            r.invoke("getNearbyRestos", Forest::new(), None).unwrap();
        }
        assert_eq!(r.call_log().len(), 3);
        assert_eq!(r.dropped_log_entries(), 2);
        // stats are unaffected by log truncation
        assert_eq!(r.stats().calls, 5);
        // shrinking trims immediately
        r.set_call_log_capacity(1);
        assert_eq!(r.call_log().len(), 1);
        assert_eq!(r.dropped_log_entries(), 4);
        r.reset_stats();
        assert_eq!(r.call_log().len(), 0);
        assert_eq!(r.dropped_log_entries(), 0);
    }

    #[test]
    fn network_profile_drives_cost() {
        let mut r = registry();
        r.set_profile("getNearbyRestos", NetProfile::latency(250.0));
        let out = r.invoke("getNearbyRestos", Forest::new(), None).unwrap();
        assert_eq!(out.cost_ms, 250.0);
        r.set_profile(
            "getNearbyRestos",
            NetProfile {
                latency_ms: 10.0,
                bytes_per_ms: 1.0,
            },
        );
        let out2 = r.invoke("getNearbyRestos", Forest::new(), None).unwrap();
        assert!((out2.cost_ms - (10.0 + out2.bytes as f64)).abs() < 1e-9);
    }
}
