//! The service registry — the engine's gateway to "the Web".
//!
//! Dispatches invocations to registered services, applies the per-service
//! network profile to compute simulated costs, plays the provider's side of
//! pushed queries (Section 7), and records traffic statistics.

use crate::net::{NetProfile, NetStats};
use crate::push::{bindings_result, prune_result, PushMode};
use crate::service::{CallRequest, PushedQuery, Service};
use axml_xml::{forest_serialized_len, Forest};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Failure to dispatch a call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// No service registered under that name.
    Unknown(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Unknown(n) => write!(f, "unknown service {n:?}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Everything the engine learns from one invocation.
#[derive(Clone, Debug)]
pub struct InvokeOutcome {
    /// The (possibly provider-side pruned) result forest.
    pub result: Forest,
    /// Result bytes on the wire.
    pub bytes: usize,
    /// Simulated cost of this call.
    pub cost_ms: f64,
    /// Whether a pushed query was evaluated by the provider.
    pub pushed: bool,
}

/// One line of the registry's call log.
#[derive(Clone, Debug)]
pub struct CallRecord {
    /// Service name.
    pub service: String,
    /// Result bytes.
    pub bytes: usize,
    /// Simulated cost.
    pub cost_ms: f64,
    /// Whether the provider evaluated a pushed query.
    pub pushed: bool,
}

/// A registry of services with network profiles and statistics.
pub struct Registry {
    services: HashMap<String, Arc<dyn Service>>,
    profiles: HashMap<String, NetProfile>,
    default_profile: NetProfile,
    push_mode: PushMode,
    stats: Mutex<NetStats>,
    log: Mutex<Vec<CallRecord>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry with a free network.
    pub fn new() -> Self {
        Registry {
            services: HashMap::new(),
            profiles: HashMap::new(),
            default_profile: NetProfile::free(),
            push_mode: PushMode::PrunedResult,
            stats: Mutex::new(NetStats::default()),
            log: Mutex::new(Vec::new()),
        }
    }

    /// Registers a service under its own name.
    pub fn register(&mut self, service: impl Service + 'static) -> &mut Self {
        self.services
            .insert(service.name().to_string(), Arc::new(service));
        self
    }

    /// Registers a boxed service.
    pub fn register_arc(&mut self, service: Arc<dyn Service>) -> &mut Self {
        self.services.insert(service.name().to_string(), service);
        self
    }

    /// Sets the network profile of one service.
    pub fn set_profile(&mut self, service: &str, profile: NetProfile) -> &mut Self {
        self.profiles.insert(service.to_string(), profile);
        self
    }

    /// Sets the default network profile for services without a specific one.
    pub fn set_default_profile(&mut self, profile: NetProfile) -> &mut Self {
        self.default_profile = profile;
        self
    }

    /// Chooses how providers answer pushed queries.
    pub fn set_push_mode(&mut self, mode: PushMode) -> &mut Self {
        self.push_mode = mode;
        self
    }

    /// Is the named service registered?
    pub fn has_service(&self, name: &str) -> bool {
        self.services.contains_key(name)
    }

    /// Names of all registered services (sorted).
    pub fn service_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.services.keys().cloned().collect();
        v.sort();
        v
    }

    /// Whether a provider is capable of evaluating pushed queries.
    pub fn supports_push(&self, name: &str) -> bool {
        self.services
            .get(name)
            .map(|s| s.supports_push())
            .unwrap_or(false)
    }

    /// Invokes a service with the given parameters and optional pushed
    /// query, applying the network model and recording statistics.
    pub fn invoke(
        &self,
        name: &str,
        params: Forest,
        pushed: Option<&PushedQuery>,
    ) -> Result<InvokeOutcome, ServiceError> {
        let service = self
            .services
            .get(name)
            .ok_or_else(|| ServiceError::Unknown(name.to_string()))?;
        let req = CallRequest { params };
        let full = service.invoke(&req);
        let (result, was_pushed) = match pushed {
            Some(pq) if service.supports_push() => {
                let reduced = match self.push_mode {
                    PushMode::PrunedResult => prune_result(&pq.pattern, &full, pq.via),
                    PushMode::Bindings => bindings_result(&pq.pattern, &full, pq.via),
                };
                (reduced, true)
            }
            _ => (full, false),
        };
        let bytes = forest_serialized_len(&result);
        let profile = self
            .profiles
            .get(name)
            .copied()
            .unwrap_or(self.default_profile);
        let cost_ms = profile.cost_ms(bytes);
        self.stats
            .lock()
            .unwrap()
            .record(bytes, cost_ms, was_pushed);
        self.log.lock().unwrap().push(CallRecord {
            service: name.to_string(),
            bytes,
            cost_ms,
            pushed: was_pushed,
        });
        Ok(InvokeOutcome {
            result,
            bytes,
            cost_ms,
            pushed: was_pushed,
        })
    }

    /// A snapshot of the aggregate statistics.
    pub fn stats(&self) -> NetStats {
        self.stats.lock().unwrap().clone()
    }

    /// A snapshot of the call log.
    pub fn call_log(&self) -> Vec<CallRecord> {
        self.log.lock().unwrap().clone()
    }

    /// Clears statistics and the call log.
    pub fn reset_stats(&self) {
        *self.stats.lock().unwrap() = NetStats::default();
        self.log.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{PushedQuery, StaticService, TableService};
    use axml_query::{parse_query, EdgeKind};
    use axml_xml::parse;

    fn registry() -> Registry {
        let mut r = Registry::new();
        r.register(StaticService::new(
            "getNearbyRestos",
            parse(
                "<restaurant><name>Jo</name><rating>*****</rating></restaurant>\
                 <restaurant><name>Grease</name><rating>*</rating></restaurant>",
            )
            .unwrap(),
        ));
        r
    }

    #[test]
    fn invoke_records_stats_and_log() {
        let r = registry();
        let out = r.invoke("getNearbyRestos", Forest::new(), None).unwrap();
        assert_eq!(out.result.roots().len(), 2);
        assert!(out.bytes > 0);
        let s = r.stats();
        assert_eq!(s.calls, 1);
        assert_eq!(s.bytes, out.bytes);
        assert_eq!(r.call_log().len(), 1);
        r.reset_stats();
        assert_eq!(r.stats().calls, 0);
    }

    #[test]
    fn unknown_service_is_an_error() {
        let r = registry();
        let e = r.invoke("nope", Forest::new(), None).unwrap_err();
        assert_eq!(e, ServiceError::Unknown("nope".into()));
    }

    #[test]
    fn pushed_queries_shrink_transfer() {
        let r = registry();
        let full = r.invoke("getNearbyRestos", Forest::new(), None).unwrap();
        let q = parse_query("/restaurant[rating=\"*****\"]/name").unwrap();
        let pushed = r
            .invoke(
                "getNearbyRestos",
                Forest::new(),
                Some(&PushedQuery {
                    pattern: q,
                    via: EdgeKind::Child,
                }),
            )
            .unwrap();
        assert!(pushed.pushed);
        assert!(pushed.bytes < full.bytes);
        assert!(axml_xml::to_xml(&pushed.result).contains("Jo"));
        assert!(!axml_xml::to_xml(&pushed.result).contains("Grease"));
        assert_eq!(r.stats().pushed_calls, 1);
    }

    #[test]
    fn push_incapable_provider_gets_plain_call() {
        let mut r = Registry::new();
        let mut t = TableService::new("t");
        t.insert("k", parse("<a/><b/>").unwrap());
        r.register(t.without_push());
        let mut params = Forest::new();
        params.add_root_text("k");
        let q = parse_query("/a").unwrap();
        let out = r
            .invoke(
                "t",
                params,
                Some(&PushedQuery {
                    pattern: q,
                    via: EdgeKind::Child,
                }),
            )
            .unwrap();
        assert!(!out.pushed);
        assert_eq!(out.result.roots().len(), 2); // unpruned
    }

    #[test]
    fn network_profile_drives_cost() {
        let mut r = registry();
        r.set_profile("getNearbyRestos", NetProfile::latency(250.0));
        let out = r.invoke("getNearbyRestos", Forest::new(), None).unwrap();
        assert_eq!(out.cost_ms, 250.0);
        r.set_profile(
            "getNearbyRestos",
            NetProfile {
                latency_ms: 10.0,
                bytes_per_ms: 1.0,
            },
        );
        let out2 = r.invoke("getNearbyRestos", Forest::new(), None).unwrap();
        assert!((out2.cost_ms - (10.0 + out2.bytes as f64)).abs() < 1e-9);
    }
}
