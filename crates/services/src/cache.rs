//! The invocation-cache interface — how the engine consults a
//! cross-query call-result cache (the reconstructed direction of the
//! paper's truncated Section 7: "Subsequent queries that use …").
//!
//! The cache itself lives a layer above (crate `axml-store`); this module
//! only defines the contract between the engine's invoke path and any
//! memoization layer. A call is identified by its *service* and its
//! *parameter forest* (plus the pushed query, if any, since a pushed
//! result is pruned for that query and must not be served to another).
//! All freshness decisions are charged to the engine's simulated clock:
//! `now_ms` is the caller's [`crate::SimClock`] time at lookup/store.

use crate::registry::InvokeOutcome;
use crate::service::PushedQuery;
use axml_xml::Forest;

/// A cached invocation result, served in place of a network call.
#[derive(Clone, Debug)]
pub struct CachedCall {
    /// The memoized result forest, exactly as the service returned it
    /// (possibly provider-side pruned when a pushed query was part of the
    /// cache key).
    pub result: Forest,
    /// The wire size the original call transferred (informational — a hit
    /// transfers nothing).
    pub bytes: usize,
    /// Whether the original call carried a pushed query.
    pub pushed: bool,
    /// Simulated milliseconds since the entry was stored.
    pub age_ms: f64,
}

/// The outcome of a cache probe.
// `Hit` carries a whole result forest (its document now also holds the
// symbol table and label index); the value is transient — destructured at
// the probe site — so indirection would only add an allocation per hit.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum CacheLookup {
    /// A valid entry: splice it in at zero network cost.
    Hit(CachedCall),
    /// An entry existed but its validity window has expired; the caller
    /// must fall through to a real invocation (including its retry and
    /// circuit-breaker path).
    Stale,
    /// Nothing cached for this call.
    Miss,
}

/// A memoized call-result cache consulted by the engine before
/// [`crate::Registry::invoke`]-style dispatch.
///
/// Implementations must be internally synchronized (`&self` methods,
/// shared across the engine's sequential phases) and deterministic: given
/// the same sequence of lookups/stores at the same simulated times, two
/// runs must answer identically — eviction order included — so that
/// cached replays stay byte-for-byte reproducible.
pub trait InvokeCache: Send + Sync {
    /// Probes the cache for `(service, params, pushed)` at simulated time
    /// `now_ms`.
    fn lookup(
        &self,
        service: &str,
        params: &Forest,
        pushed: Option<&PushedQuery>,
        now_ms: f64,
    ) -> CacheLookup;

    /// Memoizes a *successful* invocation outcome. Failed calls are never
    /// stored — the cache holds answers, not outages.
    fn store(
        &self,
        service: &str,
        params: &Forest,
        pushed: Option<&PushedQuery>,
        outcome: &InvokeOutcome,
        now_ms: f64,
    );

    /// Notifies the cache that `service`'s circuit-breaker state flipped
    /// (`open == true` when the breaker just tripped open). Implementations
    /// may invalidate the service's entries, or keep serving them within
    /// their validity windows (availability over freshness) — the default
    /// does nothing.
    fn on_breaker_transition(&self, service: &str, open: bool) {
        let _ = (service, open);
    }
}
