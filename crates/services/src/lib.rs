#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # axml-services — the (simulated) Web-service substrate
//!
//! The paper's experiments invoke remote Web services; this crate
//! substitutes a deterministic in-process equivalent that exposes exactly
//! the observables the algorithms depend on: the returned forest, the
//! transfer volume, and the invocation cost (latency + bandwidth) under a
//! simulated clock that lets parallel batches overlap (Section 4.4).
//! Providers also play their Section 7 role: evaluating *pushed queries*
//! and returning pruned results or variable bindings.

//!
//! Services can also fail: the [`fault`] module injects deterministic,
//! seeded failure/timeout/slowdown schedules, and the registry drives
//! retries with exponential backoff, per-attempt deadlines, and a
//! per-service circuit breaker — all charged to the same simulated clock.

pub mod cache;
pub mod fault;
pub mod net;
pub mod push;
pub mod registry;
pub mod service;
pub mod worldfile;

pub use cache::{CacheLookup, CachedCall, InvokeCache};
pub use fault::{
    BreakerConfig, BreakerState, FaultDecision, FaultProfile, FlakyService, RetryPolicy,
};
pub use net::{Deadline, NetProfile, NetStats, SimClock};
pub use push::{bindings_result, prune_result, PushMode};
pub use registry::{
    CallRecord, FailedCall, InvokeError, InvokeOutcome, Registry, ServiceError,
    DEFAULT_CALL_LOG_CAPACITY,
};
pub use service::{CallRequest, FnService, PushedQuery, Service, StaticService, TableService};
pub use worldfile::{load_registry, load_registry_str, WorldFileError};
