//! The service abstraction: what the paper calls a Web service.
//!
//! A service maps a parameter forest to a result forest. Providers may also
//! accept a *pushed query* (Section 7): instead of the full result, only
//! the part useful to the query is returned. The actual pushing logic lives
//! in [`crate::registry::Registry`], which plays the provider's side.

use crate::fault::FaultProfile;
use axml_query::Pattern;
use axml_xml::Forest;

/// A request to a service: the call's parameter subtrees.
#[derive(Clone, Debug, Default)]
pub struct CallRequest {
    /// Deep copies of the parameter subtrees of the function node.
    pub params: Forest,
}

impl CallRequest {
    /// Convenience: the first parameter as a text value, the common shape
    /// for the scenario services (`getRating("75 2nd Av")`).
    pub fn first_text(&self) -> Option<&str> {
        self.params
            .roots()
            .first()
            .and_then(|&r| self.params.text_value(r))
    }
}

/// A Web service implementation.
pub trait Service: Send + Sync {
    /// The service name, as used in `axml:call/@service`.
    fn name(&self) -> &str;

    /// Computes the result forest for a request. The result may itself
    /// contain function nodes (intensional answers).
    fn invoke(&self, req: &CallRequest) -> Forest;

    /// Whether the provider can evaluate pushed queries (Section 7
    /// discusses verifying source capabilities, citing the mediator
    /// literature; incapable providers receive plain calls).
    fn supports_push(&self) -> bool {
        true
    }

    /// A fault schedule carried by the service itself (see
    /// [`crate::fault::FlakyService`]). The registry consults it only when
    /// no explicit per-service or default profile is configured.
    fn fault_profile(&self) -> Option<&FaultProfile> {
        None
    }
}

/// A service returning a fixed forest, regardless of parameters.
pub struct StaticService {
    name: String,
    result: Forest,
}

impl StaticService {
    /// Creates the service.
    pub fn new(name: impl Into<String>, result: Forest) -> Self {
        StaticService {
            name: name.into(),
            result,
        }
    }
}

impl Service for StaticService {
    fn name(&self) -> &str {
        &self.name
    }

    fn invoke(&self, _req: &CallRequest) -> Forest {
        self.result.clone()
    }
}

/// A service backed by a closure.
pub struct FnService<F> {
    name: String,
    f: F,
}

impl<F> FnService<F>
where
    F: Fn(&CallRequest) -> Forest + Send + Sync,
{
    /// Creates the service.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnService {
            name: name.into(),
            f,
        }
    }
}

impl<F> Service for FnService<F>
where
    F: Fn(&CallRequest) -> Forest + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn invoke(&self, req: &CallRequest) -> Forest {
        (self.f)(req)
    }
}

/// A keyed lookup service: the first text parameter selects the result
/// (e.g. `getNearbyRestos(address)`). Unknown keys yield an empty forest.
pub struct TableService {
    name: String,
    table: std::collections::HashMap<String, Forest>,
    push_capable: bool,
}

impl TableService {
    /// Creates an empty table service.
    pub fn new(name: impl Into<String>) -> Self {
        TableService {
            name: name.into(),
            table: Default::default(),
            push_capable: true,
        }
    }

    /// Adds an entry.
    pub fn insert(&mut self, key: impl Into<String>, result: Forest) -> &mut Self {
        self.table.insert(key.into(), result);
        self
    }

    /// Marks the provider as unable to evaluate pushed queries.
    pub fn without_push(mut self) -> Self {
        self.push_capable = false;
        self
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

impl Service for TableService {
    fn name(&self) -> &str {
        &self.name
    }

    fn invoke(&self, req: &CallRequest) -> Forest {
        match req.first_text().and_then(|k| self.table.get(k)) {
            Some(f) => f.clone(),
            None => Forest::new(),
        }
    }

    fn supports_push(&self) -> bool {
        self.push_capable
    }
}

/// The pushed query attached to an invocation, with the edge kind through
/// which the call position was reached (it decides whether the pattern
/// root must sit at a result root or may sit anywhere inside).
#[derive(Clone, Debug)]
pub struct PushedQuery {
    /// The subquery `sub_q_v` of Section 7.
    pub pattern: Pattern,
    /// Edge kind into the query node that justified the call.
    pub via: axml_query::EdgeKind,
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_xml::parse;

    #[test]
    fn static_service_returns_clone() {
        let f = parse("<a/>").unwrap();
        let s = StaticService::new("s", f);
        let r1 = s.invoke(&CallRequest::default());
        let r2 = s.invoke(&CallRequest::default());
        assert_eq!(axml_xml::to_xml(&r1), "<a/>");
        assert_eq!(axml_xml::to_xml(&r2), "<a/>");
    }

    #[test]
    fn fn_service_sees_parameters() {
        let s = FnService::new("echo", |req: &CallRequest| {
            let mut f = Forest::new();
            let e = f.add_root("echo");
            f.add_text(e, req.first_text().unwrap_or("?"));
            f
        });
        let mut params = Forest::new();
        params.add_root_text("hello");
        let out = s.invoke(&CallRequest { params });
        assert_eq!(axml_xml::to_xml(&out), "<echo>hello</echo>");
    }

    #[test]
    fn table_service_lookup() {
        let mut t = TableService::new("getNearbyRestos");
        t.insert(
            "2nd Av",
            parse("<restaurant><name>Jo</name></restaurant>").unwrap(),
        );
        let mut params = Forest::new();
        params.add_root_text("2nd Av");
        let out = t.invoke(&CallRequest { params });
        assert_eq!(out.roots().len(), 1);
        // unknown key → empty forest
        let mut params = Forest::new();
        params.add_root_text("nowhere");
        let out = t.invoke(&CallRequest { params });
        assert!(out.roots().is_empty());
    }

    #[test]
    fn push_capability_flag() {
        let t = TableService::new("x").without_push();
        assert!(!t.supports_push());
        assert!(TableService::new("y").supports_push());
    }
}
