//! Declarative service definitions ("world files").
//!
//! The ActiveXML system configured its peers' services declaratively; we
//! load a registry from an XML world file so workloads are fully
//! file-driven (used by the `axml` CLI and the examples):
//!
//! ```xml
//! <world>
//!   <service name="getRating">
//!     <entry key="75 2nd Av."><result>*****</result></entry>
//!     <entry key="13 Penn St."><result>***</result></entry>
//!     <default><result>?</result></default>
//!   </service>
//!   <service name="getHotels">          <!-- no entries: static result -->
//!     <result><hotel>…</hotel></result>
//!   </service>
//!   <service name="legacy" push="false">…</service>
//! </world>
//! ```
//!
//! A `<result>` holds the forest the service returns (its children); an
//! `<entry key="…">` selects by the call's first text parameter; a
//! `<default>` answers unknown keys.

use crate::registry::Registry;
use crate::service::{CallRequest, Service};
use axml_xml::{Document, Forest, NodeId};
use std::collections::HashMap;
use std::fmt;

/// A world-file loading problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorldFileError {
    /// Description.
    pub message: String,
}

impl fmt::Display for WorldFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "world file error: {}", self.message)
    }
}

impl std::error::Error for WorldFileError {}

fn err(message: impl Into<String>) -> WorldFileError {
    WorldFileError {
        message: message.into(),
    }
}

/// A table/static service loaded from a world file.
struct WorldService {
    name: String,
    entries: HashMap<String, Forest>,
    default: Option<Forest>,
    push: bool,
}

impl Service for WorldService {
    fn name(&self) -> &str {
        &self.name
    }

    fn invoke(&self, req: &CallRequest) -> Forest {
        if let Some(key) = req.first_text() {
            if let Some(f) = self.entries.get(key) {
                return f.clone();
            }
        }
        match &self.default {
            Some(f) => f.clone(),
            None => Forest::new(),
        }
    }

    fn supports_push(&self) -> bool {
        self.push
    }
}

fn attr_of(doc: &Document, node: NodeId, name: &str) -> Option<String> {
    let attr_label = format!("@{name}");
    doc.children(node).iter().find_map(|&c| {
        if doc.label(c) == attr_label {
            doc.children(c)
                .first()
                .and_then(|&v| doc.text_value(v))
                .map(String::from)
        } else {
            None
        }
    })
}

fn result_forest(doc: &Document, holder: NodeId) -> Result<Forest, WorldFileError> {
    let result = doc
        .children(holder)
        .iter()
        .copied()
        .find(|&c| doc.label(c) == "result")
        .ok_or_else(|| err("missing <result> element"))?;
    let mut f = Forest::new();
    for &c in doc.children(result) {
        f.append_copy_as_root(doc, c);
    }
    Ok(f)
}

/// Loads a registry from a parsed world document.
pub fn load_registry(doc: &Document) -> Result<Registry, WorldFileError> {
    let root = *doc.roots().first().ok_or_else(|| err("empty world file"))?;
    if doc.label(root) != "world" {
        return Err(err(format!(
            "root element must be <world>, found <{}>",
            doc.label(root)
        )));
    }
    let mut registry = Registry::new();
    for &svc in doc.children(root) {
        if doc.label(svc) != "service" {
            if doc.is_data(svc) && doc.label(svc).starts_with('@') {
                continue;
            }
            return Err(err(format!(
                "unexpected <{}> under <world>",
                doc.label(svc)
            )));
        }
        let name =
            attr_of(doc, svc, "name").ok_or_else(|| err("<service> without name attribute"))?;
        let push = attr_of(doc, svc, "push").is_none_or(|v| v != "false");
        let mut entries = HashMap::new();
        let mut default = None;
        let mut static_result = None;
        for &child in doc.children(svc) {
            match doc.label(child) {
                "entry" => {
                    let key = attr_of(doc, child, "key")
                        .ok_or_else(|| err("<entry> without key attribute"))?;
                    entries.insert(key, result_forest(doc, child)?);
                }
                "default" => default = Some(result_forest(doc, child)?),
                "result" => static_result = Some(forest_of(doc, child)),
                l if l.starts_with('@') => {}
                other => return Err(err(format!("unexpected <{other}> under <service>"))),
            }
        }
        if entries.is_empty() && default.is_none() {
            // static service: the bare <result> is the answer to every call
            default = static_result;
        }
        registry.register(WorldService {
            name,
            entries,
            default,
            push,
        });
    }
    Ok(registry)
}

fn forest_of(doc: &Document, result: NodeId) -> Forest {
    let mut f = Forest::new();
    for &c in doc.children(result) {
        f.append_copy_as_root(doc, c);
    }
    f
}

/// Loads a registry from world-file XML text.
pub fn load_registry_str(xml: &str) -> Result<Registry, WorldFileError> {
    let doc = axml_xml::parse(xml).map_err(|e| err(e.to_string()))?;
    load_registry(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_xml::to_xml;

    const WORLD: &str = r#"
      <world>
        <service name="getRating">
          <entry key="a"><result>*****</result></entry>
          <entry key="b"><result>**</result></entry>
          <default><result>?</result></default>
        </service>
        <service name="getHotels">
          <result><hotel><name>BW</name></hotel><hotel><name>P</name></hotel></result>
        </service>
        <service name="legacy" push="false">
          <entry key="k"><result><x/></result></entry>
        </service>
      </world>"#;

    #[test]
    fn loads_keyed_and_static_services() {
        let r = load_registry_str(WORLD).unwrap();
        assert_eq!(
            r.service_names(),
            vec!["getHotels".to_string(), "getRating".into(), "legacy".into()]
        );
        let mut params = Forest::new();
        params.add_root_text("a");
        let out = r.invoke("getRating", params, None).unwrap();
        assert_eq!(to_xml(&out.result), "*****");
        // default applies to unknown keys
        let mut params = Forest::new();
        params.add_root_text("zz");
        let out = r.invoke("getRating", params, None).unwrap();
        assert_eq!(to_xml(&out.result), "?");
        // static: any params
        let out = r.invoke("getHotels", Forest::new(), None).unwrap();
        assert_eq!(out.result.roots().len(), 2);
    }

    #[test]
    fn push_attribute_respected() {
        let r = load_registry_str(WORLD).unwrap();
        assert!(r.supports_push("getRating"));
        assert!(!r.supports_push("legacy"));
    }

    fn load_err(src: &str) -> WorldFileError {
        load_registry_str(src).err().expect("expected an error")
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(load_err("<notworld/>").message.contains("<world>"));
        assert!(load_err("<world><service/></world>")
            .message
            .contains("name"));
        assert!(
            load_err("<world><service name=\"s\"><entry><result/></entry></service></world>")
                .message
                .contains("key")
        );
        assert!(
            load_err("<world><service name=\"s\"><entry key=\"k\"/></service></world>")
                .message
                .contains("result")
        );
    }

    #[test]
    fn intensional_results_survive() {
        let r = load_registry_str(
            "<world><service name=\"outer\">\
               <result><wrap><axml:call service=\"inner\"/></wrap></result>\
             </service></world>",
        )
        .unwrap();
        let out = r.invoke("outer", Forest::new(), None).unwrap();
        assert_eq!(out.result.calls().len(), 1);
    }
}
