//! Deterministic network simulation.
//!
//! The paper's experiments run against remote Web services whose dominant
//! costs are per-call latency and transfer volume. We substitute a
//! deterministic model: each invocation costs
//! `latency_ms + bytes / bandwidth` simulated milliseconds; a batch of
//! parallel invocations (Section 4.4) costs the **maximum** of its members
//! instead of the sum. All experiment figures report this simulated time
//! next to measured CPU time, which makes the call-pruning factors
//! hardware-independent and reproducible.

/// Network cost profile of one service.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetProfile {
    /// Fixed per-invocation latency in simulated milliseconds.
    pub latency_ms: f64,
    /// Transfer rate in bytes per simulated millisecond
    /// (`f64::INFINITY` = free transfer).
    pub bytes_per_ms: f64,
}

impl NetProfile {
    /// A profile with only fixed latency.
    pub fn latency(ms: f64) -> Self {
        NetProfile {
            latency_ms: ms,
            bytes_per_ms: f64::INFINITY,
        }
    }

    /// A zero-cost network (unit tests).
    pub fn free() -> Self {
        NetProfile {
            latency_ms: 0.0,
            bytes_per_ms: f64::INFINITY,
        }
    }

    /// The simulated cost of moving `bytes` over this profile.
    pub fn cost_ms(&self, bytes: usize) -> f64 {
        let transfer = if self.bytes_per_ms.is_finite() && self.bytes_per_ms > 0.0 {
            bytes as f64 / self.bytes_per_ms
        } else {
            0.0
        };
        self.latency_ms + transfer
    }
}

impl Default for NetProfile {
    /// A broadband-ish default: 40 ms round trip, 100 bytes/ms (~100 KB/s).
    fn default() -> Self {
        NetProfile {
            latency_ms: 40.0,
            bytes_per_ms: 100.0,
        }
    }
}

/// A simulated wall clock accumulating invocation costs.
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    now_ms: f64,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// A clock starting at `now_ms` — used by long-lived sessions whose
    /// simulated time persists across queries (TTL windows and breaker
    /// cooldowns keep counting between runs).
    pub fn at(now_ms: f64) -> Self {
        SimClock { now_ms }
    }

    /// Current simulated time in milliseconds.
    pub fn now_ms(&self) -> f64 {
        self.now_ms
    }

    /// A sequential step: advance by the full cost.
    pub fn advance(&mut self, cost_ms: f64) {
        self.now_ms += cost_ms;
    }

    /// A parallel batch: advance by the maximum cost of the batch
    /// (Section 4.4 — independent calls are invoked in parallel).
    pub fn advance_parallel(&mut self, costs_ms: &[f64]) {
        if let Some(max) = costs_ms.iter().copied().fold(None, |acc: Option<f64>, c| {
            Some(acc.map_or(c, |a| a.max(c)))
        }) {
            self.now_ms += max;
        }
    }
}

/// An absolute end-to-end expiry point on the simulated clock.
///
/// A deadline is an *instant*, not a duration: it is fixed when a run
/// starts (`Deadline::after(start_ms, budget_ms)`) and every later
/// decision asks how much budget remains at the current simulated time.
/// Because the simulated clock is deterministic, so is every deadline
/// decision — the same seed and flags expire at the same instant on
/// every run, threaded or not.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Deadline {
    expiry_ms: f64,
}

impl Deadline {
    /// A deadline that never expires.
    pub fn never() -> Self {
        Deadline {
            expiry_ms: f64::INFINITY,
        }
    }

    /// A deadline at the absolute simulated instant `expiry_ms`.
    pub fn at(expiry_ms: f64) -> Self {
        Deadline { expiry_ms }
    }

    /// A deadline `budget_ms` after `start_ms` (infinite budget = never).
    pub fn after(start_ms: f64, budget_ms: f64) -> Self {
        if budget_ms.is_finite() {
            Deadline {
                expiry_ms: start_ms + budget_ms.max(0.0),
            }
        } else {
            Deadline::never()
        }
    }

    /// The absolute expiry instant in simulated milliseconds.
    pub fn expiry_ms(&self) -> f64 {
        self.expiry_ms
    }

    /// Whether this deadline can ever expire.
    pub fn is_finite(&self) -> bool {
        self.expiry_ms.is_finite()
    }

    /// Budget left at simulated time `now_ms` (clamped at zero;
    /// `f64::INFINITY` for a never-expiring deadline).
    pub fn remaining_ms(&self, now_ms: f64) -> f64 {
        if self.expiry_ms.is_finite() {
            (self.expiry_ms - now_ms).max(0.0)
        } else {
            f64::INFINITY
        }
    }

    /// Whether the deadline has expired at simulated time `now_ms`.
    pub fn expired(&self, now_ms: f64) -> bool {
        now_ms >= self.expiry_ms
    }
}

impl Default for Deadline {
    /// Never expires.
    fn default() -> Self {
        Deadline::never()
    }
}

/// Aggregate traffic statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NetStats {
    /// Number of successful invocations.
    pub calls: usize,
    /// Total result bytes transferred.
    pub bytes: usize,
    /// Number of invocations that carried a pushed query.
    pub pushed_calls: usize,
    /// Total simulated cost of all calls — including failed attempts and
    /// retry backoff — as if sequential (the engine's clock accounts for
    /// parallelism separately).
    pub total_cost_ms: f64,
    /// Attempts made, successful or not (≥ `calls`).
    pub attempts: usize,
    /// Attempts that failed (fast failure or timeout).
    pub failed_attempts: usize,
    /// Failed attempts that exceeded the per-attempt deadline.
    pub timed_out_attempts: usize,
    /// Calls that exhausted their retry budget and failed for good.
    pub failed_calls: usize,
    /// Simulated time spent waiting in retry backoff.
    pub backoff_ms: f64,
    /// Calls skipped because a circuit breaker was open.
    pub breaker_skips: usize,
}

impl NetStats {
    /// Records one successful invocation (one successful attempt).
    pub fn record(&mut self, bytes: usize, cost_ms: f64, pushed: bool) {
        self.calls += 1;
        self.attempts += 1;
        self.bytes += bytes;
        self.total_cost_ms += cost_ms;
        if pushed {
            self.pushed_calls += 1;
        }
    }

    /// Records one failed attempt and its simulated cost.
    pub fn record_failed_attempt(&mut self, cost_ms: f64, timed_out: bool) {
        self.attempts += 1;
        self.failed_attempts += 1;
        self.total_cost_ms += cost_ms;
        if timed_out {
            self.timed_out_attempts += 1;
        }
    }

    /// Records a call that failed after exhausting its retries.
    pub fn record_failed_call(&mut self) {
        self.failed_calls += 1;
    }

    /// Records simulated retry-backoff time.
    pub fn record_backoff(&mut self, ms: f64) {
        self.backoff_ms += ms;
        self.total_cost_ms += ms;
    }

    /// Records a call rejected by an open circuit breaker.
    pub fn record_breaker_skip(&mut self) {
        self.breaker_skips += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_combines_latency_and_transfer() {
        let p = NetProfile {
            latency_ms: 10.0,
            bytes_per_ms: 100.0,
        };
        assert_eq!(p.cost_ms(0), 10.0);
        assert_eq!(p.cost_ms(1000), 20.0);
        assert_eq!(NetProfile::latency(5.0).cost_ms(1_000_000), 5.0);
        assert_eq!(NetProfile::free().cost_ms(123), 0.0);
    }

    #[test]
    fn clock_sequential_vs_parallel() {
        let mut c = SimClock::new();
        c.advance(10.0);
        c.advance(20.0);
        assert_eq!(c.now_ms(), 30.0);
        c.advance_parallel(&[5.0, 50.0, 1.0]);
        assert_eq!(c.now_ms(), 80.0);
        c.advance_parallel(&[]);
        assert_eq!(c.now_ms(), 80.0);
    }

    #[test]
    fn deadline_budget_accounting() {
        let d = Deadline::after(100.0, 50.0);
        assert!(d.is_finite());
        assert_eq!(d.expiry_ms(), 150.0);
        assert_eq!(d.remaining_ms(100.0), 50.0);
        assert_eq!(d.remaining_ms(140.0), 10.0);
        assert_eq!(d.remaining_ms(200.0), 0.0);
        assert!(!d.expired(149.9));
        assert!(d.expired(150.0));

        let never = Deadline::after(5.0, f64::INFINITY);
        assert_eq!(never, Deadline::never());
        assert!(!never.is_finite());
        assert_eq!(never.remaining_ms(1e12), f64::INFINITY);
        assert!(!never.expired(1e12));

        // a non-positive budget is already expired at its start instant
        let spent = Deadline::after(10.0, -3.0);
        assert!(spent.expired(10.0));
        assert_eq!(spent.remaining_ms(10.0), 0.0);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = NetStats::default();
        s.record(100, 11.0, false);
        s.record(50, 7.0, true);
        assert_eq!(s.calls, 2);
        assert_eq!(s.bytes, 150);
        assert_eq!(s.pushed_calls, 1);
        assert!((s.total_cost_ms - 18.0).abs() < 1e-9);
    }
}
