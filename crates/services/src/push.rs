//! Provider-side evaluation of pushed queries (Section 7).
//!
//! When a call is invoked with a pushed subquery `sub_q_v`, the provider
//! does not return the whole result but only the part useful for the
//! query. Two faithful modes are implemented (the paper's text describing
//! re-integration is truncated in our source — see DESIGN.md):
//!
//! * **Pruned-result** (default): the provider keeps only the nodes of its
//!   result that *contribute* to `sub_q_v` (images of pattern nodes, paths
//!   realizing descendant edges, full subtrees under images of pattern
//!   leaves), **plus any remaining function nodes** — nested calls may
//!   still produce relevant data later, so dropping them would break
//!   completeness. Splicing the pruned forest preserves the query answer.
//! * **Bindings**: the provider returns `<tuple>` elements binding the
//!   result variables, exactly like the paper's `getNearbyRestos` example
//!   (`<tuple><x>In Delis</x><y>2nd Ave.</y></tuple>…`). Only meaningful
//!   for extensional results.

use axml_query::{embeddings, EdgeKind, FunMatch, PLabel, PNodeId, Pattern};
use axml_xml::{Document, Forest, NodeId};
use std::collections::HashSet;

/// Relaxes a pushed pattern the way NFQs relax conditions (Figure 5):
/// every non-root node `u` becomes `OR(u, ())`, because a pending call in
/// the provider's own result may still produce the data satisfying `u`.
/// Pruning against the *relaxed* pattern keeps everything that could
/// contribute once nested calls are invoked — without it, pruning would
/// drop data (e.g. a restaurant's name) whose qualifying condition (its
/// rating) is still intensional, breaking completeness.
fn relax_for_pending(pattern: &Pattern) -> Pattern {
    let mut out = Pattern::new();
    let src_root = pattern.root();
    let root = out.set_root(pattern.node(src_root).label.clone());
    if pattern.node(src_root).is_result {
        out.mark_result(root);
    }
    for &c in &pattern.node(src_root).children {
        copy_relaxed(pattern, c, &mut out, root);
    }
    out
}

fn copy_relaxed(src: &Pattern, u: PNodeId, out: &mut Pattern, parent: PNodeId) {
    let or = out.add_child(parent, src.node(u).edge, PLabel::Or);
    let data = out.add_child(or, EdgeKind::Child, src.node(u).label.clone());
    if src.node(u).is_result {
        out.mark_result(data);
    }
    out.add_child(or, EdgeKind::Child, PLabel::Fun(FunMatch::Any));
    for &c in &src.node(u).children {
        copy_relaxed(src, c, out, data);
    }
}

/// How a provider answers a pushed query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PushMode {
    /// Return the contributing part of the result (answer-preserving).
    #[default]
    PrunedResult,
    /// Return `<tuple>` bindings of the subquery's result variables.
    Bindings,
}

/// Wraps `pattern` for embedding anywhere in a forest: `*//pattern ∪ pattern
/// at a root`. Used when the call position was reached via a descendant
/// edge.
fn anywhere_embeddings(
    pattern: &Pattern,
    forest: &Forest,
) -> Vec<std::collections::BTreeMap<PNodeId, NodeId>> {
    let mut out = embeddings(pattern, forest);
    // strictly-below case: wildcard root with a descendant edge
    let mut wrapped = Pattern::new();
    let root = wrapped.set_root(PLabel::Wildcard);
    let inner = wrapped.append_pattern(root, EdgeKind::Descendant, pattern);
    let _ = inner;
    for emb in embeddings(&wrapped, forest) {
        // drop the synthetic root's image; remap ids is unnecessary for the
        // node-set use below, so keep the map as-is
        out.push(emb);
    }
    out
}

/// The node set the provider keeps for a pushed query.
fn keep_set(orig: &Pattern, forest: &Forest, via: EdgeKind) -> HashSet<NodeId> {
    let pattern = &relax_for_pending(orig);
    let embs = match via {
        EdgeKind::Child => embeddings(pattern, forest),
        EdgeKind::Descendant => anywhere_embeddings(pattern, forest),
    };
    let mut keep: HashSet<NodeId> = HashSet::new();
    for emb in &embs {
        for (&_p, &v) in emb {
            keep.insert(v);
            // path closure up to the forest root (covers descendant edges
            // and the synthetic wrapper root)
            let mut cur = forest.parent(v);
            while let Some(n) = cur {
                if !keep.insert(n) {
                    break;
                }
                cur = forest.parent(n);
            }
        }
    }
    // keep full subtrees under images of pattern leaves (the answers the
    // engine will extract later)
    let leaf_nodes: Vec<PNodeId> = pattern
        .node_ids()
        .filter(|&p| pattern.node(p).children.is_empty())
        .collect();
    for emb in &embs {
        for &p in &leaf_nodes {
            if let Some(&v) = emb.get(&p) {
                for n in forest.descendants(v) {
                    keep.insert(n);
                }
            }
        }
    }
    // nested calls may produce relevant data later: keep them + ancestors
    for call in forest.calls() {
        for n in forest.descendants(call) {
            keep.insert(n);
        }
        let mut cur = forest.parent(call);
        while let Some(n) = cur {
            if !keep.insert(n) {
                break;
            }
            cur = forest.parent(n);
        }
    }
    keep
}

/// Evaluates a pushed query provider-side in pruned-result mode.
///
/// ```
/// use axml_services::prune_result;
/// use axml_query::{parse_query, EdgeKind};
/// use axml_xml::{parse, to_xml};
///
/// let full = parse(
///     "<restaurant><name>Jo</name><rating>*****</rating></restaurant>\
///      <restaurant><name>No</name><rating>*</rating></restaurant>",
/// ).unwrap();
/// let q = parse_query("/restaurant[rating=\"*****\"]/name").unwrap();
/// let pruned = prune_result(&q, &full, EdgeKind::Child);
/// assert!(to_xml(&pruned).contains("Jo"));
/// assert!(!to_xml(&pruned).contains("No"));
/// ```
pub fn prune_result(pattern: &Pattern, forest: &Forest, via: EdgeKind) -> Forest {
    let keep = keep_set(pattern, forest, via);
    let mut out = Forest::new();
    for &r in forest.roots() {
        if keep.contains(&r) {
            copy_kept(forest, r, None, &keep, &mut out);
        }
    }
    out
}

fn copy_kept(
    src: &Document,
    node: NodeId,
    parent: Option<NodeId>,
    keep: &HashSet<NodeId>,
    out: &mut Forest,
) {
    let new = match (src.kind(node), parent) {
        (axml_xml::NodeKind::Element(l), Some(p)) => out.add_element(p, l.clone()),
        (axml_xml::NodeKind::Element(l), None) => out.add_root(l.clone()),
        (axml_xml::NodeKind::Text(t), Some(p)) => out.add_text(p, t.clone()),
        (axml_xml::NodeKind::Text(t), None) => out.add_root_text(t.clone()),
        (axml_xml::NodeKind::Call(_, s), Some(p)) => out.add_call(p, s.clone()),
        (axml_xml::NodeKind::Call(_, s), None) => out.add_root_call(s.clone()),
    };
    for &c in src.children(node) {
        if keep.contains(&c) {
            copy_kept(src, c, Some(new), keep, out);
        }
    }
}

/// Evaluates a pushed query provider-side in bindings mode: one `<tuple>`
/// per result, with one child per result node (named after the variable,
/// or `col<i>` for non-variable result nodes), holding the bound node's
/// label.
pub fn bindings_result(pattern: &Pattern, forest: &Forest, via: EdgeKind) -> Forest {
    let embs = match via {
        EdgeKind::Child => embeddings(pattern, forest),
        EdgeKind::Descendant => anywhere_embeddings(pattern, forest),
    };
    let result_nodes = pattern.result_nodes();
    let mut seen: HashSet<Vec<String>> = HashSet::new();
    let mut out = Forest::new();
    for emb in embs {
        let mut row: Vec<(String, String)> = Vec::new();
        for (i, &rn) in result_nodes.iter().enumerate() {
            let Some(&v) = emb.get(&rn) else { continue };
            let name = match &pattern.node(rn).label {
                PLabel::Var(name) => name.to_string().to_lowercase(),
                _ => format!("col{i}"),
            };
            row.push((name, forest.label(v).to_string()));
        }
        if row.is_empty() {
            continue;
        }
        let key: Vec<String> = row.iter().map(|(k, v)| format!("{k}={v}")).collect();
        if !seen.insert(key) {
            continue;
        }
        let t = out.add_root("tuple");
        for (k, v) in row {
            let c = out.add_element(t, k);
            out.add_text(c, v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_query::parse_query;
    use axml_xml::{parse, to_xml};

    fn restos() -> Forest {
        parse(
            "<restaurant><name>In Delis</name><address>2nd Ave.</address>\
               <rating>*****</rating><menu><dish>pastrami</dish></menu></restaurant>\
             <restaurant><name>Grease</name><address>9th Ave.</address>\
               <rating>*</rating></restaurant>\
             <restaurant><name>The Capital</name><address>2nd Ave.</address>\
               <rating>*****</rating></restaurant>",
        )
        .unwrap()
    }

    #[test]
    fn prune_keeps_only_contributing_restaurants() {
        let q = parse_query("/restaurant[rating=\"*****\"][name=$X][address=$Y] -> $X,$Y").unwrap();
        let pruned = prune_result(&q, &restos(), EdgeKind::Child);
        assert_eq!(pruned.roots().len(), 2, "{}", to_xml(&pruned));
        let xml = to_xml(&pruned);
        assert!(xml.contains("In Delis"));
        assert!(xml.contains("The Capital"));
        assert!(!xml.contains("Grease"));
        // the menu subtree does not contribute and is pruned
        assert!(!xml.contains("pastrami"));
    }

    #[test]
    fn prune_preserves_answer() {
        let q = parse_query("/restaurant[rating=\"*****\"][name=$X][address=$Y] -> $X,$Y").unwrap();
        let full = restos();
        let pruned = prune_result(&q, &full, EdgeKind::Child);
        let before = axml_query::eval(&q, &full);
        let after = axml_query::eval(&q, &pruned);
        // same number of distinct answers (node ids differ)
        assert_eq!(before.len(), after.len());
        // and pruned is strictly smaller on the wire
        assert!(axml_xml::forest_serialized_len(&pruned) < axml_xml::forest_serialized_len(&full));
    }

    #[test]
    fn prune_with_descendant_edge_finds_deep_matches() {
        let f = parse("<area><list><restaurant><name>Jo</name></restaurant></list><junk/></area>")
            .unwrap();
        let q = parse_query("/restaurant/name").unwrap();
        let pruned = prune_result(&q, &f, EdgeKind::Descendant);
        let xml = to_xml(&pruned);
        assert!(xml.contains("Jo"), "{xml}");
        assert!(!xml.contains("junk"), "{xml}");
    }

    #[test]
    fn prune_keeps_nested_calls() {
        let f = parse(
            "<restaurant><name>Jo</name>\
               <rating><axml:call service=\"getRating\"/></rating></restaurant>\
             <unrelated/>",
        )
        .unwrap();
        let q = parse_query("/restaurant[rating=\"*****\"]/name").unwrap();
        // no extensional match yet, but the call could produce the rating:
        // it must survive pruning (with its restaurant context)
        let pruned = prune_result(&q, &f, EdgeKind::Child);
        let xml = to_xml(&pruned);
        assert!(xml.contains("axml:call"), "{xml}");
        assert!(!xml.contains("unrelated"), "{xml}");
    }

    #[test]
    fn prune_keeps_data_whose_condition_is_still_pending() {
        // Jo's rating is intensional: if it later comes back "*****", the
        // query needs Jo's name and address — they must survive pruning
        let f = parse(
            "<restaurant><name>Jo</name><address>Madison Av.</address>\
               <rating><axml:call service=\"getRating\">Jo</axml:call></rating>\
             </restaurant>\
             <restaurant><name>Grease</name><address>9th</address>\
               <rating>*</rating></restaurant>",
        )
        .unwrap();
        let q = parse_query("/restaurant[rating=\"*****\"][name=$X][address=$Y] -> $X,$Y").unwrap();
        let pruned = prune_result(&q, &f, EdgeKind::Child);
        let xml = to_xml(&pruned);
        assert!(xml.contains("Jo"), "{xml}");
        assert!(xml.contains("Madison Av."), "{xml}");
        assert!(xml.contains("axml:call"), "{xml}");
        // Grease's rating is extensional and disqualifying: dropped
        assert!(!xml.contains("Grease"), "{xml}");
    }

    #[test]
    fn prune_empty_when_nothing_contributes() {
        let q = parse_query("/museum/name").unwrap();
        let pruned = prune_result(&q, &restos(), EdgeKind::Child);
        assert!(pruned.roots().is_empty());
    }

    #[test]
    fn bindings_mode_matches_paper_example() {
        let q = parse_query("/restaurant[rating=\"*****\"][name=$X][address=$Y] -> $X,$Y").unwrap();
        let b = bindings_result(&q, &restos(), EdgeKind::Child);
        let xml = to_xml(&b);
        assert!(
            xml.contains("<tuple><x>In Delis</x><y>2nd Ave.</y></tuple>"),
            "{xml}"
        );
        assert!(
            xml.contains("<tuple><x>The Capital</x><y>2nd Ave.</y></tuple>"),
            "{xml}"
        );
        assert!(!xml.contains("Grease"));
    }

    #[test]
    fn bindings_deduplicate() {
        let f = parse("<r><a>same</a></r><r><a>same</a></r>").unwrap();
        let q = parse_query("/r[a=$V] -> $V").unwrap();
        let b = bindings_result(&q, &f, EdgeKind::Child);
        assert_eq!(b.roots().len(), 1);
    }
}
