//! Deterministic fault injection, retry policy, and circuit breaking.
//!
//! Real Web services flake, time out, and fail permanently; the engine
//! must keep its paper-level guarantees (Section 4's completeness
//! invariant) in a degraded form under those conditions, and the
//! experiments must stay reproducible. So faults here are *scheduled*,
//! not random: whether attempt `k` of a call fails is a pure function of
//! the profile seed, the service name, a fingerprint of the call
//! parameters, and `k`. The schedule is therefore identical across
//! evaluation strategies, push modes, and thread interleavings, and two
//! runs with the same seed produce byte-identical reports.
//!
//! All fault costs are charged to the existing [`crate::SimClock`]
//! simulated-time model: a dropped call burns its network latency, a
//! timeout burns the configured per-attempt deadline, a slowdown
//! multiplies the transfer cost, and retry backoff burns simulated idle
//! time. Nothing here consumes wall-clock time.

use crate::service::{CallRequest, Service};
use axml_xml::Forest;

/// The fate of one attempt of one call, drawn from a [`FaultProfile`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultDecision {
    /// The attempt proceeds normally.
    Healthy,
    /// The attempt fails fast (connection refused / 5xx): the caller pays
    /// the profile latency but transfers nothing.
    Fail,
    /// The attempt never answers: the caller pays the full per-attempt
    /// deadline (or, with no deadline configured, the profile latency).
    Timeout,
    /// The attempt succeeds but its network cost is multiplied; if the
    /// inflated cost exceeds the per-attempt deadline it becomes a
    /// timeout.
    Slow(f64),
}

/// A seeded, deterministic per-call fault schedule.
///
/// `fail_prob` selects which *call sites* (service × parameters) are
/// flaky; a flaky site fails its first `transient_failures` attempts and
/// then succeeds (use [`usize::MAX`] for a permanent outage). Failing
/// attempts time out rather than fail fast with probability
/// `timeout_prob`. Healthy attempts are independently slowed down by
/// `slowdown_factor` with probability `slowdown_prob`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultProfile {
    /// Base seed; every decision mixes this in.
    pub seed: u64,
    /// Probability that a call site is flaky at all.
    pub fail_prob: f64,
    /// How many leading attempts of a flaky site fail before it succeeds.
    pub transient_failures: usize,
    /// Probability that a failing attempt manifests as a timeout instead
    /// of a fast failure.
    pub timeout_prob: f64,
    /// Probability that a healthy attempt is slowed down.
    pub slowdown_prob: f64,
    /// Cost multiplier for slowed-down attempts.
    pub slowdown_factor: f64,
}

impl FaultProfile {
    /// A profile that never injects anything.
    pub fn none() -> Self {
        FaultProfile {
            seed: 0,
            fail_prob: 0.0,
            transient_failures: 0,
            timeout_prob: 0.0,
            slowdown_prob: 0.0,
            slowdown_factor: 1.0,
        }
    }

    /// Every call site fails its first `failures` attempts, then succeeds.
    pub fn transient(seed: u64, failures: usize) -> Self {
        FaultProfile {
            seed,
            fail_prob: 1.0,
            transient_failures: failures,
            ..FaultProfile::none()
        }
    }

    /// Every call site is permanently down (fast failures).
    pub fn permanent(seed: u64) -> Self {
        FaultProfile {
            seed,
            fail_prob: 1.0,
            transient_failures: usize::MAX,
            ..FaultProfile::none()
        }
    }

    /// Every attempt hangs until the per-attempt deadline.
    pub fn timeouts(seed: u64) -> Self {
        FaultProfile {
            seed,
            fail_prob: 1.0,
            transient_failures: usize::MAX,
            timeout_prob: 1.0,
            ..FaultProfile::none()
        }
    }

    /// A mixed workload: a `fail_prob` fraction of call sites flake
    /// transiently (absorbed by the default retry policy), a quarter of
    /// the failures are timeouts, and occasional 4× slowdowns.
    pub fn chaos(seed: u64, fail_prob: f64) -> Self {
        FaultProfile {
            seed,
            fail_prob,
            transient_failures: 1,
            timeout_prob: 0.25,
            slowdown_prob: 0.05,
            slowdown_factor: 4.0,
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether this profile can never produce a fault.
    pub fn is_inert(&self) -> bool {
        (self.fail_prob <= 0.0 || self.transient_failures == 0) && self.slowdown_prob <= 0.0
    }

    /// The fate of attempt `attempt` (0-based) of the call identified by
    /// `service` and `params_fingerprint`. Pure: no interior state.
    pub fn decide(&self, service: &str, params_fingerprint: u64, attempt: usize) -> FaultDecision {
        if self.is_inert() {
            return FaultDecision::Healthy;
        }
        let site = mix3(self.seed, fnv64(service.as_bytes()), params_fingerprint);
        let flaky = unit(mix2(site, SALT_FLAKY)) < self.fail_prob;
        if flaky && attempt < self.transient_failures {
            if unit(mix2(site, SALT_TIMEOUT ^ attempt as u64)) < self.timeout_prob {
                return FaultDecision::Timeout;
            }
            return FaultDecision::Fail;
        }
        if unit(mix2(site, SALT_SLOW ^ attempt as u64)) < self.slowdown_prob {
            return FaultDecision::Slow(self.slowdown_factor);
        }
        FaultDecision::Healthy
    }
}

/// How the registry re-drives failing calls.
///
/// A call makes at most `1 + max_retries` attempts. Before retry `k`
/// (0-based) the caller waits `base_backoff_ms * backoff_factor^k`
/// simulated milliseconds. Each attempt is bounded by `timeout_ms`
/// simulated milliseconds ([`f64::INFINITY`] disables the deadline — in
/// that case a scheduled timeout fault degrades to a fast failure, since
/// an unbounded hang would never terminate).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Additional attempts after the first.
    pub max_retries: usize,
    /// Backoff before the first retry, in simulated milliseconds.
    pub base_backoff_ms: f64,
    /// Multiplier applied to the backoff for each subsequent retry.
    pub backoff_factor: f64,
    /// Per-attempt deadline in simulated milliseconds.
    pub timeout_ms: f64,
}

impl Default for RetryPolicy {
    /// Three retries, 25 ms exponential backoff (25/50/100), no deadline.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff_ms: 25.0,
            backoff_factor: 2.0,
            timeout_ms: f64::INFINITY,
        }
    }
}

impl RetryPolicy {
    /// A single attempt, no backoff, no deadline: the pre-fault behavior.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff_ms: 0.0,
            backoff_factor: 1.0,
            timeout_ms: f64::INFINITY,
        }
    }

    /// Builder-style retry-count override.
    pub fn with_retries(mut self, max_retries: usize) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Builder-style per-attempt deadline override.
    pub fn with_timeout_ms(mut self, timeout_ms: f64) -> Self {
        self.timeout_ms = timeout_ms;
        self
    }

    /// Simulated backoff before retry `retry` (0-based).
    pub fn backoff_ms(&self, retry: usize) -> f64 {
        if self.base_backoff_ms <= 0.0 {
            return 0.0;
        }
        self.base_backoff_ms * self.backoff_factor.powi(retry.min(30) as i32)
    }

    /// The backoff actually scheduled before retry `retry` when only
    /// `remaining_ms` of an end-to-end deadline budget is left: never
    /// negative, never more than the remaining budget.
    pub fn backoff_within(&self, retry: usize, remaining_ms: f64) -> f64 {
        self.backoff_ms(retry).min(remaining_ms.max(0.0))
    }
}

/// Per-service circuit-breaker configuration.
///
/// After `failure_threshold` consecutive *calls* (not attempts) to a
/// service have exhausted their retries, the breaker opens and the engine
/// skips further calls to that service — degrading them immediately —
/// until `cooldown_ms` of simulated time has passed, after which one call
/// is let through to probe the service (half-open behavior).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failed calls that open the breaker.
    pub failure_threshold: usize,
    /// Simulated milliseconds the breaker stays open.
    pub cooldown_ms: f64,
}

impl Default for BreakerConfig {
    /// Open after 3 consecutive failed calls, cool down for 10 simulated
    /// seconds.
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_ms: 10_000.0,
        }
    }
}

impl BreakerConfig {
    /// A breaker that never opens.
    pub fn disabled() -> Self {
        BreakerConfig {
            failure_threshold: usize::MAX,
            cooldown_ms: 0.0,
        }
    }
}

/// Mutable per-service breaker bookkeeping (owned by the registry).
#[derive(Clone, Copy, Debug, Default)]
pub struct BreakerState {
    /// Consecutive failed calls since the last success.
    pub consecutive_failures: usize,
    /// Simulated time until which the breaker rejects calls.
    pub open_until_ms: f64,
    /// Times the breaker has opened.
    pub trips: usize,
}

/// Wraps any service with an attached fault profile; the registry applies
/// the profile whenever no explicit per-service or default profile is
/// configured for the call.
pub struct FlakyService<S> {
    inner: S,
    profile: FaultProfile,
}

impl<S: Service> FlakyService<S> {
    /// Attach `profile` to `inner`.
    pub fn new(inner: S, profile: FaultProfile) -> Self {
        FlakyService { inner, profile }
    }
}

impl<S: Service> Service for FlakyService<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn invoke(&self, req: &CallRequest) -> Forest {
        self.inner.invoke(req)
    }

    fn supports_push(&self) -> bool {
        self.inner.supports_push()
    }

    fn fault_profile(&self) -> Option<&FaultProfile> {
        Some(&self.profile)
    }
}

const SALT_FLAKY: u64 = 0xf1ab_f1ab_f1ab_f1ab;
const SALT_TIMEOUT: u64 = 0x7134_e007_7134_e007;
const SALT_SLOW: u64 = 0x510d_0000_510d_0000;

/// Fingerprint salt for hedge legs: a hedged duplicate of a call draws
/// its fault schedule from `fingerprint ^ SALT_HEDGE`, so the hedge leg
/// sees an *independent* (but still deterministic) fate — the point of
/// hedging is that a duplicate sent elsewhere may dodge the tail.
pub(crate) const SALT_HEDGE: u64 = 0x4ed6_4ed6_4ed6_4ed6;

/// FNV-1a over raw bytes.
pub(crate) fn fnv64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn mix2(a: u64, b: u64) -> u64 {
    splitmix(a ^ splitmix(b))
}

fn mix3(a: u64, b: u64, c: u64) -> u64 {
    mix2(mix2(a, b), c)
}

/// Map 64 random-looking bits to `[0, 1)`.
fn unit(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let p = FaultProfile::chaos(42, 0.5);
        for attempt in 0..4 {
            assert_eq!(p.decide("svc", 123, attempt), p.decide("svc", 123, attempt));
        }
    }

    #[test]
    fn transient_fails_then_succeeds() {
        let p = FaultProfile::transient(7, 2);
        assert_eq!(p.decide("s", 1, 0), FaultDecision::Fail);
        assert_eq!(p.decide("s", 1, 1), FaultDecision::Fail);
        assert_eq!(p.decide("s", 1, 2), FaultDecision::Healthy);
    }

    #[test]
    fn permanent_never_recovers() {
        let p = FaultProfile::permanent(7);
        for attempt in [0usize, 1, 5, 100] {
            assert_eq!(p.decide("s", 9, attempt), FaultDecision::Fail);
        }
    }

    #[test]
    fn timeouts_profile_times_out() {
        let p = FaultProfile::timeouts(7);
        assert_eq!(p.decide("s", 9, 0), FaultDecision::Timeout);
    }

    #[test]
    fn inert_profile_is_always_healthy() {
        let p = FaultProfile::none().with_seed(99);
        assert!(p.is_inert());
        assert_eq!(p.decide("s", 5, 0), FaultDecision::Healthy);
    }

    #[test]
    fn seeds_change_the_schedule() {
        // with a 50% site fail probability, two seeds must disagree on at
        // least one of many sites
        let a = FaultProfile::chaos(1, 0.5);
        let b = FaultProfile::chaos(2, 0.5);
        let diverges = (0u64..64).any(|fp| a.decide("s", fp, 0) != b.decide("s", fp, 0));
        assert!(diverges);
    }

    #[test]
    fn backoff_grows_exponentially() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ms(0), 25.0);
        assert_eq!(p.backoff_ms(1), 50.0);
        assert_eq!(p.backoff_ms(2), 100.0);
        assert_eq!(RetryPolicy::none().backoff_ms(3), 0.0);
    }

    #[test]
    fn backoff_within_clips_to_the_remaining_budget() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_within(0, f64::INFINITY), 25.0);
        assert_eq!(p.backoff_within(2, 40.0), 40.0);
        assert_eq!(p.backoff_within(2, 100.0), 100.0);
        assert_eq!(p.backoff_within(0, 0.0), 0.0);
        assert_eq!(p.backoff_within(0, -5.0), 0.0);
    }

    #[test]
    fn flaky_service_delegates_and_exposes_profile() {
        use crate::service::StaticService;
        let inner = StaticService::new("s", Forest::new());
        let flaky = FlakyService::new(inner, FaultProfile::permanent(3));
        assert_eq!(flaky.name(), "s");
        assert!(flaky.supports_push());
        assert_eq!(flaky.fault_profile(), Some(&FaultProfile::permanent(3)));
    }
}
