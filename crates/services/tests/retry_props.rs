//! Property tests for the retry/backoff schedule and its interaction
//! with end-to-end deadline budgets: backoff grows monotonically with
//! the retry index, is capped (the exponent saturates), and — with a
//! deadline attached — no scheduled backoff ever exceeds the remaining
//! budget.

use axml_services::{Deadline, RetryPolicy};
use proptest::prelude::*;

fn policy_strategy() -> impl Strategy<Value = RetryPolicy> {
    (
        0usize..8,
        0.0f64..200.0,
        1.0f64..4.0,
        prop_oneof![Just(f64::INFINITY), 1.0f64..5_000.0],
    )
        .prop_map(
            |(max_retries, base_backoff_ms, backoff_factor, timeout_ms)| RetryPolicy {
                max_retries,
                base_backoff_ms,
                backoff_factor,
                timeout_ms,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn backoff_is_monotone_in_the_retry_index(
        policy in policy_strategy(),
        retry in 0usize..64,
    ) {
        // factor ≥ 1, so each retry waits at least as long as the last
        prop_assert!(policy.backoff_ms(retry + 1) >= policy.backoff_ms(retry));
        prop_assert!(policy.backoff_ms(retry) >= 0.0);
    }

    #[test]
    fn backoff_exponent_is_capped(
        policy in policy_strategy(),
        retry in 30usize..1_000,
    ) {
        // the exponent saturates at 30: arbitrarily late retries wait
        // exactly as long as retry 30, never overflowing to infinity
        prop_assert_eq!(policy.backoff_ms(retry), policy.backoff_ms(30));
        prop_assert!(policy.backoff_ms(retry).is_finite());
    }

    #[test]
    fn scheduled_backoff_never_exceeds_the_remaining_budget(
        policy in policy_strategy(),
        retry in 0usize..64,
        start_ms in 0.0f64..10_000.0,
        budget_ms in 0.0f64..500.0,
        elapsed_ms in 0.0f64..1_000.0,
    ) {
        let deadline = Deadline::after(start_ms, budget_ms);
        let remaining = deadline.remaining_ms(start_ms + elapsed_ms);
        let pause = policy.backoff_within(retry, remaining);
        prop_assert!(pause <= remaining, "pause {pause} > remaining {remaining}");
        prop_assert!(pause <= policy.backoff_ms(retry));
        prop_assert!(pause >= 0.0);
        // with no deadline the clip is a no-op
        let free = Deadline::never().remaining_ms(start_ms + elapsed_ms);
        prop_assert_eq!(policy.backoff_within(retry, free), policy.backoff_ms(retry));
    }
}
