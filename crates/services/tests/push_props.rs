//! Property tests for provider-side pushed-query evaluation (Section 7):
//! pruning never grows the payload, preserves the subquery's answers, and
//! keeps every pending call.

use axml_query::{eval, parse_query, EdgeKind, Pattern};
use axml_services::prune_result;
use axml_xml::{forest_serialized_len, Forest};
use proptest::prelude::*;

/// A random restaurant-forest: names/addresses/ratings, a fraction of the
/// ratings intensional (pending getRating calls), plus junk subtrees.
fn forest_strategy() -> impl Strategy<Value = Forest> {
    proptest::collection::vec(
        (0u8..4, any::<bool>(), any::<bool>()), // rating, intensional?, junk?
        0..12,
    )
    .prop_map(|rows| {
        let mut f = Forest::new();
        for (i, (rating, intensional, junk)) in rows.into_iter().enumerate() {
            let r = f.add_root("restaurant");
            let n = f.add_element(r, "name");
            f.add_text(n, format!("Resto {i}"));
            let a = f.add_element(r, "address");
            f.add_text(a, format!("{i} Main St."));
            let rt = f.add_element(r, "rating");
            if intensional {
                let c = f.add_call(rt, "getRating");
                f.add_text(c, format!("key {i}"));
            } else {
                f.add_text(rt, "*".repeat(rating as usize + 2));
            }
            if junk {
                let m = f.add_element(r, "menu");
                let d = f.add_element(m, "dish");
                f.add_text(d, "stew");
            }
        }
        f
    })
}

fn query() -> Pattern {
    parse_query("/restaurant[rating=\"*****\"][name=$X][address=$Y] -> $X,$Y").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pruning_never_grows_the_payload(f in forest_strategy()) {
        let q = query();
        for via in [EdgeKind::Child, EdgeKind::Descendant] {
            let pruned = prune_result(&q, &f, via);
            prop_assert!(forest_serialized_len(&pruned) <= forest_serialized_len(&f));
            pruned.check_integrity().unwrap();
        }
    }

    #[test]
    fn pruning_preserves_extensional_answers(f in forest_strategy()) {
        let q = query();
        let pruned = prune_result(&q, &f, EdgeKind::Child);
        prop_assert_eq!(eval(&q, &pruned).len(), eval(&q, &f).len());
    }

    #[test]
    fn pruning_keeps_every_pending_call(f in forest_strategy()) {
        let q = query();
        let pruned = prune_result(&q, &f, EdgeKind::Child);
        prop_assert_eq!(pruned.calls().len(), f.calls().len());
    }

    #[test]
    fn pruning_preserves_answers_after_call_resolution(f in forest_strategy()) {
        // resolve every pending rating to ***** in both the full and the
        // pruned forest; answers must coincide (this is the completeness
        // property the relaxed pruning exists for)
        let q = query();
        let mut full = f.clone();
        let mut pruned = prune_result(&q, &f, EdgeKind::Child);
        let mut stars = Forest::new();
        stars.add_root_text("*****");
        for c in full.calls() {
            full.splice_call(c, &stars);
        }
        for c in pruned.calls() {
            pruned.splice_call(c, &stars);
        }
        prop_assert_eq!(
            eval(&q, &pruned).len(),
            eval(&q, &full).len(),
            "resolved answers diverge"
        );
    }
}
