//! Property tests for the automata/typing substrate:
//! * NFA ≡ reference regex matcher on random expressions,
//! * DFA determinization preserves the language,
//! * prefix/suffix closures behave as closures,
//! * inclusion is sound w.r.t. sampled words,
//! * exact satisfiability ⊆ lenient satisfiability on random schemas.

use axml_schema::{
    function_satisfies, language_includes, parse_schema, Dfa, LabelRe, Nfa, SatMode, Sym,
};
use proptest::prelude::*;

/// Random regexes over a 3-label alphabet + data.
fn re_strategy() -> impl Strategy<Value = LabelRe> {
    let leaf = prop_oneof![
        Just(LabelRe::Epsilon),
        Just(LabelRe::Data),
        Just(LabelRe::sym("a")),
        Just(LabelRe::sym("b")),
        Just(LabelRe::sym("c")),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..3).prop_map(LabelRe::seq),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(LabelRe::alt),
            inner.clone().prop_map(|r| r.star()),
            inner.clone().prop_map(|r| r.plus()),
            inner.prop_map(|r| r.opt()),
        ]
    })
}

fn words(max_len: usize) -> Vec<Vec<Sym>> {
    let alpha = [
        Sym::Name("a".into()),
        Sym::Name("b".into()),
        Sym::Name("c".into()),
        Sym::Name("z".into()), // unmentioned label
        Sym::Data,
    ];
    let mut out: Vec<Vec<Sym>> = vec![vec![]];
    let mut layer: Vec<Vec<Sym>> = vec![vec![]];
    for _ in 0..max_len {
        let mut next = Vec::new();
        for w in &layer {
            for s in &alpha {
                let mut w2 = w.clone();
                w2.push(s.clone());
                next.push(w2);
            }
        }
        out.extend(next.iter().cloned());
        layer = next;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn nfa_matches_reference(re in re_strategy()) {
        let nfa = Nfa::from_re(&re);
        for w in words(3) {
            prop_assert_eq!(nfa.accepts(&w), re.matches(&w), "{} on {:?}", re, w);
        }
    }

    #[test]
    fn dfa_matches_nfa(re in re_strategy()) {
        let nfa = Nfa::from_re(&re);
        let dfa = Dfa::from_nfa(&nfa, &nfa.mentioned_labels());
        for w in words(3) {
            prop_assert_eq!(nfa.accepts(&w), dfa.accepts(&w), "{} on {:?}", re, w);
        }
    }

    #[test]
    fn prefix_closure_accepts_all_prefixes(re in re_strategy()) {
        let nfa = Nfa::from_re(&re);
        let closed = nfa.prefix_closure();
        for w in words(3) {
            if nfa.accepts(&w) {
                for k in 0..=w.len() {
                    prop_assert!(closed.accepts(&w[..k]), "{} prefix {:?}", re, &w[..k]);
                }
            }
            // and the closure accepts nothing that is not a prefix of some
            // accepted word — checked via suffix extension sampling
            if closed.accepts(&w) {
                let extends = words(2)
                    .into_iter()
                    .any(|ext| {
                        let mut full = w.clone();
                        full.extend(ext);
                        nfa.accepts(&full)
                    });
                // the witness extension may be longer than our samples for
                // star-heavy expressions; only check the sound direction
                // when the language is finite-ish — here we simply require
                // consistency when a witness exists in range
                let _ = extends;
            }
        }
    }

    #[test]
    fn suffix_closure_is_concatenation_with_sigma_star(re in re_strategy()) {
        let nfa = Nfa::from_re(&re);
        let closed = nfa.suffix_closure();
        for w in words(3) {
            let expect = (0..=w.len()).any(|k| nfa.accepts(&w[..k]));
            prop_assert_eq!(closed.accepts(&w), expect, "{} on {:?}", re, w);
        }
    }

    #[test]
    fn inclusion_is_sound_on_sampled_words(ra in re_strategy(), rb in re_strategy()) {
        let a = Nfa::from_re(&ra);
        let b = Nfa::from_re(&rb);
        if language_includes(&a, &b) {
            for w in words(3) {
                if b.accepts(&w) {
                    prop_assert!(a.accepts(&w), "{} ⊇ {} violated on {:?}", ra, rb, w);
                }
            }
        } else {
            // not included: intersection with complement nonempty — verify
            // via the reverse check being consistent
            prop_assert!(!language_includes(&a, &b));
        }
    }

    #[test]
    fn intersection_test_is_sound(ra in re_strategy(), rb in re_strategy()) {
        let a = Nfa::from_re(&ra);
        let b = Nfa::from_re(&rb);
        let claimed = a.intersects(&b);
        let witnessed = words(4).into_iter().any(|w| a.accepts(&w) && b.accepts(&w));
        if witnessed {
            prop_assert!(claimed, "{} ∩ {} has witness but test says empty", ra, rb);
        }
        // the converse needs unbounded words; not sampled
    }
}

/// Random small schemas: 3 elements, 2 functions over them.
fn schema_strategy() -> impl Strategy<Value = String> {
    let content = prop_oneof![
        Just("data"),
        Just("e0"),
        Just("e1?"),
        Just("(e0 | e1)"),
        Just("(e0 | f0)*"),
        Just("e0.e1"),
        Just("(data | f1)"),
        Just("e2*"),
    ];
    let out = prop_oneof![
        Just("data"),
        Just("e0*"),
        Just("(e1 | e2)"),
        Just("e2.e2"),
        Just("f1?"),
        Just("any*"),
    ];
    (
        proptest::collection::vec(content, 3),
        proptest::collection::vec(out, 2),
    )
        .prop_map(|(cs, os)| {
            let mut text = String::new();
            for (i, c) in cs.iter().enumerate() {
                text.push_str(&format!("element e{i} = {c}\n"));
            }
            for (i, o) in os.iter().enumerate() {
                text.push_str(&format!("function f{i} = in: data, out: {o}\n"));
            }
            text
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exact_satisfiability_implies_lenient(
        text in schema_strategy(),
        qpick in 0usize..6,
        fpick in 0usize..2,
    ) {
        let schema = parse_schema(&text).unwrap();
        let queries = [
            "/e0",
            "/e0[e1]",
            "/e1/\"v\"",
            "/e2[e0][e1]",
            "/e0//data0",
            "/e0/e1[e2=\"x\"]",
        ];
        let q = axml_query::parse_query(queries[qpick]).unwrap();
        let f = format!("f{fpick}");
        for via in [axml_query::EdgeKind::Child, axml_query::EdgeKind::Descendant] {
            let exact = function_satisfies(&schema, &q, &f, via, SatMode::Exact);
            let lenient = function_satisfies(&schema, &q, &f, via, SatMode::Lenient);
            prop_assert!(!exact || lenient,
                "exact ⊆ lenient violated: {f} vs {} under\n{text}", queries[qpick]);
        }
    }
}
