//! Validation of AXML documents against a schema `τ`.
//!
//! An element node is valid when the word of its children's symbols
//! (element name / `data` / function name) belongs to the language of its
//! content model; a function node is valid when its parameter word belongs
//! to the function's input type. This is the typing discipline of
//! Section 2 ("its input must be properly typed … its result is guaranteed
//! to match the out regular expression").

use crate::nfa::Nfa;
use crate::regex::Sym;
use crate::schema::Schema;
use axml_xml::{Document, NodeId, NodeKind};
use std::collections::HashMap;
use std::fmt;

/// A validation problem at a specific node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// The root element's label does not match the declared root.
    RootMismatch {
        /// What the schema declares.
        expected: String,
        /// What the document has.
        found: String,
    },
    /// An element label with no declaration.
    UndeclaredElement {
        /// The offending node.
        node: NodeId,
        /// Its label.
        label: String,
    },
    /// A call to an undeclared function.
    UndeclaredFunction {
        /// The offending node.
        node: NodeId,
        /// The service name.
        service: String,
    },
    /// An element's children don't match its content model.
    ContentMismatch {
        /// The offending node.
        node: NodeId,
        /// Its label.
        label: String,
        /// The children word that was found.
        found: Vec<String>,
    },
    /// A call's parameters don't match the function input type.
    InputMismatch {
        /// The offending call node.
        node: NodeId,
        /// The service name.
        service: String,
        /// The parameter word that was found.
        found: Vec<String>,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::RootMismatch { expected, found } => {
                write!(f, "root element is <{found}>, schema expects <{expected}>")
            }
            ValidationError::UndeclaredElement { label, .. } => {
                write!(f, "undeclared element <{label}>")
            }
            ValidationError::UndeclaredFunction { service, .. } => {
                write!(f, "undeclared function {service}()")
            }
            ValidationError::ContentMismatch { label, found, .. } => {
                write!(
                    f,
                    "content of <{label}> does not match its model: [{}]",
                    found.join(", ")
                )
            }
            ValidationError::InputMismatch { service, found, .. } => {
                write!(
                    f,
                    "parameters of {service}() do not match its input type: [{}]",
                    found.join(", ")
                )
            }
        }
    }
}

/// Validates a document against a schema, returning every problem found.
pub fn validate(doc: &Document, schema: &Schema) -> Vec<ValidationError> {
    let mut errors = Vec::new();
    let mut nfas: HashMap<String, Nfa> = HashMap::new();

    if let Some(root_label) = &schema.root {
        for &r in doc.roots() {
            if doc.is_data(r) && doc.label(r) != root_label.as_str() {
                errors.push(ValidationError::RootMismatch {
                    expected: root_label.to_string(),
                    found: doc.label(r).to_string(),
                });
            }
        }
    }

    for node in doc.all_nodes() {
        match doc.kind(node) {
            NodeKind::Text(_) => {}
            NodeKind::Element(label) => {
                let Some(content) = schema.element(label.as_str()) else {
                    errors.push(ValidationError::UndeclaredElement {
                        node,
                        label: label.to_string(),
                    });
                    continue;
                };
                let word = child_word(doc, node);
                let nfa = nfas
                    .entry(label.to_string())
                    .or_insert_with(|| Nfa::from_re(content));
                if !nfa.accepts(&word) {
                    errors.push(ValidationError::ContentMismatch {
                        node,
                        label: label.to_string(),
                        found: word.iter().map(|s| s.to_string()).collect(),
                    });
                }
            }
            NodeKind::Call(_, service) => {
                let Some(sig) = schema.function(service.as_str()) else {
                    errors.push(ValidationError::UndeclaredFunction {
                        node,
                        service: service.to_string(),
                    });
                    continue;
                };
                let word = child_word(doc, node);
                let key = format!("fn:{service}");
                let nfa = nfas.entry(key).or_insert_with(|| Nfa::from_re(&sig.input));
                if !nfa.accepts(&word) {
                    errors.push(ValidationError::InputMismatch {
                        node,
                        service: service.to_string(),
                        found: word.iter().map(|s| s.to_string()).collect(),
                    });
                }
            }
        }
    }
    errors
}

/// Checks whether a result *forest* is an output instance of the given
/// type: the word of its root symbols must belong to the type's language.
/// (Subtrees are then checked by [`validate`]-style content checks.)
pub fn forest_matches_type(forest: &Document, ty: &crate::regex::LabelRe) -> bool {
    let word: Vec<Sym> = forest
        .roots()
        .iter()
        .map(|&r| node_sym(forest, r))
        .collect();
    Nfa::from_re(ty).accepts(&word)
}

fn node_sym(doc: &Document, n: NodeId) -> Sym {
    match doc.kind(n) {
        NodeKind::Element(l) => Sym::Name(l.clone()),
        NodeKind::Text(_) => Sym::Data,
        NodeKind::Call(_, svc) => Sym::Name(svc.clone()),
    }
}

fn child_word(doc: &Document, node: NodeId) -> Vec<Sym> {
    doc.children(node)
        .iter()
        .map(|&c| node_sym(doc, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::parse_re;
    use crate::schema::figure2_schema;
    use axml_xml::parse;

    #[test]
    fn valid_figure1_style_document() {
        let d = parse(
            "<hotels>\
               <hotel><name>BW</name><address>75 2nd Av</address>\
                 <rating>*****</rating>\
                 <nearby><restaurant><name>Jo</name><address>2nd Av</address>\
                   <rating><axml:call service=\"getRating\">Jo</axml:call></rating>\
                 </restaurant>\
                 <axml:call service=\"getNearbyRestos\">2nd Av</axml:call>\
                 <museum><name>MoMA</name><address>53rd St</address></museum></nearby>\
               </hotel>\
               <axml:call service=\"getHotels\">NY</axml:call>\
             </hotels>",
        )
        .unwrap();
        let s = figure2_schema();
        let errors = validate(&d, &s);
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn detects_content_mismatch() {
        let d = parse("<hotels><hotel><name>BW</name></hotel></hotels>").unwrap();
        let s = figure2_schema();
        let errors = validate(&d, &s);
        assert!(errors.iter().any(
            |e| matches!(e, ValidationError::ContentMismatch { label, .. } if label == "hotel")
        ));
    }

    #[test]
    fn detects_undeclared_names() {
        let d = parse("<hotels><mystery/></hotels>").unwrap();
        let s = figure2_schema();
        let errors = validate(&d, &s);
        assert!(errors.iter().any(|e| matches!(
            e,
            ValidationError::UndeclaredElement { label, .. } if label == "mystery"
        )));
        // the mystery child also breaks hotels' content model
        assert!(errors
            .iter()
            .any(|e| matches!(e, ValidationError::ContentMismatch { .. })));

        let d = parse("<hotels><axml:call service=\"nope\"/></hotels>").unwrap();
        let errors = validate(&d, &s);
        assert!(errors.iter().any(|e| matches!(
            e,
            ValidationError::UndeclaredFunction { service, .. } if service == "nope"
        )));
    }

    #[test]
    fn detects_bad_call_parameters() {
        // getRating expects a single data parameter
        let d =
            parse("<rating><axml:call service=\"getRating\"><x/></axml:call></rating>").unwrap();
        let s = figure2_schema();
        let errors = validate(&d, &s);
        assert!(errors
            .iter()
            .any(|e| matches!(e, ValidationError::InputMismatch { service, .. } if service == "getRating")));
    }

    #[test]
    fn detects_root_mismatch() {
        let d = parse("<motels/>").unwrap();
        let s = figure2_schema();
        let errors = validate(&d, &s);
        assert!(errors
            .iter()
            .any(|e| matches!(e, ValidationError::RootMismatch { .. })));
    }

    #[test]
    fn forest_type_membership() {
        let f =
            parse("<restaurant><name>A</name><address>B</address><rating>*</rating></restaurant>")
                .unwrap();
        assert!(forest_matches_type(&f, &parse_re("restaurant*").unwrap()));
        assert!(!forest_matches_type(&f, &parse_re("museum*").unwrap()));
        let mixed = parse("<a/><b/>").unwrap();
        assert!(forest_matches_type(&mixed, &parse_re("a.b").unwrap()));
        assert!(forest_matches_type(
            &mixed,
            &crate::regex::LabelRe::any_forest()
        ));
    }

    #[test]
    fn error_messages_render() {
        let d = parse("<motels/>").unwrap();
        let s = figure2_schema();
        for e in validate(&d, &s) {
            assert!(!e.to_string().is_empty());
        }
    }
}
