//! Static termination analysis of the rewriting process.
//!
//! Section 2: "since function invocations may return new data and new
//! function calls, a rewriting may never terminate. This behavior is
//! inherent in the AXML model, and is carefully studied in \[2\], which
//! provides sufficient conditions for termination." This module implements
//! the natural sufficient condition over the schema `τ`: build the
//! *call-reachability graph* — `f → g` when a call to `g` can appear
//! anywhere inside data produced by `f` (directly in `out(f)`, or nested
//! under elements of `out(f)`, recursively) — and check it for cycles
//! reachable from the calls at hand. Acyclic ⇒ every rewriting
//! terminates, with expansion depth bounded by the longest path.

use crate::regex::LabelRe;
use crate::schema::Schema;
use axml_xml::{Document, Label};
use std::collections::{BTreeMap, BTreeSet};

/// The verdict of the static analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Termination {
    /// Every rewriting terminates; nested expansions are at most this deep.
    Terminates {
        /// Longest call chain (1 = calls whose results are call-free).
        max_depth: usize,
    },
    /// A call cycle is reachable: rewritings may diverge
    /// (a *sufficient* condition failed — not a proof of divergence).
    PossiblyDiverges {
        /// One reachable cycle, as a witness.
        cycle: Vec<Label>,
    },
    /// A reachable function is undeclared: nothing can be guaranteed.
    Unknown {
        /// The undeclared function name.
        function: Label,
    },
}

/// Everything (elements and functions) that can occur anywhere inside a
/// derived instance of `re`, computed to a fixpoint over the schema.
fn deep_closure(schema: &Schema, re: &LabelRe) -> (BTreeSet<Label>, BTreeSet<Label>, bool) {
    let mut elements: BTreeSet<Label> = BTreeSet::new();
    let mut functions: BTreeSet<Label> = BTreeSet::new();
    let mut any = false;
    let mut work: Vec<LabelRe> = vec![re.clone()];
    while let Some(r) = work.pop() {
        let occ = r.occurring();
        any |= occ.any;
        for name in occ.names {
            if schema.is_function(name.as_str()) {
                if functions.insert(name.clone()) {
                    if let Some(sig) = schema.function(name.as_str()) {
                        work.push(sig.output.clone());
                    }
                }
            } else if elements.insert(name.clone()) {
                if let Some(content) = schema.element(name.as_str()) {
                    work.push(content.clone());
                }
            }
        }
    }
    (elements, functions, any)
}

/// The call-reachability graph: for every declared function, which
/// functions can appear anywhere in data it produces.
pub fn call_graph(schema: &Schema) -> BTreeMap<Label, BTreeSet<Label>> {
    schema
        .functions()
        .map(|sig| {
            let (_, funs, _) = deep_closure(schema, &sig.output);
            (sig.name.clone(), funs)
        })
        .collect()
}

/// Checks termination for rewritings starting from calls to the given
/// functions.
///
/// ```
/// use axml_schema::{check_termination, parse_schema, Termination};
///
/// let schema = parse_schema(
///     "function f = in: data, out: item*\nelement item = data\n",
/// ).unwrap();
/// assert_eq!(
///     check_termination(&schema, &["f".into()]),
///     Termination::Terminates { max_depth: 1 },
/// );
/// ```
pub fn check_termination(schema: &Schema, roots: &[Label]) -> Termination {
    let graph = call_graph(schema);
    // depth-first search with colors, reporting a cycle witness
    // absent from the map = unvisited ("white")
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        Grey,
        Black,
    }
    let mut color: BTreeMap<Label, Color> = BTreeMap::new();
    let mut depth: BTreeMap<Label, usize> = BTreeMap::new();

    fn visit(
        f: &Label,
        schema: &Schema,
        graph: &BTreeMap<Label, BTreeSet<Label>>,
        color: &mut BTreeMap<Label, Color>,
        depth: &mut BTreeMap<Label, usize>,
        stack: &mut Vec<Label>,
    ) -> Result<usize, Termination> {
        if !schema.is_function(f.as_str()) {
            return Err(Termination::Unknown {
                function: f.clone(),
            });
        }
        match color.get(f) {
            Some(Color::Black) => return Ok(depth[f]),
            Some(Color::Grey) => {
                // cycle: slice the stack from the first occurrence of f
                let pos = stack.iter().position(|x| x == f).unwrap_or(0);
                let mut cycle = stack[pos..].to_vec();
                cycle.push(f.clone());
                return Err(Termination::PossiblyDiverges { cycle });
            }
            _ => {}
        }
        color.insert(f.clone(), Color::Grey);
        stack.push(f.clone());
        let mut max_child = 0usize;
        if let Some(succs) = graph.get(f) {
            for g in succs {
                max_child = max_child.max(visit(g, schema, graph, color, depth, stack)?);
            }
        }
        stack.pop();
        color.insert(f.clone(), Color::Black);
        depth.insert(f.clone(), max_child + 1);
        Ok(max_child + 1)
    }

    let mut max_depth = 0usize;
    let mut stack = Vec::new();
    for f in roots {
        match visit(f, schema, &graph, &mut color, &mut depth, &mut stack) {
            Ok(d) => max_depth = max_depth.max(d),
            Err(verdict) => return verdict,
        }
    }
    Termination::Terminates { max_depth }
}

/// Checks termination for every call currently embedded in a document.
pub fn check_document(schema: &Schema, doc: &Document) -> Termination {
    let mut roots: Vec<Label> = doc
        .calls()
        .into_iter()
        .map(|c| doc.call_info(c).expect("calls() yields calls").1.clone())
        .collect();
    roots.sort();
    roots.dedup();
    check_termination(schema, &roots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{figure2_schema, parse_schema};
    use axml_xml::parse;

    #[test]
    fn figure2_schema_terminates() {
        let s = figure2_schema();
        let roots: Vec<Label> = s.functions().map(|f| f.name.clone()).collect();
        match check_termination(&s, &roots) {
            Termination::Terminates { max_depth } => {
                // getHotels → getNearbyRestos (inside nearby) → getRating
                // (inside restaurant ratings): chain length 3
                assert_eq!(max_depth, 3);
            }
            other => panic!("expected termination, got {other:?}"),
        }
    }

    #[test]
    fn direct_recursion_detected() {
        let s =
            parse_schema("function f = in: data, out: (item.f?)\nelement item = data\n").unwrap();
        match check_termination(&s, &["f".into()]) {
            Termination::PossiblyDiverges { cycle } => {
                assert_eq!(cycle, vec![Label::from("f"), Label::from("f")]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mutual_recursion_through_elements_detected() {
        // f returns a wrap element whose content may hold g; g returns f
        let s = parse_schema(
            "function f = in: data, out: wrap\n\
             function g = in: data, out: f?\n\
             element wrap = (data | g)\n",
        )
        .unwrap();
        match check_termination(&s, &["f".into()]) {
            Termination::PossiblyDiverges { cycle } => {
                // the deep closure exposes the f→…→f loop directly; the
                // witness is a cycle through f (g's participation is
                // collapsed by the closure)
                assert!(cycle.contains(&Label::from("f")));
                assert!(cycle.len() >= 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unreachable_cycles_do_not_matter() {
        let s = parse_schema(
            "function safe = in: data, out: leaf\n\
             function loopy = in: data, out: loopy?\n\
             element leaf = data\n",
        )
        .unwrap();
        assert_eq!(
            check_termination(&s, &["safe".into()]),
            Termination::Terminates { max_depth: 1 }
        );
        assert!(matches!(
            check_termination(&s, &["loopy".into()]),
            Termination::PossiblyDiverges { .. }
        ));
    }

    #[test]
    fn undeclared_functions_are_unknown() {
        let s = figure2_schema();
        assert_eq!(
            check_termination(&s, &["mystery".into()]),
            Termination::Unknown {
                function: "mystery".into()
            }
        );
    }

    #[test]
    fn document_level_check() {
        let s = figure2_schema();
        let d = parse("<hotels><axml:call service=\"getHotels\">NY</axml:call></hotels>").unwrap();
        assert!(matches!(
            check_document(&s, &d),
            Termination::Terminates { max_depth: 3 }
        ));
        let empty = parse("<hotels/>").unwrap();
        assert_eq!(
            check_document(&s, &empty),
            Termination::Terminates { max_depth: 0 }
        );
    }

    #[test]
    fn depth_counts_nesting_chains() {
        let s = parse_schema(
            "function a = in: data, out: b?\n\
             function b = in: data, out: c?\n\
             function c = in: data, out: data\n",
        )
        .unwrap();
        assert_eq!(
            check_termination(&s, &["a".into()]),
            Termination::Terminates { max_depth: 3 }
        );
    }
}
