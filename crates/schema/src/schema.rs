//! The schema `τ` of Figure 2: function signatures (input/output types) and
//! element content models, in a DTD-like syntax.
//!
//! Concrete syntax (one declaration per line, `#` comments):
//!
//! ```text
//! # the night-life schema of Figure 2
//! root hotels
//! function getHotels        = in: data, out: hotel*
//! function getRating        = in: data, out: data
//! function getNearbyRestos  = in: data, out: restaurant*
//! element hotels     = (hotel | getHotels)*
//! element hotel      = name.address.rating.nearby
//! element rating     = (data | getRating)
//! element name       = data
//! ```

use crate::regex::{parse_re, LabelRe};
use axml_xml::Label;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A Web-service signature: the input and output types of Figure 2.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FunSig {
    /// Service name.
    pub name: Label,
    /// Type of the parameter forest.
    pub input: LabelRe,
    /// Type of the result forest.
    pub output: LabelRe,
}

/// A schema `τ`: element content models plus function signatures.
#[derive(Clone, Debug, Default)]
pub struct Schema {
    elements: BTreeMap<Label, LabelRe>,
    functions: BTreeMap<Label, FunSig>,
    /// Expected root element, if declared.
    pub root: Option<Label>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Declares an element content model.
    pub fn add_element(&mut self, name: impl Into<Label>, content: LabelRe) {
        self.elements.insert(name.into(), content);
    }

    /// Declares a function signature.
    pub fn add_function(&mut self, name: impl Into<Label>, input: LabelRe, output: LabelRe) {
        let name = name.into();
        self.functions.insert(
            name.clone(),
            FunSig {
                name,
                input,
                output,
            },
        );
    }

    /// The content model of an element, if declared.
    pub fn element(&self, name: &str) -> Option<&LabelRe> {
        self.elements.get(name)
    }

    /// The signature of a function, if declared.
    pub fn function(&self, name: &str) -> Option<&FunSig> {
        self.functions.get(name)
    }

    /// Is the name a declared function?
    pub fn is_function(&self, name: &str) -> bool {
        self.functions.contains_key(name)
    }

    /// Iterates over declared elements.
    pub fn elements(&self) -> impl Iterator<Item = (&Label, &LabelRe)> {
        self.elements.iter()
    }

    /// Iterates over declared functions.
    pub fn functions(&self) -> impl Iterator<Item = &FunSig> {
        self.functions.values()
    }

    /// The *expansion closure* of a type: every symbol that can appear as a
    /// top-level node of a derived instance of `re` — symbols occurring in
    /// words of `re`, plus, for every function symbol, the closure of its
    /// output type (a call may be expanded in a derived instance), computed
    /// to a fixpoint. Function symbols stay in the result (a call may also
    /// remain unexpanded).
    pub fn expansion_closure(&self, re: &LabelRe) -> ClosureSet {
        let mut out = ClosureSet::default();
        let mut work: Vec<Label> = Vec::new();
        let occ = re.occurring();
        out.data |= occ.data;
        out.any |= occ.any;
        for name in occ.names {
            if self.is_function(name.as_str()) {
                if out.functions.insert(name.clone()) {
                    work.push(name);
                }
            } else {
                out.elements.insert(name);
            }
        }
        while let Some(f) = work.pop() {
            let sig = self.functions.get(&f).expect("worklist holds functions");
            let occ = sig.output.occurring();
            out.data |= occ.data;
            out.any |= occ.any;
            for name in occ.names {
                if self.is_function(name.as_str()) {
                    if out.functions.insert(name.clone()) {
                        work.push(name);
                    }
                } else {
                    out.elements.insert(name);
                }
            }
        }
        out
    }

    /// Names referenced anywhere in the schema (elements, functions,
    /// symbols inside types).
    pub fn referenced_names(&self) -> BTreeSet<Label> {
        let mut out: BTreeSet<Label> = BTreeSet::new();
        for (name, re) in &self.elements {
            out.insert(name.clone());
            out.extend(re.names());
        }
        for sig in self.functions.values() {
            out.insert(sig.name.clone());
            out.extend(sig.input.names());
            out.extend(sig.output.names());
        }
        out
    }

    /// Sanity check: every name referenced inside a type is declared as an
    /// element or a function (returns the undeclared names).
    pub fn undeclared_names(&self) -> Vec<Label> {
        let mut missing = Vec::new();
        for name in self.referenced_names() {
            if !self.elements.contains_key(&name) && !self.functions.contains_key(&name) {
                missing.push(name);
            }
        }
        missing
    }
}

/// Result of [`Schema::expansion_closure`]: which symbols can appear at a
/// position after any number of call expansions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClosureSet {
    /// Element names that can appear.
    pub elements: BTreeSet<Label>,
    /// Function names that can appear (unexpanded calls).
    pub functions: BTreeSet<Label>,
    /// Whether a data value can appear.
    pub data: bool,
    /// Whether an `any`-typed position occurs (everything can appear).
    pub any: bool,
}

impl ClosureSet {
    /// Can an element with this name appear?
    pub fn has_element(&self, name: &str) -> bool {
        self.any || self.elements.contains(name)
    }

    /// Can a call to this function appear?
    pub fn has_function(&self, name: &str) -> bool {
        self.any || self.functions.contains(name)
    }

    /// Can a data value appear?
    pub fn has_data(&self) -> bool {
        self.any || self.data
    }
}

/// A schema-text parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for SchemaParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schema parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for SchemaParseError {}

/// Parses the line-based schema syntax described in the module docs.
pub fn parse_schema(input: &str) -> Result<Schema, SchemaParseError> {
    let mut schema = Schema::new();
    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |m: String| SchemaParseError {
            line: lineno + 1,
            message: m,
        };
        if let Some(rest) = line.strip_prefix("root ") {
            schema.root = Some(rest.trim().into());
        } else if let Some(rest) = line.strip_prefix("element ") {
            let (name, re_src) = rest
                .split_once('=')
                .ok_or_else(|| err("element declaration needs '='".into()))?;
            let re = parse_re(re_src.trim()).map_err(err)?;
            schema.add_element(name.trim(), re);
        } else if let Some(rest) = line.strip_prefix("function ") {
            let (name, sig_src) = rest
                .split_once('=')
                .ok_or_else(|| err("function declaration needs '='".into()))?;
            let sig = sig_src.trim();
            let body = sig
                .strip_prefix("in:")
                .ok_or_else(|| err("function signature must start with 'in:'".into()))?;
            let (in_src, out_src) = body
                .split_once(", out:")
                .or_else(|| body.split_once(",out:"))
                .ok_or_else(|| err("function signature needs ', out:'".into()))?;
            let input = parse_re(in_src.trim()).map_err(&err)?;
            let output = parse_re(out_src.trim()).map_err(&err)?;
            schema.add_function(name.trim(), input, output);
        } else {
            return Err(err(format!("unrecognized declaration: {line:?}")));
        }
    }
    Ok(schema)
}

/// The night-life schema of Figure 2 (with the OCR-eaten element names
/// restored), used by examples and tests throughout the workspace.
pub fn figure2_schema() -> Schema {
    parse_schema(
        "root hotels\n\
         function getHotels       = in: data, out: hotel*\n\
         function getRating       = in: data, out: data\n\
         function getNearbyRestos = in: data, out: restaurant*\n\
         function getNearbyMuseums= in: data, out: museum*\n\
         element hotels     = (hotel | getHotels)*\n\
         element hotel      = name.address.rating.nearby\n\
         element nearby     = (restaurant | getNearbyRestos)*.(museum | getNearbyMuseums)*\n\
         element restaurant = name.address.rating\n\
         element museum     = name.address\n\
         element name       = data\n\
         element address    = data\n\
         element rating     = (data | getRating)\n",
    )
    .expect("figure 2 schema is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Sym;

    #[test]
    fn parses_figure2() {
        let s = figure2_schema();
        assert_eq!(s.root.as_ref().unwrap().as_str(), "hotels");
        assert!(s.is_function("getRating"));
        assert!(!s.is_function("hotel"));
        assert!(s.element("hotel").is_some());
        let sig = s.function("getNearbyRestos").unwrap();
        assert!(sig.output.matches(&[
            Sym::Name("restaurant".into()),
            Sym::Name("restaurant".into())
        ]));
        assert!(s.undeclared_names().is_empty());
    }

    #[test]
    fn expansion_closure_follows_function_outputs() {
        let s = figure2_schema();
        // the hotels content model can produce hotel elements directly or
        // via getHotels
        let c = s.expansion_closure(s.element("hotels").unwrap());
        assert!(c.has_element("hotel"));
        assert!(c.has_function("getHotels"));
        assert!(!c.has_element("restaurant"));
        // rating can hold data directly or via getRating
        let c = s.expansion_closure(s.element("rating").unwrap());
        assert!(c.has_data());
        assert!(c.has_function("getRating"));
        assert!(!c.has_element("hotel"));
    }

    #[test]
    fn expansion_closure_is_transitive() {
        let mut s = Schema::new();
        s.add_function("f", LabelRe::Data, parse_re("g").unwrap());
        s.add_function("g", LabelRe::Data, parse_re("a").unwrap());
        s.add_element("a", LabelRe::Data);
        let c = s.expansion_closure(&parse_re("f").unwrap());
        assert!(c.has_function("f"));
        assert!(c.has_function("g"));
        assert!(c.has_element("a"));
    }

    #[test]
    fn expansion_closure_handles_recursive_types() {
        let mut s = Schema::new();
        // f's output may contain f again
        s.add_function("f", LabelRe::Data, parse_re("item.f?").unwrap());
        s.add_element("item", LabelRe::Data);
        let c = s.expansion_closure(&parse_re("f").unwrap());
        assert!(c.has_element("item"));
        assert!(c.has_function("f"));
    }

    #[test]
    fn any_closure_covers_everything() {
        let s = figure2_schema();
        let c = s.expansion_closure(&LabelRe::any_forest());
        assert!(c.has_element("whatever"));
        assert!(c.has_function("whatever"));
        assert!(c.has_data());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = parse_schema("element a = data\nbogus line\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_schema("function f = out: data\n").unwrap_err();
        assert!(e.message.contains("in:"));
        let e = parse_schema("element x = (unclosed\n").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn undeclared_names_detected() {
        let s = parse_schema("element a = b.c\nelement b = data\n").unwrap();
        let missing = s.undeclared_names();
        assert_eq!(missing, vec![Label::from("c")]);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let s = parse_schema("# header\n\nelement a = data # trailing\n").unwrap();
        assert!(s.element("a").is_some());
    }
}
