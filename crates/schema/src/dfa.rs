//! Deterministic automata over label symbols: subset construction,
//! complementation and exact language inclusion.
//!
//! This is the machinery behind the containment-based elimination of
//! redundant call-finding queries that Section 4.1 delegates to the
//! literature ("eliminate redundant queries using containment checking"):
//! for *linear* path queries, containment is exactly regular-language
//! inclusion, which we decide by `L(sub) ∩ ¬L(sup) = ∅`.
//!
//! The label alphabet is unbounded; determinization works over the finite
//! *relevant* alphabet — the labels mentioned by the automata involved —
//! plus the `data` symbol and one `other` pseudo-symbol standing for every
//! unmentioned label. Since transition tests (`Name`/`Data`/`Any`) cannot
//! distinguish unmentioned labels from one another, this is sound and
//! complete for emptiness/inclusion.

use crate::nfa::{Nfa, TransTest};
use crate::regex::Sym;
use axml_xml::Label;
use std::collections::{BTreeSet, HashMap};

/// A complete DFA over a finite symbol universe.
#[derive(Clone, Debug)]
pub struct Dfa {
    /// Concrete labels: symbol indices `0..labels.len()`.
    labels: Vec<Label>,
    /// label → symbol index, the O(1) step function of [`Dfa::accepts`]
    /// (labels are sorted and distinct, so the map mirrors `labels`).
    label_index: HashMap<Label, usize>,
    /// `trans[state][symbol]` — complete (a dead state absorbs misses).
    /// Symbols: `0..k` = labels, `k` = data, `k+1` = other.
    trans: Vec<Vec<usize>>,
    accept: Vec<bool>,
    start: usize,
}

impl Dfa {
    /// Index of the `data` symbol.
    fn data_sym(&self) -> usize {
        self.labels.len()
    }

    /// Index of the `other` pseudo-symbol.
    fn other_sym(&self) -> usize {
        self.labels.len() + 1
    }

    /// Number of symbols (labels + data + other).
    fn num_syms(&self) -> usize {
        self.labels.len() + 2
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.trans.len()
    }

    /// Determinizes an NFA over the given label universe (which must
    /// contain every label the NFA mentions).
    pub fn from_nfa(nfa: &Nfa, universe: &[Label]) -> Dfa {
        let labels: Vec<Label> = {
            let mut v = universe.to_vec();
            v.extend(nfa.mentioned_labels());
            v.sort();
            v.dedup();
            v
        };
        let k = labels.len();
        let num_syms = k + 2;
        let accepts_sym = |test: &TransTest, sym: usize| -> bool {
            match test {
                TransTest::AnySym => true,
                TransTest::Data => sym == k,
                TransTest::Name(l) => sym < k && labels[sym] == *l,
            }
        };

        let start_set: BTreeSet<usize> = nfa.start.iter().copied().collect();
        let mut states: Vec<BTreeSet<usize>> = vec![start_set.clone()];
        let mut index: HashMap<BTreeSet<usize>, usize> = HashMap::new();
        index.insert(start_set, 0);
        let mut trans: Vec<Vec<usize>> = Vec::new();
        let mut accept: Vec<bool> = Vec::new();
        let mut i = 0;
        while i < states.len() {
            let cur = states[i].clone();
            accept.push(cur.iter().any(|&s| nfa.accept[s]));
            let mut row = Vec::with_capacity(num_syms);
            for sym in 0..num_syms {
                let mut next: BTreeSet<usize> = BTreeSet::new();
                for &s in &cur {
                    for (t, target) in &nfa.edges[s] {
                        if accepts_sym(t, sym) {
                            next.insert(*target);
                        }
                    }
                }
                let id = match index.get(&next) {
                    Some(&id) => id,
                    None => {
                        let id = states.len();
                        index.insert(next.clone(), id);
                        states.push(next);
                        id
                    }
                };
                row.push(id);
            }
            trans.push(row);
            i += 1;
        }
        let label_index = labels
            .iter()
            .enumerate()
            .map(|(i, l)| (l.clone(), i))
            .collect();
        Dfa {
            labels,
            label_index,
            trans,
            accept,
            start: 0,
        }
    }

    /// The complement DFA (same universe).
    pub fn complement(&self) -> Dfa {
        Dfa {
            labels: self.labels.clone(),
            label_index: self.label_index.clone(),
            trans: self.trans.clone(),
            accept: self.accept.iter().map(|a| !a).collect(),
            start: self.start,
        }
    }

    /// Does the DFA accept the word?
    pub fn accepts(&self, word: &[Sym]) -> bool {
        let mut s = self.start;
        for sym in word {
            let idx = match sym {
                Sym::Data => self.data_sym(),
                Sym::Name(l) => self.label_index.get(l).copied().unwrap_or(self.other_sym()),
            };
            s = self.trans[s][idx];
        }
        self.accept[s]
    }

    /// Is `L(self) = ∅`?
    pub fn is_empty(&self) -> bool {
        let mut seen = vec![false; self.num_states()];
        let mut stack = vec![self.start];
        seen[self.start] = true;
        while let Some(s) = stack.pop() {
            if self.accept[s] {
                return false;
            }
            for &t in &self.trans[s] {
                if !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
        true
    }

    /// Is `L(self) ∩ L(dfa2) = ∅`? Requires identical symbol universes
    /// (both built over the same label set).
    fn intersection_empty(&self, other: &Dfa) -> bool {
        assert_eq!(self.labels, other.labels, "universes must match");
        let n2 = other.num_states();
        let mut seen = vec![false; self.num_states() * n2];
        let idx = |a: usize, b: usize| a * n2 + b;
        let mut stack = vec![(self.start, other.start)];
        seen[idx(self.start, other.start)] = true;
        while let Some((a, b)) = stack.pop() {
            if self.accept[a] && other.accept[b] {
                return false;
            }
            for sym in 0..self.num_syms() {
                let (a2, b2) = (self.trans[a][sym], other.trans[b][sym]);
                if !seen[idx(a2, b2)] {
                    seen[idx(a2, b2)] = true;
                    stack.push((a2, b2));
                }
            }
        }
        true
    }
}

/// Exact language inclusion `L(sub) ⊆ L(sup)` for two NFAs (with wildcard
/// transitions), via `L(sub) ∩ ¬L(sup) = ∅` over the joint alphabet.
///
/// ```
/// use axml_schema::{language_includes, parse_re, Nfa};
///
/// let any_mix = Nfa::from_re(&parse_re("(a | b)*").unwrap());
/// let abba = Nfa::from_re(&parse_re("a.b.b.a").unwrap());
/// assert!(language_includes(&any_mix, &abba));
/// assert!(!language_includes(&abba, &any_mix));
/// ```
pub fn language_includes(sup: &Nfa, sub: &Nfa) -> bool {
    let mut universe = sup.mentioned_labels();
    universe.extend(sub.mentioned_labels());
    universe.sort();
    universe.dedup();
    let dsub = Dfa::from_nfa(sub, &universe);
    let dsup = Dfa::from_nfa(sup, &universe);
    dsub.intersection_empty(&dsup.complement())
}

/// Exact language equivalence.
pub fn language_equal(a: &Nfa, b: &Nfa) -> bool {
    language_includes(a, b) && language_includes(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::parse_re;

    fn nfa(src: &str) -> Nfa {
        Nfa::from_re(&parse_re(src).unwrap())
    }

    fn n(s: &str) -> Sym {
        Sym::Name(s.into())
    }

    #[test]
    fn determinization_preserves_language() {
        for src in ["a.b", "(a|b)*", "a*.b", "any.a", "data.(a|data)*", "()"] {
            let nf = nfa(src);
            let universe = nf.mentioned_labels();
            let df = Dfa::from_nfa(&nf, &universe);
            // enumerate words over {a,b,c,data} up to length 3
            let alpha = [n("a"), n("b"), n("c"), Sym::Data];
            let mut words: Vec<Vec<Sym>> = vec![vec![]];
            for _ in 0..3 {
                let mut next = Vec::new();
                for w in &words {
                    for s in &alpha {
                        let mut w2 = w.clone();
                        w2.push(s.clone());
                        next.push(w2);
                    }
                }
                words.extend(next);
            }
            for w in words {
                assert_eq!(nf.accepts(&w), df.accepts(&w), "{src} on {w:?}");
            }
        }
    }

    #[test]
    fn complement_flips_membership() {
        let nf = nfa("a.b");
        let df = Dfa::from_nfa(&nf, &nf.mentioned_labels());
        let co = df.complement();
        assert!(df.accepts(&[n("a"), n("b")]));
        assert!(!co.accepts(&[n("a"), n("b")]));
        assert!(co.accepts(&[n("a")]));
        assert!(co.accepts(&[]));
        assert!(co.accepts(&[n("zzz")])); // unmentioned labels too
    }

    #[test]
    fn inclusion_basics() {
        assert!(language_includes(&nfa("(a|b)*"), &nfa("a.b.a")));
        assert!(language_includes(&nfa("any*"), &nfa("(a|b)*.data")));
        assert!(!language_includes(&nfa("a*"), &nfa("a*.b")));
        assert!(language_includes(&nfa("a?.b"), &nfa("b")));
        assert!(!language_includes(&nfa("b"), &nfa("a?.b")));
        // data vs names
        assert!(language_includes(&nfa("any"), &nfa("data")));
        assert!(!language_includes(&nfa("data"), &nfa("any")));
    }

    #[test]
    fn inclusion_with_unmentioned_labels() {
        // any matches labels outside both automata's alphabets: a* does NOT
        // include any* even though they agree on the mentioned labels
        assert!(!language_includes(&nfa("a*"), &nfa("any*")));
        assert!(language_includes(&nfa("any*"), &nfa("a*")));
    }

    #[test]
    fn equivalence() {
        assert!(language_equal(&nfa("a.a*"), &nfa("a+")));
        assert!(language_equal(&nfa("(a|b)"), &nfa("(b|a)")));
        assert!(!language_equal(&nfa("a*"), &nfa("a+")));
    }

    #[test]
    fn linear_path_inclusion() {
        use axml_query::parse_query;
        use axml_query::LinearPath;
        let lin = |q: &str| {
            let p = parse_query(q).unwrap();
            let last = p.result_nodes()[0];
            Nfa::from_linear_path(&LinearPath::to_node(&p, last, true))
        };
        // /a//b ⊇ /a/b and /a//b ⊇ /a/x/b
        assert!(language_includes(&lin("/a//b"), &lin("/a/b")));
        assert!(language_includes(&lin("/a//b"), &lin("/a/x/b")));
        assert!(!language_includes(&lin("/a/b"), &lin("/a//b")));
        // //b ⊇ /a//b
        assert!(language_includes(&lin("//b"), &lin("/a//b")));
        // wildcards
        assert!(language_includes(&lin("/a/*"), &lin("/a/b")));
        assert!(!language_includes(&lin("/a/b"), &lin("/a/*")));
    }
}
