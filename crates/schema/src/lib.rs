#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # axml-schema — typing substrate for Active XML
//!
//! The schema formalism `τ` of Figure 2 of *Lazy Query Evaluation for
//! Active XML* (SIGMOD 2004): regular expressions over labels, function
//! signatures (input/output types) and element content models, plus:
//!
//! * NFAs with wildcard transitions implementing the automata tests of
//!   Proposition 3 (may-influence) and condition (✳) (independence),
//! * document validation against a schema,
//! * function **satisfiability** w.r.t. query subtrees (Section 5), in an
//!   exact (coverage-fixpoint) and a lenient (graph-schema, §6.1) variant.

pub mod dfa;
pub mod nfa;
pub mod regex;
pub mod sat;
pub mod schema;
pub mod termination;
pub mod validate;

pub use dfa::{language_equal, language_includes, Dfa};
pub use nfa::{Nfa, SymDfa, SymNfa, TransTest};
pub use regex::{parse_re, LabelRe, Occurring, Sym};
pub use sat::{function_satisfies, SatMode, Satisfier};
pub use schema::{figure2_schema, parse_schema, ClosureSet, FunSig, Schema, SchemaParseError};
pub use termination::{call_graph, check_document, check_termination, Termination};
pub use validate::{forest_matches_type, validate, ValidationError};
