//! Regular expressions over node labels — the building block of the
//! DTD-like schemas of Figure 2 (function input/output types and element
//! content models).
//!
//! The alphabet is the set of element/function names plus the special
//! `data` symbol (a data-value child). The expression `any` denotes any
//! single symbol and `any*` (written `any*` or used as an output type)
//! stands for the unconstrained type of Section 3.

use axml_xml::Label;
use std::fmt;

/// A symbol of the content alphabet: what one child of a node can be.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sym {
    /// An element (or, inside schemas, a function) name.
    Name(Label),
    /// A data value child (the `data` keyword).
    Data,
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sym::Name(l) => write!(f, "{l}"),
            Sym::Data => write!(f, "data"),
        }
    }
}

/// A regular expression over label symbols.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LabelRe {
    /// The empty language.
    Empty,
    /// The empty word.
    Epsilon,
    /// A single `data` child.
    Data,
    /// Any single symbol (element name, function name or data).
    Any,
    /// A single child with the given name.
    Sym(Label),
    /// Concatenation.
    Seq(Vec<LabelRe>),
    /// Alternation.
    Alt(Vec<LabelRe>),
    /// Kleene star.
    Star(Box<LabelRe>),
    /// One or more.
    Plus(Box<LabelRe>),
    /// Zero or one.
    Opt(Box<LabelRe>),
}

impl LabelRe {
    /// A symbol expression.
    pub fn sym(name: impl Into<Label>) -> Self {
        LabelRe::Sym(name.into())
    }

    /// Concatenation helper.
    pub fn seq(parts: Vec<LabelRe>) -> Self {
        match parts.len() {
            0 => LabelRe::Epsilon,
            1 => parts.into_iter().next().unwrap(),
            _ => LabelRe::Seq(parts),
        }
    }

    /// Alternation helper.
    pub fn alt(parts: Vec<LabelRe>) -> Self {
        match parts.len() {
            0 => LabelRe::Empty,
            1 => parts.into_iter().next().unwrap(),
            _ => LabelRe::Alt(parts),
        }
    }

    /// `re*`
    pub fn star(self) -> Self {
        LabelRe::Star(Box::new(self))
    }

    /// `re+`
    pub fn plus(self) -> Self {
        LabelRe::Plus(Box::new(self))
    }

    /// `re?`
    pub fn opt(self) -> Self {
        LabelRe::Opt(Box::new(self))
    }

    /// The unconstrained type `any*` (Section 3 assumes it for all
    /// functions before typing is introduced).
    pub fn any_forest() -> Self {
        LabelRe::Star(Box::new(LabelRe::Any))
    }

    /// Whether ε ∈ L(self).
    pub fn nullable(&self) -> bool {
        match self {
            LabelRe::Empty | LabelRe::Data | LabelRe::Any | LabelRe::Sym(_) => false,
            LabelRe::Epsilon => true,
            LabelRe::Seq(parts) => parts.iter().all(|p| p.nullable()),
            LabelRe::Alt(parts) => parts.iter().any(|p| p.nullable()),
            LabelRe::Star(_) | LabelRe::Opt(_) => true,
            LabelRe::Plus(p) => p.nullable(),
        }
    }

    /// All names syntactically occurring in the expression.
    pub fn names(&self) -> Vec<Label> {
        let mut out = Vec::new();
        self.collect_names(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_names(&self, out: &mut Vec<Label>) {
        match self {
            LabelRe::Sym(l) => out.push(l.clone()),
            LabelRe::Seq(ps) | LabelRe::Alt(ps) => {
                for p in ps {
                    p.collect_names(out);
                }
            }
            LabelRe::Star(p) | LabelRe::Plus(p) | LabelRe::Opt(p) => p.collect_names(out),
            _ => {}
        }
    }

    /// The symbols that occur in at least one word of the language
    /// (syntactic occurrence pruned of `Empty` branches). `None` in the
    /// data slot means `data` cannot occur; the boolean reports whether
    /// `Any` occurs (wildcard position).
    pub fn occurring(&self) -> Occurring {
        match self {
            LabelRe::Empty | LabelRe::Epsilon => Occurring::default(),
            LabelRe::Data => Occurring {
                data: true,
                ..Default::default()
            },
            LabelRe::Any => Occurring {
                any: true,
                ..Default::default()
            },
            LabelRe::Sym(l) => Occurring {
                names: vec![l.clone()],
                ..Default::default()
            },
            LabelRe::Seq(ps) => {
                // a symbol occurs in some word of a concatenation iff every
                // factor has a nonempty language and the symbol occurs in
                // some factor
                if ps.iter().any(|p| p.language_empty()) {
                    Occurring::default()
                } else {
                    ps.iter()
                        .map(|p| p.occurring())
                        .fold(Occurring::default(), Occurring::union)
                }
            }
            LabelRe::Alt(ps) => ps
                .iter()
                .map(|p| p.occurring())
                .fold(Occurring::default(), Occurring::union),
            LabelRe::Star(p) | LabelRe::Plus(p) | LabelRe::Opt(p) => p.occurring(),
        }
    }

    /// Whether L(self) = ∅.
    pub fn language_empty(&self) -> bool {
        match self {
            LabelRe::Empty => true,
            LabelRe::Epsilon | LabelRe::Data | LabelRe::Any | LabelRe::Sym(_) => false,
            LabelRe::Seq(ps) => ps.iter().any(|p| p.language_empty()),
            LabelRe::Alt(ps) => ps.iter().all(|p| p.language_empty()),
            LabelRe::Star(_) | LabelRe::Opt(_) => false, // contain ε
            LabelRe::Plus(p) => p.language_empty(),
        }
    }

    /// Reference membership test by structural recursion (used to validate
    /// the NFA translation in tests; exponential, test-only quality).
    pub fn matches(&self, word: &[Sym]) -> bool {
        match self {
            LabelRe::Empty => false,
            LabelRe::Epsilon => word.is_empty(),
            LabelRe::Data => word.len() == 1 && word[0] == Sym::Data,
            LabelRe::Any => word.len() == 1,
            LabelRe::Sym(l) => word.len() == 1 && matches!(&word[0], Sym::Name(n) if n == l),
            LabelRe::Seq(ps) => match ps.split_first() {
                None => word.is_empty(),
                Some((h, t)) => (0..=word.len())
                    .any(|k| h.matches(&word[..k]) && LabelRe::Seq(t.to_vec()).matches(&word[k..])),
            },
            LabelRe::Alt(ps) => ps.iter().any(|p| p.matches(word)),
            LabelRe::Star(p) => {
                word.is_empty()
                    || (1..=word.len()).any(|k| p.matches(&word[..k]) && self.matches(&word[k..]))
            }
            // p+ = p · p*; the first factor may itself match ε (e.g. ε+)
            LabelRe::Plus(p) => (0..=word.len())
                .any(|k| p.matches(&word[..k]) && LabelRe::Star(p.clone()).matches(&word[k..])),
            LabelRe::Opt(p) => word.is_empty() || p.matches(word),
        }
    }
}

/// Which symbols occur in some word of a language (see
/// [`LabelRe::occurring`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Occurring {
    /// Concrete names occurring.
    pub names: Vec<Label>,
    /// Whether `data` occurs.
    pub data: bool,
    /// Whether the wildcard `any` occurs.
    pub any: bool,
}

impl Occurring {
    fn union(mut self, other: Occurring) -> Occurring {
        self.names.extend(other.names);
        self.names.sort();
        self.names.dedup();
        self.data |= other.data;
        self.any |= other.any;
        self
    }
}

impl fmt::Display for LabelRe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelRe::Empty => write!(f, "∅"),
            LabelRe::Epsilon => write!(f, "ε"),
            LabelRe::Data => write!(f, "data"),
            LabelRe::Any => write!(f, "any"),
            LabelRe::Sym(l) => write!(f, "{l}"),
            LabelRe::Seq(ps) => {
                let parts: Vec<String> = ps.iter().map(|p| format!("{p}")).collect();
                write!(f, "{}", parts.join("."))
            }
            LabelRe::Alt(ps) => {
                let parts: Vec<String> = ps.iter().map(|p| format!("{p}")).collect();
                write!(f, "({})", parts.join(" | "))
            }
            LabelRe::Star(p) => write!(f, "{}*", paren(p)),
            LabelRe::Plus(p) => write!(f, "{}+", paren(p)),
            LabelRe::Opt(p) => write!(f, "{}?", paren(p)),
        }
    }
}

fn paren(p: &LabelRe) -> String {
    match p {
        LabelRe::Seq(_) => format!("({p})"),
        _ => format!("{p}"),
    }
}

/// Parses the DTD-like regex syntax of Figure 2:
/// `name.address.rating`, `(restaurant | getNearbyRestos)*`, `data`,
/// `hotel*`, `rating?`, `any*`, `()` for ε.
pub fn parse_re(input: &str) -> Result<LabelRe, String> {
    let mut p = ReParser {
        s: input.as_bytes(),
        src: input,
        pos: 0,
    };
    let re = p.alt()?;
    p.skip_ws();
    if p.pos != p.s.len() {
        return Err(format!(
            "trailing input at byte {} in regex {input:?}",
            p.pos
        ));
    }
    Ok(re)
}

struct ReParser<'a> {
    s: &'a [u8],
    src: &'a str,
    pos: usize,
}

impl<'a> ReParser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn alt(&mut self) -> Result<LabelRe, String> {
        let mut parts = vec![self.seq()?];
        loop {
            self.skip_ws();
            if self.pos < self.s.len() && self.s[self.pos] == b'|' {
                self.pos += 1;
                parts.push(self.seq()?);
            } else {
                break;
            }
        }
        Ok(LabelRe::alt(parts))
    }

    fn seq(&mut self) -> Result<LabelRe, String> {
        let mut parts = vec![self.postfix()?];
        loop {
            self.skip_ws();
            if self.pos < self.s.len() && self.s[self.pos] == b'.' {
                self.pos += 1;
                parts.push(self.postfix()?);
            } else {
                break;
            }
        }
        Ok(LabelRe::seq(parts))
    }

    fn postfix(&mut self) -> Result<LabelRe, String> {
        let mut base = self.atom()?;
        loop {
            self.skip_ws();
            match self.s.get(self.pos) {
                Some(b'*') => {
                    base = base.star();
                    self.pos += 1;
                }
                Some(b'+') => {
                    base = base.plus();
                    self.pos += 1;
                }
                Some(b'?') => {
                    base = base.opt();
                    self.pos += 1;
                }
                _ => return Ok(base),
            }
        }
    }

    fn atom(&mut self) -> Result<LabelRe, String> {
        self.skip_ws();
        match self.s.get(self.pos) {
            Some(b'(') => {
                self.pos += 1;
                self.skip_ws();
                if self.s.get(self.pos) == Some(&b')') {
                    self.pos += 1;
                    return Ok(LabelRe::Epsilon);
                }
                let inner = self.alt()?;
                self.skip_ws();
                if self.s.get(self.pos) == Some(&b')') {
                    self.pos += 1;
                    Ok(inner)
                } else {
                    Err(format!(
                        "expected ')' at byte {} in {:?}",
                        self.pos, self.src
                    ))
                }
            }
            Some(c) if c.is_ascii_alphanumeric() || *c == b'_' || *c == b'@' => {
                let start = self.pos;
                while self.pos < self.s.len()
                    && (self.s[self.pos].is_ascii_alphanumeric()
                        || matches!(self.s[self.pos], b'_' | b'-' | b'@'))
                {
                    self.pos += 1;
                }
                let name = &self.src[start..self.pos];
                Ok(match name {
                    "data" => LabelRe::Data,
                    "any" => LabelRe::Any,
                    _ => LabelRe::sym(name),
                })
            }
            _ => Err(format!(
                "expected a name, 'data', 'any' or '(' at byte {} in {:?}",
                self.pos, self.src
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Sym {
        Sym::Name(s.into())
    }

    #[test]
    fn parse_fig2_expressions() {
        let re = parse_re("name.address.rating.nearby").unwrap();
        assert!(re.matches(&[n("name"), n("address"), n("rating"), n("nearby")]));
        assert!(!re.matches(&[n("name"), n("address")]));

        let re = parse_re("(restaurant | getNearbyRestos)*.(museum | getNearbyMuseums)*").unwrap();
        assert!(re.matches(&[]));
        assert!(re.matches(&[n("restaurant"), n("restaurant"), n("museum")]));
        assert!(re.matches(&[n("getNearbyRestos"), n("museum")]));
        assert!(!re.matches(&[n("museum"), n("restaurant")]));

        let re = parse_re("(data | getRating)").unwrap();
        assert!(re.matches(&[Sym::Data]));
        assert!(re.matches(&[n("getRating")]));
        assert!(!re.matches(&[Sym::Data, Sym::Data]));
    }

    #[test]
    fn parse_postfix_operators() {
        let re = parse_re("hotel*").unwrap();
        assert!(re.matches(&[]));
        assert!(re.matches(&[n("hotel"), n("hotel")]));
        let re = parse_re("hotel+").unwrap();
        assert!(!re.matches(&[]));
        assert!(re.matches(&[n("hotel")]));
        let re = parse_re("hotel?").unwrap();
        assert!(re.matches(&[]));
        assert!(!re.matches(&[n("hotel"), n("hotel")]));
    }

    #[test]
    fn any_matches_any_single_symbol() {
        let re = parse_re("any*").unwrap();
        assert!(re.matches(&[n("x"), Sym::Data, n("y")]));
    }

    #[test]
    fn epsilon_and_errors() {
        assert_eq!(parse_re("()").unwrap(), LabelRe::Epsilon);
        assert!(parse_re("").is_err());
        assert!(parse_re("(a").is_err());
        assert!(parse_re("a trailing").is_err());
        assert!(parse_re("|a").is_err());
    }

    #[test]
    fn nullable_and_empty() {
        assert!(parse_re("a*").unwrap().nullable());
        assert!(!parse_re("a.b").unwrap().nullable());
        assert!(parse_re("a? . b?").unwrap().nullable());
        assert!(!LabelRe::Empty.nullable());
        assert!(LabelRe::Empty.language_empty());
        assert!(!parse_re("a|b").unwrap().language_empty());
        assert!(LabelRe::Seq(vec![LabelRe::Empty, LabelRe::Epsilon]).language_empty());
    }

    #[test]
    fn occurring_symbols() {
        let re = parse_re("(a | b).c*.data").unwrap();
        let occ = re.occurring();
        assert_eq!(
            occ.names,
            vec![Label::from("a"), Label::from("b"), Label::from("c")]
        );
        assert!(occ.data);
        assert!(!occ.any);
        // symbols in a dead branch don't occur
        let dead = LabelRe::Seq(vec![LabelRe::Empty, LabelRe::sym("ghost")]);
        assert!(dead.occurring().names.is_empty());
    }

    #[test]
    fn display_roundtrips_through_parser() {
        for src in [
            "name.address.rating",
            "(a | b)*",
            "data",
            "any*",
            "(a.b)?",
            "a+.b?",
        ] {
            let re = parse_re(src).unwrap();
            let re2 = parse_re(&re.to_string()).unwrap();
            assert_eq!(re, re2, "{src} -> {re}");
        }
    }

    use axml_xml::Label;
}
