//! Function-satisfiability analysis (Section 5 and Section 6.1).
//!
//! A function `f` *satisfies* a query subtree `q` when some **derived
//! instance** of `f`'s output type embeds `q` — derived instances expand
//! nested calls recursively (Definition 6). Two checkers are provided:
//!
//! * [`SatMode::Exact`] — respects cardinality/co-occurrence constraints of
//!   the content models via a *coverage-set* fixpoint: for every element
//!   label and pattern node we compute which subsets of the pattern's child
//!   constraints a derived word of the content model can cover
//!   simultaneously. Exponential in the (tiny) query size only, matching
//!   the paper's complexity discussion (NP-hardness in the query, PTIME in
//!   the data).
//! * [`SatMode::Lenient`] — the paper's implementation choice (§6.1): a
//!   *graph schema* that ignores cardinality and order, so satisfiability
//!   is a graph embedding, checkable in polynomial time. It may qualify
//!   more functions than the exact test (never fewer), which is safe.
//!
//! Variables in patterns are treated as wildcards here: data values are
//! unconstrained by schemas, so any value-join inside the subtree is
//! satisfiable by choosing equal values. This keeps both tests sound
//! (they never rule out a satisfiable function).

use crate::regex::LabelRe;
use crate::schema::{ClosureSet, Schema};
use axml_query::{EdgeKind, PLabel, PNodeId, Pattern};
use axml_xml::Label;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Which satisfiability algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SatMode {
    /// Coverage-set fixpoint, respects content-model co-occurrence.
    Exact,
    /// Graph-schema embedding (§6.1), ignores cardinality and order.
    Lenient,
}

/// A node of the (implicit) graph schema.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum GSym {
    /// An element with this name.
    Elem(Label),
    /// A data value.
    Data,
    /// An *unexpanded* call to this function (a leaf for queries).
    Fun(Label),
    /// A completely unconstrained derived tree (`any`-typed positions).
    AnyTree,
}

/// Satisfiability checker for one `(schema, query subtree)` pair.
///
/// Construction pre-computes nothing; results are memoized per function
/// name, so the checker can be reused for all candidate functions of one
/// NFQ node (Section 5's refined NFQs).
pub struct Satisfier<'s, 'p> {
    schema: &'s Schema,
    pattern: &'p Pattern,
    mode: SatMode,
    /// lenient memo: can a derived tree rooted at `sym` embed `p` at root?
    lenient_memo: HashMap<(GSym, PNodeId), bool>,
    /// one-level expansion closure per element label
    closure_memo: HashMap<Label, ClosureSet>,
    /// strict-descendant reachability per element label
    reach_memo: HashMap<Label, ReachSet>,
    /// exact tables (computed lazily on first exact query)
    exact: Option<ExactTables>,
}

#[derive(Clone, Debug, Default)]
struct ReachSet {
    elements: BTreeSet<Label>,
    functions: BTreeSet<Label>,
    data: bool,
    any: bool,
}

struct ExactTables {
    can_root: HashMap<(GSym, PNodeId), bool>,
    can_within: HashMap<(GSym, PNodeId), bool>,
}

impl<'s, 'p> Satisfier<'s, 'p> {
    /// Creates a checker for the given query subtree.
    pub fn new(schema: &'s Schema, pattern: &'p Pattern, mode: SatMode) -> Self {
        Satisfier {
            schema,
            pattern,
            mode,
            lenient_memo: HashMap::new(),
            closure_memo: HashMap::new(),
            reach_memo: HashMap::new(),
            exact: None,
        }
    }

    /// Does `fname` satisfy the subtree, reached via the given edge kind?
    ///
    /// With a child edge the pattern root must embed at a root of the
    /// result forest; with a descendant edge it may embed anywhere inside
    /// it. Undeclared functions are treated as `any*`-typed (never pruned).
    pub fn function_satisfies(&mut self, fname: &str, via: EdgeKind) -> bool {
        let Some(sig) = self.schema.function(fname) else {
            return true;
        };
        let output = sig.output.clone();
        let closure = self.schema.expansion_closure(&output);
        if closure.any {
            return true;
        }
        let root = self.pattern.root();
        let syms = closure_syms(&closure);
        match via {
            EdgeKind::Child => syms.iter().any(|s| self.can_root(s, root)),
            EdgeKind::Descendant => syms.iter().any(|s| self.can_within(s, root)),
        }
    }

    fn can_root(&mut self, sym: &GSym, p: PNodeId) -> bool {
        match self.mode {
            SatMode::Lenient => self.lenient_can_root(sym.clone(), p),
            SatMode::Exact => {
                self.ensure_exact();
                *self
                    .exact
                    .as_ref()
                    .unwrap()
                    .can_root
                    .get(&(sym.clone(), p))
                    .unwrap_or(&false)
            }
        }
    }

    fn can_within(&mut self, sym: &GSym, p: PNodeId) -> bool {
        match self.mode {
            SatMode::Lenient => self.lenient_can_within(sym.clone(), p),
            SatMode::Exact => {
                self.ensure_exact();
                *self
                    .exact
                    .as_ref()
                    .unwrap()
                    .can_within
                    .get(&(sym.clone(), p))
                    .unwrap_or(&false)
            }
        }
    }

    // ---------- shared closure / reachability helpers ----------

    fn closure_of_element(&mut self, name: &Label) -> ClosureSet {
        if let Some(c) = self.closure_memo.get(name) {
            return c.clone();
        }
        let c = match self.schema.element(name.as_str()) {
            Some(content) => self.schema.expansion_closure(content),
            // undeclared elements are unconstrained
            None => ClosureSet {
                any: true,
                ..Default::default()
            },
        };
        self.closure_memo.insert(name.clone(), c.clone());
        c
    }

    /// Everything strictly below an `a`-element in some derived instance.
    fn reach_of_element(&mut self, name: &Label) -> ReachSet {
        if let Some(r) = self.reach_memo.get(name) {
            return r.clone();
        }
        // iterative worklist over element labels
        let mut reach = ReachSet::default();
        let mut seen_elems: BTreeSet<Label> = BTreeSet::new();
        let mut work = vec![name.clone()];
        while let Some(a) = work.pop() {
            let c = self.closure_of_element(&a);
            reach.data |= c.data;
            reach.any |= c.any;
            for f in &c.functions {
                reach.functions.insert(f.clone());
            }
            for e in &c.elements {
                reach.elements.insert(e.clone());
                if seen_elems.insert(e.clone()) {
                    work.push(e.clone());
                }
            }
        }
        self.reach_memo.insert(name.clone(), reach.clone());
        reach
    }

    // ---------- lenient (graph schema, §6.1) ----------

    fn lenient_can_root(&mut self, sym: GSym, p: PNodeId) -> bool {
        if let Some(&b) = self.lenient_memo.get(&(sym.clone(), p)) {
            return b;
        }
        let r = self.lenient_can_root_uncached(&sym, p);
        self.lenient_memo.insert((sym, p), r);
        r
    }

    fn lenient_can_root_uncached(&mut self, sym: &GSym, p: PNodeId) -> bool {
        let node = self.pattern.node(p);
        if let PLabel::Or = node.label {
            let branches = node.children.clone();
            return branches
                .into_iter()
                .any(|b| self.lenient_can_root(sym.clone(), b));
        }
        match sym {
            GSym::AnyTree => true,
            GSym::Data => data_label_ok(&node.label) && node.children.is_empty(),
            GSym::Fun(g) => fun_label_ok(&node.label, g) && node.children.is_empty(),
            GSym::Elem(a) => {
                if !elem_label_ok(&node.label, a) {
                    return false;
                }
                let children = node.children.clone();
                let closure = self.closure_of_element(a);
                for pc in children {
                    let ok = match self.pattern.node(pc).edge {
                        EdgeKind::Child => {
                            closure.any
                                || closure_syms(&closure)
                                    .into_iter()
                                    .any(|s| self.lenient_can_root(s, pc))
                        }
                        EdgeKind::Descendant => self.lenient_desc_ok(a, pc),
                    };
                    if !ok {
                        return false;
                    }
                }
                true
            }
        }
    }

    fn lenient_desc_ok(&mut self, a: &Label, pc: PNodeId) -> bool {
        let reach = self.reach_of_element(a);
        if reach.any {
            return true;
        }
        let mut syms: Vec<GSym> = Vec::new();
        syms.extend(reach.elements.iter().cloned().map(GSym::Elem));
        syms.extend(reach.functions.iter().cloned().map(GSym::Fun));
        if reach.data {
            syms.push(GSym::Data);
        }
        syms.into_iter().any(|s| self.lenient_can_root(s, pc))
    }

    fn lenient_can_within(&mut self, sym: GSym, p: PNodeId) -> bool {
        match &sym {
            GSym::AnyTree => true,
            GSym::Data | GSym::Fun(_) => self.lenient_can_root(sym, p),
            GSym::Elem(a) => {
                let a = a.clone();
                self.lenient_can_root(sym, p) || self.lenient_desc_ok(&a, p)
            }
        }
    }

    // ---------- exact (coverage-set fixpoint) ----------

    fn ensure_exact(&mut self) {
        if self.exact.is_some() {
            return;
        }
        let syms = self.sym_universe();
        let pnodes: Vec<PNodeId> = self.pattern.node_ids().collect();
        let mut can_root: HashMap<(GSym, PNodeId), bool> = HashMap::new();
        let mut can_within: HashMap<(GSym, PNodeId), bool> = HashMap::new();
        for s in &syms {
            for &p in &pnodes {
                can_root.insert((s.clone(), p), false);
                can_within.insert((s.clone(), p), false);
            }
        }
        loop {
            let mut changed = false;
            for s in &syms {
                for &p in &pnodes {
                    if !can_root[&(s.clone(), p)]
                        && self.compute_can_root(s, p, &can_root, &can_within)
                    {
                        can_root.insert((s.clone(), p), true);
                        changed = true;
                    }
                }
            }
            for s in &syms {
                for &p in &pnodes {
                    if !can_within[&(s.clone(), p)]
                        && self.compute_can_within(s, p, &can_root, &can_within)
                    {
                        can_within.insert((s.clone(), p), true);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        self.exact = Some(ExactTables {
            can_root,
            can_within,
        });
    }

    /// All graph symbols relevant to this schema + pattern.
    fn sym_universe(&mut self) -> Vec<GSym> {
        let mut labels: BTreeSet<Label> = BTreeSet::new();
        for (name, _) in self.schema.elements() {
            labels.insert(name.clone());
        }
        for name in self.schema.referenced_names() {
            labels.insert(name);
        }
        // pattern constants may name undeclared elements
        for id in self.pattern.node_ids() {
            if let PLabel::Const(l) = &self.pattern.node(id).label {
                labels.insert(l.clone());
            }
        }
        let mut out: Vec<GSym> = Vec::new();
        for l in labels {
            if self.schema.is_function(l.as_str()) {
                out.push(GSym::Fun(l));
            } else {
                out.push(GSym::Elem(l));
            }
        }
        out.push(GSym::Data);
        out.push(GSym::AnyTree);
        out
    }

    fn compute_can_root(
        &mut self,
        sym: &GSym,
        p: PNodeId,
        can_root: &HashMap<(GSym, PNodeId), bool>,
        can_within: &HashMap<(GSym, PNodeId), bool>,
    ) -> bool {
        let node = self.pattern.node(p);
        if let PLabel::Or = node.label {
            return node.children.iter().any(|&b| can_root[&(sym.clone(), b)]);
        }
        match sym {
            GSym::AnyTree => true,
            GSym::Data => data_label_ok(&node.label) && node.children.is_empty(),
            GSym::Fun(g) => fun_label_ok(&node.label, g) && node.children.is_empty(),
            GSym::Elem(a) => {
                if !elem_label_ok(&node.label, a) {
                    return false;
                }
                let content = match self.schema.element(a.as_str()) {
                    Some(c) => c.clone(),
                    None => LabelRe::any_forest(),
                };
                let children: Vec<PNodeId> = node.children.clone();
                let k = children.len();
                if k == 0 {
                    return !content.language_empty();
                }
                let full: u32 = (1u32 << k) - 1;
                // mask of one symbol: which child constraints it satisfies
                let mask = |s: &GSym| -> u32 {
                    let mut m = 0;
                    for (j, &pc) in children.iter().enumerate() {
                        let ok = match self.pattern.node(pc).edge {
                            EdgeKind::Child => can_root[&(s.clone(), pc)],
                            EdgeKind::Descendant => can_within[&(s.clone(), pc)],
                        };
                        if ok {
                            m |= 1 << j;
                        }
                    }
                    m
                };
                let cov = self.coverage(&content, &mask);
                cov.contains(&full)
            }
        }
    }

    fn compute_can_within(
        &mut self,
        sym: &GSym,
        p: PNodeId,
        can_root: &HashMap<(GSym, PNodeId), bool>,
        can_within: &HashMap<(GSym, PNodeId), bool>,
    ) -> bool {
        if can_root[&(sym.clone(), p)] {
            return true;
        }
        match sym {
            GSym::AnyTree => true,
            GSym::Data | GSym::Fun(_) => false,
            GSym::Elem(a) => {
                let closure = self.closure_of_element(a);
                if closure.any {
                    return true;
                }
                closure_syms(&closure)
                    .into_iter()
                    .any(|s| can_within[&(s, p)])
            }
        }
    }

    /// Achievable coverage masks of the *derived* words of `re`: each
    /// function symbol may stay (contributing its own mask) or expand into
    /// a derived word of its output type — computed as a fixpoint over the
    /// declared functions.
    fn coverage(&self, re: &LabelRe, mask: &dyn Fn(&GSym) -> u32) -> BTreeSet<u32> {
        let mut cov_der: BTreeMap<Label, BTreeSet<u32>> = BTreeMap::new();
        for sig in self.schema.functions() {
            cov_der.insert(sig.name.clone(), BTreeSet::new());
        }
        loop {
            let mut changed = false;
            for sig in self.schema.functions() {
                let new = self.cov_re(&sig.output, mask, &cov_der);
                let cur = cov_der.get_mut(&sig.name).unwrap();
                let before = cur.len();
                cur.extend(new);
                if cur.len() != before {
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        self.cov_re(re, mask, &cov_der)
    }

    fn cov_re(
        &self,
        re: &LabelRe,
        mask: &dyn Fn(&GSym) -> u32,
        cov_der: &BTreeMap<Label, BTreeSet<u32>>,
    ) -> BTreeSet<u32> {
        match re {
            LabelRe::Empty => BTreeSet::new(),
            LabelRe::Epsilon => [0u32].into_iter().collect(),
            LabelRe::Data => [mask(&GSym::Data)].into_iter().collect(),
            // an `any` position can be any single derived tree: it can
            // satisfy every individual constraint simultaneously only as
            // far as one tree can — each constraint is satisfiable by an
            // arbitrary tree, so an `any` symbol covers everything.
            LabelRe::Any => [mask(&GSym::AnyTree)].into_iter().collect(),
            LabelRe::Sym(l) => {
                let mut out = BTreeSet::new();
                if self.schema.is_function(l.as_str()) {
                    out.insert(mask(&GSym::Fun(l.clone())));
                    if let Some(der) = cov_der.get(l) {
                        out.extend(der.iter().copied());
                    }
                } else {
                    out.insert(mask(&GSym::Elem(l.clone())));
                }
                out
            }
            LabelRe::Seq(ps) => {
                let mut acc: BTreeSet<u32> = [0u32].into_iter().collect();
                for p in ps {
                    let cov = self.cov_re(p, mask, cov_der);
                    if cov.is_empty() {
                        return BTreeSet::new();
                    }
                    let mut next = BTreeSet::new();
                    for &a in &acc {
                        for &b in &cov {
                            next.insert(a | b);
                        }
                    }
                    acc = next;
                }
                acc
            }
            LabelRe::Alt(ps) => {
                let mut out = BTreeSet::new();
                for p in ps {
                    out.extend(self.cov_re(p, mask, cov_der));
                }
                out
            }
            LabelRe::Star(p) => {
                let base = self.cov_re(p, mask, cov_der);
                union_closure(base, true)
            }
            LabelRe::Plus(p) => {
                let base = self.cov_re(p, mask, cov_der);
                union_closure(base, false)
            }
            LabelRe::Opt(p) => {
                let mut out = self.cov_re(p, mask, cov_der);
                out.insert(0);
                out
            }
        }
    }
}

/// Closure of a mask set under union; with `with_empty`, ε (mask 0) is
/// also achievable.
fn union_closure(base: BTreeSet<u32>, with_empty: bool) -> BTreeSet<u32> {
    let mut out = base;
    if with_empty {
        out.insert(0);
    }
    loop {
        let mut added = Vec::new();
        for &a in &out {
            for &b in &out {
                let u = a | b;
                if !out.contains(&u) {
                    added.push(u);
                }
            }
        }
        if added.is_empty() {
            break;
        }
        out.extend(added);
    }
    out
}

fn closure_syms(c: &ClosureSet) -> Vec<GSym> {
    let mut out: Vec<GSym> = Vec::new();
    if c.any {
        out.push(GSym::AnyTree);
    }
    out.extend(c.elements.iter().cloned().map(GSym::Elem));
    out.extend(c.functions.iter().cloned().map(GSym::Fun));
    if c.data {
        out.push(GSym::Data);
    }
    out
}

fn elem_label_ok(label: &PLabel, name: &Label) -> bool {
    match label {
        PLabel::Const(c) => c == name,
        PLabel::Var(_) | PLabel::Wildcard => true,
        PLabel::Fun(_) => false,
        PLabel::Or => unreachable!("OR handled by caller"),
    }
}

fn data_label_ok(label: &PLabel) -> bool {
    matches!(label, PLabel::Const(_) | PLabel::Var(_) | PLabel::Wildcard)
}

fn fun_label_ok(label: &PLabel, g: &Label) -> bool {
    matches!(label, PLabel::Fun(m) if m.accepts(g.as_str()))
}

/// One-shot convenience wrapper around [`Satisfier`].
///
/// ```
/// use axml_schema::{figure2_schema, function_satisfies, SatMode};
/// use axml_query::{parse_query, EdgeKind};
///
/// let schema = figure2_schema();
/// let wants_restaurants = parse_query("/restaurant[name=$X] -> $X").unwrap();
/// // getNearbyRestos can produce them; getNearbyMuseums cannot (§5)
/// assert!(function_satisfies(
///     &schema, &wants_restaurants, "getNearbyRestos",
///     EdgeKind::Descendant, SatMode::Exact));
/// assert!(!function_satisfies(
///     &schema, &wants_restaurants, "getNearbyMuseums",
///     EdgeKind::Descendant, SatMode::Exact));
/// ```
pub fn function_satisfies(
    schema: &Schema,
    pattern: &Pattern,
    fname: &str,
    via: EdgeKind,
    mode: SatMode,
) -> bool {
    Satisfier::new(schema, pattern, mode).function_satisfies(fname, via)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{figure2_schema, parse_schema};
    use axml_query::parse_query;

    fn sub(q: &str) -> Pattern {
        parse_query(q).unwrap()
    }

    fn check(schema: &Schema, q: &str, f: &str, via: EdgeKind, mode: SatMode) -> bool {
        let p = sub(q);
        function_satisfies(schema, &p, f, via, mode)
    }

    #[test]
    fn figure2_basic_satisfiability() {
        let s = figure2_schema();
        for mode in [SatMode::Exact, SatMode::Lenient] {
            // getNearbyRestos returns restaurants: satisfies //restaurant…
            assert!(check(
                &s,
                "/restaurant[name=$X][address=$Y][rating=\"*****\"] -> $X,$Y",
                "getNearbyRestos",
                EdgeKind::Descendant,
                mode
            ));
            // …but getNearbyMuseums does not (the paper's §5 example)
            assert!(!check(
                &s,
                "/restaurant[name=$X]",
                "getNearbyMuseums",
                EdgeKind::Descendant,
                mode
            ));
            // getRating returns data: satisfies a value leaf (any value —
            // even one spelled like an element name: data is unconstrained)
            assert!(check(&s, "/\"*****\"", "getRating", EdgeKind::Child, mode));
            assert!(check(&s, "/rating", "getRating", EdgeKind::Child, mode));
            // …but a data value can never have children
            assert!(!check(
                &s,
                "/rating[stars=\"5\"]",
                "getRating",
                EdgeKind::Child,
                mode
            ));
            // getHotels can produce whole qualifying hotels
            assert!(check(
                &s,
                "/hotel[name=\"Best Western\"][rating=\"*****\"]",
                "getHotels",
                EdgeKind::Child,
                mode
            ));
        }
    }

    #[test]
    fn derived_instances_expand_nested_calls() {
        let s = figure2_schema();
        // getHotels' direct output contains rating = (data | getRating);
        // only after expanding getRating can a data value appear under a
        // deep path — both modes must follow the expansion.
        for mode in [SatMode::Exact, SatMode::Lenient] {
            assert!(check(
                &s,
                "/hotel/rating/\"*****\"",
                "getHotels",
                EdgeKind::Child,
                mode
            ));
            // a call kept unexpanded is matchable by a function test
            assert!(check(
                &s,
                "/hotel/rating/getRating()",
                "getHotels",
                EdgeKind::Child,
                mode
            ));
        }
    }

    #[test]
    fn child_vs_descendant_edges() {
        let s = figure2_schema();
        for mode in [SatMode::Exact, SatMode::Lenient] {
            // a name element is not a root of getHotels' output…
            assert!(!check(&s, "/name", "getHotels", EdgeKind::Child, mode));
            // …but occurs inside it
            assert!(check(&s, "/name", "getHotels", EdgeKind::Descendant, mode));
        }
    }

    #[test]
    fn exact_respects_co_occurrence_lenient_does_not() {
        // content (b | c): one child, either b or c — never both
        let s = parse_schema(
            "function f = in: data, out: a\n\
             element a = (b | c)\n\
             element b = data\n\
             element c = data\n",
        )
        .unwrap();
        let q = sub("/a[b][c]");
        assert!(!function_satisfies(
            &s,
            &q,
            "f",
            EdgeKind::Child,
            SatMode::Exact
        ));
        // the graph schema forgets the alternative: both appear possible
        assert!(function_satisfies(
            &s,
            &q,
            "f",
            EdgeKind::Child,
            SatMode::Lenient
        ));
        // sanity: each alone is satisfiable in both modes
        for mode in [SatMode::Exact, SatMode::Lenient] {
            assert!(function_satisfies(
                &s,
                &sub("/a[b]"),
                "f",
                EdgeKind::Child,
                mode
            ));
            assert!(function_satisfies(
                &s,
                &sub("/a[c]"),
                "f",
                EdgeKind::Child,
                mode
            ));
        }
    }

    #[test]
    fn exact_cardinality_with_star_allows_repeats() {
        // (b | c)*: both can occur (two children)
        let s = parse_schema(
            "function f = in: data, out: a\n\
             element a = (b | c)*\n\
             element b = data\n\
             element c = data\n",
        )
        .unwrap();
        let q = sub("/a[b][c]");
        assert!(function_satisfies(
            &s,
            &q,
            "f",
            EdgeKind::Child,
            SatMode::Exact
        ));
    }

    #[test]
    fn recursive_output_types_terminate() {
        let s = parse_schema(
            "function f = in: data, out: (item.f?)\n\
             element item = data\n",
        )
        .unwrap();
        for mode in [SatMode::Exact, SatMode::Lenient] {
            assert!(function_satisfies(
                &s,
                &sub("/item"),
                "f",
                EdgeKind::Child,
                mode
            ));
            assert!(!function_satisfies(
                &s,
                &sub("/other"),
                "f",
                EdgeKind::Child,
                mode
            ));
        }
    }

    #[test]
    fn undeclared_functions_are_never_pruned() {
        let s = figure2_schema();
        for mode in [SatMode::Exact, SatMode::Lenient] {
            assert!(check(&s, "/whatever", "mystery", EdgeKind::Child, mode));
        }
    }

    #[test]
    fn any_typed_output_satisfies_everything() {
        let s = parse_schema("function f = in: data, out: any*\n").unwrap();
        for mode in [SatMode::Exact, SatMode::Lenient] {
            assert!(function_satisfies(
                &s,
                &sub("/a/b[c=\"v\"]"),
                "f",
                EdgeKind::Child,
                mode
            ));
        }
    }

    #[test]
    fn or_patterns_in_subqueries() {
        use axml_query::{EdgeKind as EK, FunMatch, PLabel, Pattern};
        let s = figure2_schema();
        // pattern: rating / (data-value | getRating())
        let mut p = Pattern::new();
        let r = p.set_root(PLabel::Const("rating".into()));
        let v = p.add_child(r, EK::Child, PLabel::Wildcard);
        let or = p.wrap_in_or(v);
        p.add_child(
            or,
            EK::Child,
            PLabel::Fun(FunMatch::OneOf(vec!["getRating".into()])),
        );
        for mode in [SatMode::Exact, SatMode::Lenient] {
            // getHotels produces hotel trees containing rating positions
            assert!(function_satisfies(
                &s,
                &p,
                "getHotels",
                EK::Descendant,
                mode
            ));
        }
    }

    #[test]
    fn deep_nesting_through_multiple_functions() {
        let s = parse_schema(
            "function outer = in: data, out: wrap\n\
             function inner = in: data, out: leaf\n\
             element wrap = (inner | leaf)\n\
             element leaf = data\n",
        )
        .unwrap();
        for mode in [SatMode::Exact, SatMode::Lenient] {
            assert!(function_satisfies(
                &s,
                &sub("/wrap/leaf"),
                "outer",
                EdgeKind::Child,
                mode
            ));
        }
    }

    #[test]
    fn lenient_is_a_superset_of_exact() {
        // randomized-ish sweep over the figure-2 schema: whenever exact
        // says yes, lenient must too
        let s = figure2_schema();
        let queries = [
            "/hotel",
            "/hotel/name",
            "/hotel[name=\"x\"][rating=\"y\"]",
            "/restaurant[rating=\"*****\"]",
            "/museum/name",
            "/name/\"v\"",
            "/\"v\"",
            "/nearby//restaurant/name",
            "/hotel/nearby//museum",
        ];
        let funs = [
            "getHotels",
            "getRating",
            "getNearbyRestos",
            "getNearbyMuseums",
        ];
        for q in queries {
            let p = sub(q);
            for f in funs {
                for via in [EdgeKind::Child, EdgeKind::Descendant] {
                    let exact = function_satisfies(&s, &p, f, via, SatMode::Exact);
                    let lenient = function_satisfies(&s, &p, f, via, SatMode::Lenient);
                    assert!(
                        !exact || lenient,
                        "exact ⊆ lenient violated for {f} vs {q} ({via:?})"
                    );
                }
            }
        }
    }
}
