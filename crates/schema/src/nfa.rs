//! Nondeterministic finite automata over label symbols, with wildcard
//! transitions.
//!
//! These implement the automata-theoretic machinery of Proposition 3 (the
//! *may-influence* test between NFQs: does some word of `L₁` prefix some
//! word of `L₂`?) and of the independence condition (✳) of Section 4.4
//! (`L₁ ∩ L₂ = ∅`). Wildcards keep the constructions finite although the
//! label alphabet is unbounded: two wildcard tests are simultaneously
//! satisfiable by a fresh label, so products work directly on tests.

use crate::regex::{LabelRe, Sym};
use axml_query::{EdgeKind, LinearPath, StepTest};
use axml_xml::Label;

/// A transition test.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransTest {
    /// Exactly this name.
    Name(Label),
    /// The `data` symbol.
    Data,
    /// Any symbol (name or data).
    AnySym,
}

impl TransTest {
    /// Does the test accept a concrete symbol?
    pub fn accepts(&self, s: &Sym) -> bool {
        match (self, s) {
            (TransTest::AnySym, _) => true,
            (TransTest::Data, Sym::Data) => true,
            (TransTest::Name(a), Sym::Name(b)) => a == b,
            _ => false,
        }
    }

    /// Are the two tests simultaneously satisfiable by some symbol?
    pub fn compatible(&self, other: &TransTest) -> bool {
        match (self, other) {
            (TransTest::AnySym, _) | (_, TransTest::AnySym) => true,
            (TransTest::Data, TransTest::Data) => true,
            (TransTest::Name(a), TransTest::Name(b)) => a == b,
            _ => false,
        }
    }
}

/// An ε-free NFA over label symbols.
#[derive(Clone, Debug)]
pub struct Nfa {
    /// edges[s] = list of (test, target)
    pub(crate) edges: Vec<Vec<(TransTest, usize)>>,
    pub(crate) start: Vec<usize>,
    pub(crate) accept: Vec<bool>,
}

impl Nfa {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.edges.len()
    }

    /// All concrete labels mentioned on transitions (the relevant alphabet
    /// for determinization).
    pub fn mentioned_labels(&self) -> Vec<Label> {
        let mut out: Vec<Label> = self
            .edges
            .iter()
            .flatten()
            .filter_map(|(t, _)| match t {
                TransTest::Name(l) => Some(l.clone()),
                _ => None,
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Builds an NFA from a regular expression (Thompson construction with
    /// ε-elimination).
    pub fn from_re(re: &LabelRe) -> Nfa {
        let mut b = Builder::default();
        let start = b.fresh();
        let end = b.fresh();
        b.compile(re, start, end);
        b.finish(start, end)
    }

    /// Builds an NFA for the language of a linear path (Section 3.1 paths).
    /// A descendant step contributes `any* . test`, a child step just
    /// `test`; the language is the set of label words from the root to a
    /// matched node.
    pub fn from_linear_path(path: &LinearPath) -> Nfa {
        let n = path.steps.len();
        let mut edges: Vec<Vec<(TransTest, usize)>> = vec![Vec::new(); n + 1];
        for (i, step) in path.steps.iter().enumerate() {
            let test = match &step.test {
                StepTest::Label(l) => TransTest::Name(l.clone()),
                StepTest::Any => TransTest::AnySym,
            };
            if step.edge == EdgeKind::Descendant {
                edges[i].push((TransTest::AnySym, i));
            }
            edges[i].push((test, i + 1));
        }
        let mut accept = vec![false; n + 1];
        accept[n] = true;
        Nfa {
            edges,
            start: vec![0],
            accept,
        }
    }

    /// Does the automaton accept the word?
    pub fn accepts(&self, word: &[Sym]) -> bool {
        let mut cur: Vec<bool> = vec![false; self.num_states()];
        for &s in &self.start {
            cur[s] = true;
        }
        for sym in word {
            let mut next = vec![false; self.num_states()];
            for (s, active) in cur.iter().enumerate() {
                if !active {
                    continue;
                }
                for (test, t) in &self.edges[s] {
                    if test.accepts(sym) {
                        next[*t] = true;
                    }
                }
            }
            cur = next;
        }
        cur.iter()
            .enumerate()
            .any(|(s, &active)| active && self.accept[s])
    }

    /// Is the language empty?
    pub fn is_language_empty(&self) -> bool {
        let reach = self.reachable();
        !reach.iter().enumerate().any(|(s, &r)| r && self.accept[s])
    }

    fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.num_states()];
        let mut stack: Vec<usize> = self.start.clone();
        for &s in &self.start {
            seen[s] = true;
        }
        while let Some(s) = stack.pop() {
            for (_, t) in &self.edges[s] {
                if !seen[*t] {
                    seen[*t] = true;
                    stack.push(*t);
                }
            }
        }
        seen
    }

    /// The prefix closure: accepts every prefix (including ε) of every word
    /// of the language. States from which an accepting state is reachable
    /// become accepting.
    pub fn prefix_closure(&self) -> Nfa {
        let n = self.num_states();
        // co-reachability: reverse BFS from accepting states
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (s, outs) in self.edges.iter().enumerate() {
            for (_, t) in outs {
                rev[*t].push(s);
            }
        }
        let mut co = self.accept.clone();
        let mut stack: Vec<usize> = (0..n).filter(|&s| co[s]).collect();
        while let Some(s) = stack.pop() {
            for &p in &rev[s] {
                if !co[p] {
                    co[p] = true;
                    stack.push(p);
                }
            }
        }
        Nfa {
            edges: self.edges.clone(),
            start: self.start.clone(),
            accept: co,
        }
    }

    /// The union of several automata (language union), by disjoint state
    /// renaming and merged start sets.
    pub fn union_of(parts: &[Nfa]) -> Nfa {
        let mut edges: Vec<Vec<(TransTest, usize)>> = Vec::new();
        let mut start = Vec::new();
        let mut accept = Vec::new();
        for part in parts {
            let offset = edges.len();
            for outs in &part.edges {
                edges.push(
                    outs.iter()
                        .map(|(t, target)| (t.clone(), target + offset))
                        .collect(),
                );
            }
            start.extend(part.start.iter().map(|s| s + offset));
            accept.extend(part.accept.iter().copied());
        }
        if edges.is_empty() {
            // the empty union: a single non-accepting state
            edges.push(Vec::new());
            start.push(0);
            accept.push(false);
        }
        Nfa {
            edges,
            start,
            accept,
        }
    }

    /// The suffix closure `L · Σ*`: every accepting state gets a wildcard
    /// self-loop. This is the *position language* of a descendant-ended
    /// call-finding query: calls strictly below any node matching `L`.
    pub fn suffix_closure(&self) -> Nfa {
        let mut out = self.clone();
        for s in 0..out.num_states() {
            if out.accept[s] {
                out.edges[s].push((TransTest::AnySym, s));
            }
        }
        out
    }

    /// Is `L(self) ∩ L(other)` nonempty? Works directly on transition tests:
    /// a joint step exists iff the two tests are compatible (wildcards make
    /// the label alphabet irrelevant).
    pub fn intersects(&self, other: &Nfa) -> bool {
        let n2 = other.num_states();
        let idx = |a: usize, b: usize| a * n2 + b;
        let total = self.num_states() * n2;
        let mut seen = vec![false; total];
        let mut stack = Vec::new();
        for &a in &self.start {
            for &b in &other.start {
                if !seen[idx(a, b)] {
                    seen[idx(a, b)] = true;
                    stack.push((a, b));
                }
            }
        }
        while let Some((a, b)) = stack.pop() {
            if self.accept[a] && other.accept[b] {
                return true;
            }
            for (t1, a2) in &self.edges[a] {
                for (t2, b2) in &other.edges[b] {
                    if t1.compatible(t2) && !seen[idx(*a2, *b2)] {
                        seen[idx(*a2, *b2)] = true;
                        stack.push((*a2, *b2));
                    }
                }
            }
        }
        false
    }

    /// Proposition 3 test: does some word of `L(self)` occur as a prefix of
    /// some word of `L(other)`?
    pub fn some_word_prefixes(&self, other: &Nfa) -> bool {
        self.intersects(&other.prefix_closure())
    }

    /// Is `word` prefix-comparable with the language: is some accepted
    /// word a prefix of `word`, or `word` a prefix of some accepted word
    /// (both inclusive of equality)?
    ///
    /// This is the change-scope test of the subscription engine: a splice
    /// at label path `word` can affect a query's answer iff the path is
    /// comparable with the query's result-node language — a splice *at or
    /// below* a result position changes what that position renders, and a
    /// splice *above* one creates or destroys matches. Incomparable paths
    /// are provably irrelevant.
    pub fn prefix_comparable(&self, word: &[Sym]) -> bool {
        let n = self.num_states();
        // co-accessibility: states from which an accepting state is
        // reachable (so an active co-accessible state after consuming all
        // of `word` means `word` extends to an accepted word)
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (s, outs) in self.edges.iter().enumerate() {
            for (_, t) in outs {
                rev[*t].push(s);
            }
        }
        let mut co = self.accept.clone();
        let mut stack: Vec<usize> = (0..n).filter(|&s| co[s]).collect();
        while let Some(s) = stack.pop() {
            for &p in &rev[s] {
                if !co[p] {
                    co[p] = true;
                    stack.push(p);
                }
            }
        }
        let mut cur = vec![false; n];
        for &s in &self.start {
            cur[s] = true;
        }
        for sym in word {
            if cur.iter().enumerate().any(|(s, &a)| a && self.accept[s]) {
                return true; // an accepted word is a proper prefix of `word`
            }
            let mut next = vec![false; n];
            for (s, active) in cur.iter().enumerate() {
                if !active {
                    continue;
                }
                for (test, t) in &self.edges[s] {
                    if test.accepts(sym) {
                        next[*t] = true;
                    }
                }
            }
            cur = next;
        }
        cur.iter().enumerate().any(|(s, &a)| a && co[s])
    }

    /// Compiles the automaton against a label→symbol table (typically a
    /// document's interner), yielding a [`SymNfa`] whose step function is
    /// integer compares. `lookup` returns the symbol of a label text, or
    /// `None` when the text was never interned — such transitions can
    /// never fire on words drawn from that document and compile to a
    /// dead test. [`TransTest::Data`] transitions also compile dead:
    /// `SymNfa` words are *name* symbols (label paths of element nodes),
    /// which never carry the `data` symbol.
    pub fn compile_syms(&self, mut lookup: impl FnMut(&str) -> Option<u32>) -> SymNfa {
        SymNfa {
            edges: self
                .edges
                .iter()
                .map(|outs| {
                    outs.iter()
                        .map(|(t, target)| {
                            let st = match t {
                                TransTest::AnySym => SymTest::Any,
                                TransTest::Data => SymTest::Never,
                                TransTest::Name(l) => match lookup(l.as_str()) {
                                    Some(s) => SymTest::Sym(s),
                                    None => SymTest::Never,
                                },
                            };
                            (st, *target)
                        })
                        .collect()
                })
                .collect(),
            start: self.start.clone(),
            accept: self.accept.clone(),
        }
    }
}

/// A transition test of a [`SymNfa`] (compiled against one symbol table).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SymTest {
    /// Exactly this interned symbol.
    Sym(u32),
    /// Any symbol.
    Any,
    /// Never fires (label absent from the table, or a `data` test).
    Never,
}

/// An [`Nfa`] compiled against one document's symbol table: words are
/// interned label symbols and every transition test is an integer compare.
/// Symbol tables are append-only, so a compiled automaton stays valid as
/// the document grows — but labels interned *after* compilation are
/// unknown to it; recompile when the table's size changes (see
/// `Document::sym_count`).
#[derive(Clone, Debug)]
pub struct SymNfa {
    edges: Vec<Vec<(SymTest, usize)>>,
    start: Vec<usize>,
    accept: Vec<bool>,
}

impl SymNfa {
    /// Determinizes the automaton by subset construction, producing a
    /// [`SymDfa`] whose stepping cost is one binary search per symbol
    /// instead of an active-set sweep over all NFA edges. Subset
    /// construction can blow up exponentially, so the build aborts and
    /// returns `None` once more than `max_states` subset states exist —
    /// callers keep the NFA as the fallback. Both machines accept exactly
    /// the same words, so the choice is invisible to results and traces.
    pub fn determinize(&self, max_states: usize) -> Option<SymDfa> {
        // the symbols some transition tests explicitly; everything else
        // behaves identically ("other") and shares one default transition
        let mut alphabet: Vec<u32> = self
            .edges
            .iter()
            .flatten()
            .filter_map(|(t, _)| match t {
                SymTest::Sym(s) => Some(*s),
                _ => None,
            })
            .collect();
        alphabet.sort_unstable();
        alphabet.dedup();

        let step = |set: &[usize], on: Option<u32>| -> Vec<usize> {
            // `on = Some(sym)`: that mentioned symbol; `None`: any
            // unmentioned symbol (only Any edges fire)
            let mut next: Vec<usize> = Vec::new();
            for &s in set {
                for &(test, t) in &self.edges[s] {
                    let fire = match (test, on) {
                        (SymTest::Any, _) => true,
                        (SymTest::Sym(want), Some(sym)) => want == sym,
                        (SymTest::Sym(_), None) | (SymTest::Never, _) => false,
                    };
                    if fire {
                        next.push(t);
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            next
        };

        let mut start: Vec<usize> = self.start.clone();
        start.sort_unstable();
        start.dedup();
        let mut index: std::collections::HashMap<Vec<usize>, usize> =
            std::collections::HashMap::new();
        let mut sets: Vec<Vec<usize>> = Vec::new();
        let mut trans: Vec<DfaState> = Vec::new();
        let mut accept: Vec<bool> = Vec::new();
        let mut intern = |set: Vec<usize>,
                          sets: &mut Vec<Vec<usize>>,
                          accept: &mut Vec<bool>|
         -> Option<usize> {
            if set.is_empty() {
                return None; // the dead state is implicit
            }
            Some(*index.entry(set.clone()).or_insert_with(|| {
                accept.push(set.iter().any(|&s| self.accept[s]));
                sets.push(set);
                sets.len() - 1
            }))
        };
        let start_id = intern(start, &mut sets, &mut accept);
        let mut done = 0;
        while done < sets.len() {
            if sets.len() > max_states {
                return None;
            }
            let cur = sets[done].clone();
            let default = intern(step(&cur, None), &mut sets, &mut accept);
            let mut out: Vec<(u32, usize)> = Vec::new();
            for &sym in &alphabet {
                if let Some(t) = intern(step(&cur, Some(sym)), &mut sets, &mut accept) {
                    out.push((sym, t));
                } else if default.is_some() {
                    // explicit dead edge so the default is not consulted
                    out.push((sym, usize::MAX));
                }
            }
            trans.push((out, default));
            done += 1;
        }
        Some(SymDfa {
            trans,
            accept,
            start: start_id,
        })
    }

    /// Does the automaton accept the word of name symbols?
    pub fn accepts(&self, word: &[u32]) -> bool {
        let n = self.edges.len();
        let mut cur = vec![false; n];
        for &s in &self.start {
            cur[s] = true;
        }
        for &sym in word {
            let mut next = vec![false; n];
            let mut any = false;
            for (s, active) in cur.iter().enumerate() {
                if !active {
                    continue;
                }
                for &(test, t) in &self.edges[s] {
                    let fire = match test {
                        SymTest::Any => true,
                        SymTest::Sym(want) => want == sym,
                        SymTest::Never => false,
                    };
                    if fire {
                        next[t] = true;
                        any = true;
                    }
                }
            }
            if !any {
                return false;
            }
            cur = next;
        }
        cur.iter()
            .enumerate()
            .any(|(s, &active)| active && self.accept[s])
    }
}

/// One [`SymDfa`] state: sorted `(symbol, target)` pairs (`usize::MAX` =
/// dead) plus the default target for symbols no test mentions.
type DfaState = (Vec<(u32, usize)>, Option<usize>);

/// A determinized [`SymNfa`]: exactly one live subset state at a time, so
/// a step is a binary search over the state's explicitly mentioned
/// symbols (with a shared default edge for all unmentioned ones) instead
/// of a sweep over every NFA edge. Accepts the same language as the NFA
/// it was built from; used by the compiled-plan layer where one automaton
/// is stepped over many label paths.
#[derive(Clone, Debug)]
pub struct SymDfa {
    trans: Vec<DfaState>,
    accept: Vec<bool>,
    /// `None` when the start subset is empty (the empty language without
    /// ε).
    start: Option<usize>,
}

impl SymDfa {
    /// Does the automaton accept the word of name symbols?
    pub fn accepts(&self, word: &[u32]) -> bool {
        let Some(mut cur) = self.start else {
            return false;
        };
        for &sym in word {
            let (ref out, default) = self.trans[cur];
            let next = match out.binary_search_by_key(&sym, |&(s, _)| s) {
                Ok(i) => {
                    let t = out[i].1;
                    if t == usize::MAX {
                        return false;
                    }
                    Some(t)
                }
                Err(_) => default,
            };
            match next {
                Some(t) => cur = t,
                None => return false,
            }
        }
        self.accept[cur]
    }

    /// Number of (live) DFA states.
    pub fn num_states(&self) -> usize {
        self.trans.len()
    }
}

/// Thompson construction with an ε edge list, eliminated in `finish`.
#[derive(Default)]
struct Builder {
    edges: Vec<Vec<(TransTest, usize)>>,
    eps: Vec<Vec<usize>>,
}

impl Builder {
    fn fresh(&mut self) -> usize {
        self.edges.push(Vec::new());
        self.eps.push(Vec::new());
        self.edges.len() - 1
    }

    fn compile(&mut self, re: &LabelRe, from: usize, to: usize) {
        match re {
            LabelRe::Empty => {}
            LabelRe::Epsilon => self.eps[from].push(to),
            LabelRe::Data => self.edges[from].push((TransTest::Data, to)),
            LabelRe::Any => self.edges[from].push((TransTest::AnySym, to)),
            LabelRe::Sym(l) => self.edges[from].push((TransTest::Name(l.clone()), to)),
            LabelRe::Seq(parts) => {
                let mut cur = from;
                for (i, p) in parts.iter().enumerate() {
                    let next = if i + 1 == parts.len() {
                        to
                    } else {
                        self.fresh()
                    };
                    self.compile(p, cur, next);
                    cur = next;
                }
                if parts.is_empty() {
                    self.eps[from].push(to);
                }
            }
            LabelRe::Alt(parts) => {
                for p in parts {
                    self.compile(p, from, to);
                }
            }
            LabelRe::Star(p) => {
                let mid = self.fresh();
                self.eps[from].push(mid);
                self.compile(p, mid, mid);
                self.eps[mid].push(to);
            }
            LabelRe::Plus(p) => {
                let mid = self.fresh();
                self.compile(p, from, mid);
                self.compile(p, mid, mid);
                self.eps[mid].push(to);
            }
            LabelRe::Opt(p) => {
                self.eps[from].push(to);
                self.compile(p, from, to);
            }
        }
    }

    fn finish(self, start: usize, end: usize) -> Nfa {
        let n = self.edges.len();
        // ε-closure per state
        let mut closure: Vec<Vec<usize>> = Vec::with_capacity(n);
        for s in 0..n {
            let mut seen = vec![false; n];
            let mut stack = vec![s];
            seen[s] = true;
            while let Some(x) = stack.pop() {
                for &t in &self.eps[x] {
                    if !seen[t] {
                        seen[t] = true;
                        stack.push(t);
                    }
                }
            }
            closure.push((0..n).filter(|&x| seen[x]).collect());
        }
        // new edges: from s, through ε-closure, then a symbol edge
        let mut edges: Vec<Vec<(TransTest, usize)>> = vec![Vec::new(); n];
        for s in 0..n {
            for &c in &closure[s] {
                for (t, target) in &self.edges[c] {
                    edges[s].push((t.clone(), *target));
                }
            }
        }
        let mut accept = vec![false; n];
        for s in 0..n {
            if closure[s].contains(&end) {
                accept[s] = true;
            }
        }
        Nfa {
            edges,
            start: vec![start],
            accept,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::parse_re;
    use axml_query::parse_query;

    fn n(s: &str) -> Sym {
        Sym::Name(s.into())
    }

    fn words(alpha: &[&str], max_len: usize) -> Vec<Vec<Sym>> {
        let mut out = vec![vec![]];
        let mut layer: Vec<Vec<Sym>> = vec![vec![]];
        for _ in 0..max_len {
            let mut next = Vec::new();
            for w in &layer {
                for a in alpha {
                    let mut w2 = w.clone();
                    w2.push(if *a == "#" { Sym::Data } else { n(a) });
                    next.push(w2);
                }
            }
            out.extend(next.iter().cloned());
            layer = next;
        }
        out
    }

    #[test]
    fn nfa_agrees_with_reference_matcher() {
        for src in [
            "a.b.c",
            "(a | b)*",
            "a*.b",
            "(a.b)+",
            "a?",
            "data.(a | data)*",
            "any.a",
            "()",
            "(a|b).(c|d)?",
        ] {
            let re = parse_re(src).unwrap();
            let nfa = Nfa::from_re(&re);
            for w in words(&["a", "b", "c", "d", "#"], 4) {
                assert_eq!(
                    nfa.accepts(&w),
                    re.matches(&w),
                    "mismatch on {src} with {w:?}"
                );
            }
        }
    }

    fn lin_of(query: &str) -> LinearPath {
        let q = parse_query(query).unwrap();
        let last = q.result_nodes()[0];
        LinearPath::to_node(&q, last, true)
    }

    #[test]
    fn linear_path_nfa_agrees_with_path_matcher() {
        for src in ["/a/b", "/a//b/c", "//x", "/a/*//b"] {
            let lin = lin_of(src);
            let nfa = Nfa::from_linear_path(&lin);
            for w in words(&["a", "b", "c", "x", "y"], 4) {
                let strs: Vec<&str> = w
                    .iter()
                    .map(|s| match s {
                        Sym::Name(l) => l.as_str(),
                        Sym::Data => "#data",
                    })
                    .collect();
                assert_eq!(
                    nfa.accepts(&w),
                    lin.matches_word(&strs),
                    "mismatch on {src} with {strs:?}"
                );
            }
        }
    }

    #[test]
    fn intersection_nonemptiness() {
        let a = Nfa::from_linear_path(&lin_of("//a"));
        let b = Nfa::from_linear_path(&lin_of("//b"));
        // both match words of length ≥ 2 ending differently, but
        // //a matches "x a" and //b matches "x b" — no common word of the
        // same labels: intersection is empty? No! //a requires last = a,
        // //b requires last = b: empty indeed.
        assert!(!a.intersects(&b));
        let c = Nfa::from_linear_path(&lin_of("/r//a"));
        let d = Nfa::from_linear_path(&lin_of("/r/*/a"));
        assert!(c.intersects(&d)); // r x a in both
        let e = Nfa::from_linear_path(&lin_of("/r/a"));
        let f = Nfa::from_linear_path(&lin_of("/r/b"));
        assert!(!e.intersects(&f));
    }

    #[test]
    fn prefix_relation_proposition_3() {
        // the paper's Section 4.3 example: //a and //b mutually influence
        // because a word ending in b may have a prefix ending in a
        let a = Nfa::from_linear_path(&lin_of("//a"));
        let b = Nfa::from_linear_path(&lin_of("//b"));
        assert!(a.some_word_prefixes(&b));
        assert!(b.some_word_prefixes(&a));

        // /hotels/hotel (hotels NFQ) prefixes /hotels/hotel/nearby
        let h = Nfa::from_linear_path(&lin_of("/hotels/hotel"));
        let nearby = Nfa::from_linear_path(&lin_of("/hotels/hotel/nearby"));
        assert!(h.some_word_prefixes(&nearby));
        assert!(!nearby.some_word_prefixes(&h));

        // disjoint paths: /hotels/hotel/rating vs /hotels/hotel/nearby
        let r = Nfa::from_linear_path(&lin_of("/hotels/hotel/rating"));
        assert!(!r.some_word_prefixes(&nearby));
        assert!(!nearby.some_word_prefixes(&r));
    }

    #[test]
    fn prefix_comparability() {
        let nfa = Nfa::from_linear_path(&lin_of("/hotels/hotel/price"));
        // below a result node: comparable (changes the rendered value)
        assert!(nfa.prefix_comparable(&[n("hotels"), n("hotel"), n("price"), n("amount")]));
        // exactly a result node
        assert!(nfa.prefix_comparable(&[n("hotels"), n("hotel"), n("price")]));
        // above a result node: comparable (creates/destroys matches)
        assert!(nfa.prefix_comparable(&[n("hotels"), n("hotel")]));
        assert!(nfa.prefix_comparable(&[]));
        // a sibling branch: incomparable
        assert!(!nfa.prefix_comparable(&[n("hotels"), n("hotel"), n("rating")]));
        assert!(!nfa.prefix_comparable(&[n("auctions")]));

        // descendant steps keep every extension comparable
        let deep = Nfa::from_linear_path(&lin_of("/a//b"));
        assert!(deep.prefix_comparable(&[n("a"), n("x"), n("y")])); // may still reach b below
        assert!(!deep.prefix_comparable(&[n("c")]));

        // brute-force agreement with the definition on short words
        let q = Nfa::from_linear_path(&lin_of("/a/*/c"));
        for w in words(&["a", "b", "c"], 4) {
            let expect =
                (0..=w.len()).any(|k| q.accepts(&w[..k])) || q.prefix_closure().accepts(&w);
            assert_eq!(q.prefix_comparable(&w), expect, "mismatch on {w:?}");
        }
    }

    #[test]
    fn prefix_closure_includes_epsilon() {
        let a = Nfa::from_linear_path(&lin_of("/a/b"));
        let p = a.prefix_closure();
        assert!(p.accepts(&[]));
        assert!(p.accepts(&[n("a")]));
        assert!(p.accepts(&[n("a"), n("b")]));
        assert!(!p.accepts(&[n("b")]));
    }

    #[test]
    fn union_combines_languages() {
        let a = Nfa::from_re(&parse_re("a.b").unwrap());
        let b = Nfa::from_re(&parse_re("c*").unwrap());
        let u = Nfa::union_of(&[a, b]);
        assert!(u.accepts(&[n("a"), n("b")]));
        assert!(u.accepts(&[]));
        assert!(u.accepts(&[n("c"), n("c")]));
        assert!(!u.accepts(&[n("a")]));
        let empty = Nfa::union_of(&[]);
        assert!(empty.is_language_empty());
    }

    #[test]
    fn empty_language_detection() {
        assert!(Nfa::from_re(&LabelRe::Empty).is_language_empty());
        assert!(!Nfa::from_re(&parse_re("a*").unwrap()).is_language_empty());
        let dead = parse_re("a").unwrap();
        let nfa = Nfa::from_re(&LabelRe::Seq(vec![LabelRe::Empty, dead]));
        assert!(nfa.is_language_empty());
    }

    #[test]
    fn sym_compiled_nfa_agrees_with_label_nfa() {
        // a tiny symbol table over the test alphabet
        let table = ["a", "b", "c", "x"]; // note: "y" is not interned
        let lookup = |s: &str| table.iter().position(|t| *t == s).map(|i| i as u32);
        for src in ["/a/b", "/a//b/c", "//x", "/a/*//b"] {
            let nfa = Nfa::from_linear_path(&lin_of(src)).prefix_closure();
            let sym_nfa = nfa.compile_syms(lookup);
            for w in words(&["a", "b", "c", "x"], 4) {
                let syms: Vec<u32> = w
                    .iter()
                    .map(|s| match s {
                        Sym::Name(l) => lookup(l.as_str()).unwrap(),
                        Sym::Data => unreachable!(),
                    })
                    .collect();
                assert_eq!(
                    sym_nfa.accepts(&syms),
                    nfa.accepts(&w),
                    "mismatch on {src} with {w:?}"
                );
            }
        }
    }

    #[test]
    fn determinized_sym_dfa_agrees_with_sym_nfa() {
        let table = ["a", "b", "c", "x"];
        let lookup = |s: &str| table.iter().position(|t| *t == s).map(|i| i as u32);
        for src in ["/a/b", "/a//b/c", "//x", "/a/*//b", "/a/*/c"] {
            for closed in [false, true] {
                let mut nfa = Nfa::from_linear_path(&lin_of(src));
                if closed {
                    nfa = nfa.prefix_closure().suffix_closure();
                }
                let sym_nfa = nfa.compile_syms(lookup);
                let dfa = sym_nfa.determinize(256).expect("small automaton");
                for w in words(&["a", "b", "c", "x"], 4) {
                    let syms: Vec<u32> = w
                        .iter()
                        .map(|s| match s {
                            Sym::Name(l) => lookup(l.as_str()).unwrap(),
                            Sym::Data => unreachable!(),
                        })
                        .collect();
                    assert_eq!(
                        dfa.accepts(&syms),
                        sym_nfa.accepts(&syms),
                        "mismatch on {src} (closed={closed}) with {w:?}"
                    );
                }
                // symbols unknown to the automaton take the default edge
                let unknown = [999u32, 7];
                assert_eq!(dfa.accepts(&unknown), sym_nfa.accepts(&unknown));
            }
        }
        // the cap aborts instead of blowing up
        let big = Nfa::from_linear_path(&lin_of("/a//b//c//a//b//c"));
        let sym = big.compile_syms(lookup);
        assert!(sym.determinize(1).is_none());
    }

    #[test]
    fn wildcard_products_are_sound() {
        // any* intersects everything nonempty
        let any = Nfa::from_re(&parse_re("any*").unwrap());
        let ab = Nfa::from_re(&parse_re("a.b").unwrap());
        assert!(any.intersects(&ab));
        // data vs name are incompatible
        let d = Nfa::from_re(&parse_re("data").unwrap());
        let a = Nfa::from_re(&parse_re("a").unwrap());
        assert!(!d.intersects(&a));
        assert!(d.intersects(&Nfa::from_re(&parse_re("any").unwrap())));
    }
}
