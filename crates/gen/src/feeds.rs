//! Feed scenarios for the subscription engine: documents whose
//! intensional parts answer *differently over time*, modelling live
//! data sources behind Web services.
//!
//! Volatility is deterministic: each service keeps a per-key invocation
//! counter and derives its answer from it, so a sequentially pumped
//! refresh loop produces the same value sequence on every run — no
//! wall clock, no RNG at invocation time.
//!
//! Per-service TTLs are returned as plain `(service, ttl_ms)` pairs so
//! callers can build their cache configuration without this crate
//! depending on the store layer.

use axml_query::{parse_query, Pattern};
use axml_services::{FnService, NetProfile, Registry};
use axml_xml::{Document, Forest};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A ready-to-subscribe workload: a document with time-varying
/// intensional parts, the services behind them, the TTL each service's
/// answers stay valid for, and the standing queries that watch it.
pub struct Feed {
    /// The AXML document (calls intact — the subscription engine's base).
    pub doc: Document,
    /// The registry answering the document's calls.
    pub registry: Registry,
    /// Validity window per service, in simulated ms — the refresh
    /// schedule's raw material.
    pub ttls: Vec<(String, f64)>,
    /// Named standing queries to register, in order.
    pub watchers: Vec<(String, Pattern)>,
}

/// Knobs of the hotel price-watcher feed.
#[derive(Clone, Debug)]
pub struct PriceFeedParams {
    /// Hotels in the document.
    pub hotels: usize,
    /// Every `volatile_stride`-th hotel has a price/rating/review stream
    /// that changes on each re-invocation; the rest answer stably (their
    /// re-invocations publish versions whose deltas are empty).
    pub volatile_stride: usize,
}

impl Default for PriceFeedParams {
    fn default() -> Self {
        PriceFeedParams {
            hotels: 50,
            volatile_stride: 2,
        }
    }
}

/// Counter-driven service: answers `render(key, count)` where `count` is
/// how many times the key has been really invoked so far.
fn counting_service(
    name: &str,
    render: impl Fn(&str, u64) -> Forest + Send + Sync + 'static,
) -> FnService<impl Fn(&axml_services::CallRequest) -> Forest + Send + Sync> {
    let counters: Arc<Mutex<HashMap<String, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    FnService::new(name, move |req: &axml_services::CallRequest| {
        let key = req.first_text().unwrap_or_default().to_string();
        let mut counters = counters.lock().unwrap();
        let count = counters.entry(key.clone()).or_insert(0);
        let n = *count;
        *count += 1;
        render(&key, n)
    })
}

fn text_forest(text: String) -> Forest {
    let mut f = Forest::new();
    f.add_root_text(text);
    f
}

/// Hotels whose price, rating, review score, nearby restaurants and
/// museum listings all hide behind services with *different* validity
/// windows, so refreshes round-robin through the aspects: review scores
/// lapse often, restaurant listings effectively never. One watcher per
/// aspect; review and museum churn publishes versions the other
/// watchers' scope filters must skip.
pub fn price_feed(params: &PriceFeedParams) -> Feed {
    let stride = params.volatile_stride.max(1);
    let mut doc = Document::with_root("hotels");
    let root = doc.root();
    for i in 0..params.hotels {
        let h = doc.add_element(root, "hotel");
        let n = doc.add_element(h, "name");
        doc.add_text(n, format!("Hotel {i}"));
        let key = format!(
            "{i}|{}",
            if i % stride == 0 {
                "volatile"
            } else {
                "stable"
            }
        );
        for (aspect, service) in [
            ("price", "getPrice"),
            ("rating", "getRating"),
            ("reviews", "getReviews"),
            ("nearby", "getNearbyRestos"),
            ("museums", "getNearbyMuseums"),
        ] {
            let e = doc.add_element(h, aspect);
            let c = doc.add_call(e, service);
            doc.add_text(c, key.clone());
        }
    }

    let volatile = |key: &str, count: u64| -> u64 {
        if key.ends_with("volatile") {
            count
        } else {
            0
        }
    };
    let mut registry = Registry::new();
    registry.register(counting_service("getPrice", move |key, count| {
        let i: u64 = key.split('|').next().unwrap_or("0").parse().unwrap_or(0);
        text_forest(format!("{}", 80 + (i * 7) % 40 + volatile(key, count) * 3))
    }));
    registry.register(counting_service("getRating", move |key, count| {
        let i: u64 = key.split('|').next().unwrap_or("0").parse().unwrap_or(0);
        text_forest("*".repeat((1 + (i + volatile(key, count)) % 5) as usize))
    }));
    registry.register(counting_service("getReviews", move |key, count| {
        text_forest(format!("score {}", 50 + volatile(key, count) % 50))
    }));
    registry.register(counting_service("getNearbyRestos", move |key, count| {
        let mut f = Forest::new();
        let r = f.add_root("restaurant");
        let n = f.add_element(r, "name");
        f.add_text(n, format!("Resto {}", volatile(key, count) % 3));
        f
    }));
    registry.register(counting_service("getNearbyMuseums", move |key, count| {
        let mut f = Forest::new();
        let m = f.add_root("museum");
        let n = f.add_element(m, "name");
        f.add_text(n, format!("Museum {}", volatile(key, count) % 2));
        f
    }));

    registry.set_default_profile(NetProfile::latency(5.0));

    // deliberately non-harmonic windows: lapses rarely coincide, so most
    // published versions touch exactly one aspect — the workload where
    // scope-filtered reconciliation pays
    let ttls = vec![
        ("getPrice".to_string(), 1300.0),
        ("getRating".to_string(), 1700.0),
        ("getReviews".to_string(), 130.0),
        ("getNearbyRestos".to_string(), 2900.0),
        ("getNearbyMuseums".to_string(), 710.0),
    ];
    let watchers = vec![
        (
            "price-watch".to_string(),
            parse_query("/hotels/hotel[name=$N][price=$P] -> $N,$P").expect("price query"),
        ),
        (
            "rating-watch".to_string(),
            parse_query("/hotels/hotel[name=$N][rating=$R] -> $N,$R").expect("rating query"),
        ),
        (
            "review-ticker".to_string(),
            parse_query("/hotels/hotel[name=$N][reviews=$V] -> $N,$V").expect("review query"),
        ),
        (
            "museum-watch".to_string(),
            parse_query("/hotels/hotel[name=$N]/museums/museum[name=$M] -> $N,$M")
                .expect("museum query"),
        ),
        // the restaurant listing's validity window outlives typical run
        // horizons: this watcher is the (common) mostly-idle standing
        // query, whose scope filter skips every version other aspects
        // publish
        (
            "resto-watch".to_string(),
            parse_query("/hotels/hotel[name=$N]/nearby/restaurant[name=$R] -> $N,$R")
                .expect("resto query"),
        ),
    ];
    Feed {
        doc,
        registry,
        ttls,
        watchers,
    }
}

/// Knobs of the auction-ticker feed.
#[derive(Clone, Debug)]
pub struct AuctionFeedParams {
    /// Auctions in the document.
    pub auctions: usize,
}

impl Default for AuctionFeedParams {
    fn default() -> Self {
        AuctionFeedParams { auctions: 10 }
    }
}

/// Auctions whose bid lists tick behind a short-TTL `getBids` service.
/// Each `getBids` answer *contains a further call* (`getHighBid`), so
/// every refresh exercises nested invocation — the workload the
/// `refresh_depth` / `max_refires` guardrails exist for.
pub fn auction_feed(params: &AuctionFeedParams) -> Feed {
    let mut doc = Document::with_root("site");
    let root = doc.root();
    for i in 0..params.auctions {
        let a = doc.add_element(root, "auction");
        let item = doc.add_element(a, "item");
        doc.add_text(item, format!("item {i}"));
        let bids = doc.add_element(a, "bids");
        let c = doc.add_call(bids, "getBids");
        doc.add_text(c, format!("item {i}"));
    }

    let mut registry = Registry::new();
    registry.register(counting_service("getBids", |key, count| {
        let mut f = Forest::new();
        let b = f.add_root("bid");
        let amount = f.add_element(b, "amount");
        f.add_text(amount, format!("{}", 100 + count * 10));
        // the current high bid is itself intensional: a nested call the
        // lazy engine must chase on every refresh
        let c = f.add_root_call("getHighBid");
        f.add_text(c, key.to_string());
        f
    }));
    registry.register(counting_service("getHighBid", |_key, count| {
        let mut f = Forest::new();
        let b = f.add_root("bid");
        let amount = f.add_element(b, "amount");
        f.add_text(amount, format!("{}", 200 + count * 10));
        f
    }));

    registry.set_default_profile(NetProfile::latency(5.0));

    let ttls = vec![
        ("getBids".to_string(), 100.0),
        ("getHighBid".to_string(), 100.0),
    ];
    let watchers = vec![(
        "ticker".to_string(),
        parse_query("/site/auction[item=$I]/bids/bid[amount=$A] -> $I,$A").expect("ticker query"),
    )];
    Feed {
        doc,
        registry,
        ttls,
        watchers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(key: &str) -> Forest {
        let mut f = Forest::new();
        f.add_root_text(key);
        f
    }

    fn invoke(registry: &Registry, service: &str, key: &str) -> String {
        let outcome = registry.invoke(service, params(key), None).unwrap();
        axml_xml::to_xml(&outcome.result)
    }

    #[test]
    fn volatile_keys_change_per_invocation_stable_keys_do_not() {
        let feed = price_feed(&PriceFeedParams {
            hotels: 4,
            volatile_stride: 2,
        });
        let a1 = invoke(&feed.registry, "getPrice", "0|volatile");
        let a2 = invoke(&feed.registry, "getPrice", "0|volatile");
        assert_ne!(a1, a2);
        let s1 = invoke(&feed.registry, "getPrice", "1|stable");
        let s2 = invoke(&feed.registry, "getPrice", "1|stable");
        assert_eq!(s1, s2);
    }

    #[test]
    fn price_feed_document_shape() {
        let feed = price_feed(&PriceFeedParams {
            hotels: 3,
            volatile_stride: 2,
        });
        // five calls per hotel, one per aspect
        assert_eq!(feed.doc.calls().len(), 15);
        assert_eq!(feed.watchers.len(), 5);
        assert_eq!(feed.ttls.len(), 5);
        for c in feed.doc.calls() {
            let (_, svc) = feed.doc.call_info(c).unwrap();
            assert!(feed.registry.has_service(svc.as_str()), "{svc}");
        }
    }

    #[test]
    fn auction_bids_nest_a_further_call() {
        let feed = auction_feed(&AuctionFeedParams { auctions: 2 });
        let outcome = feed
            .registry
            .invoke("getBids", params("item 0"), None)
            .unwrap();
        let answer = outcome.result;
        let has_nested_call = answer
            .roots()
            .iter()
            .any(|&r| matches!(answer.kind(r), axml_xml::NodeKind::Call(_, _)));
        assert!(has_nested_call);
    }
}
