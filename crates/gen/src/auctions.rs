//! A second workload domain: an XMark-flavored auction site with
//! intensional bids and seller profiles. Exercises the same machinery as
//! the hotels scenario on a differently-shaped schema (deeper nesting,
//! value joins across subtrees) and powers the `auctions` example and the
//! cross-domain sanity tests.

use crate::scenario::Scenario;
use axml_query::{parse_query, Pattern};
use axml_schema::{parse_schema, Schema};
use axml_services::{Registry, TableService};
use axml_xml::{Document, Forest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Knobs of the auction workload.
#[derive(Clone, Debug)]
pub struct AuctionParams {
    /// Number of open auctions.
    pub auctions: usize,
    /// Number of item categories (the query filters on one).
    pub categories: usize,
    /// Bids per auction (materialized or served).
    pub bids_per_auction: usize,
    /// Fraction of auctions whose bids hide behind `getBids`.
    pub intensional_bids_fraction: f64,
    /// Fraction of sellers whose profile hides behind `getSellerInfo`.
    pub intensional_sellers_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AuctionParams {
    fn default() -> Self {
        AuctionParams {
            auctions: 40,
            categories: 5,
            bids_per_auction: 4,
            intensional_bids_fraction: 0.7,
            intensional_sellers_fraction: 0.5,
            seed: 11,
        }
    }
}

/// The auction-site schema.
pub fn auction_schema() -> Schema {
    parse_schema(
        "root site\n\
         function getBids       = in: data, out: bid*\n\
         function getSellerInfo = in: data, out: profile\n\
         element site          = open_auctions.people\n\
         element open_auctions = auction*\n\
         element auction       = item.category.seller.bids\n\
         element item          = data\n\
         element category      = data\n\
         element seller        = data\n\
         element bids          = (bid | getBids)*\n\
         element bid           = amount.bidder\n\
         element amount        = data\n\
         element bidder        = data\n\
         element people        = (profile | getSellerInfo)*\n\
         element profile       = name.city\n\
         element name          = data\n\
         element city          = data\n",
    )
    .expect("auction schema is well-formed")
}

/// The benchmark query: bid amounts and bidders on auctions of category
/// "cat0".
pub fn auction_query() -> Pattern {
    parse_query(
        "/site/open_auctions/auction[category=\"cat0\"]\
         /bids/bid[amount=$A][bidder=$B] -> $A,$B",
    )
    .expect("auction query parses")
}

/// Generates the auction workload.
pub fn generate_auctions(params: &AuctionParams) -> Scenario {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let schema = auction_schema();
    let mut doc = Document::with_root("site");
    let root = doc.root();
    let open = doc.add_element(root, "open_auctions");

    let mut bids_svc = TableService::new("getBids");
    let mut sellers_svc = TableService::new("getSellerInfo");

    let mut seller_names = Vec::new();
    for i in 0..params.auctions {
        let a = doc.add_element(open, "auction");
        let item = doc.add_element(a, "item");
        doc.add_text(item, format!("Item {i}"));
        let cat = doc.add_element(a, "category");
        doc.add_text(cat, format!("cat{}", rng.gen_range(0..params.categories)));
        let seller = doc.add_element(a, "seller");
        let seller_name = format!("seller{}", i % 7);
        doc.add_text(seller, seller_name.clone());
        seller_names.push(seller_name.clone());
        let bids = doc.add_element(a, "bids");
        let mut bid_forest = Forest::new();
        for b in 0..params.bids_per_auction {
            let bid = bid_forest.add_root("bid");
            let amount = bid_forest.add_element(bid, "amount");
            bid_forest.add_text(amount, format!("{}", 10 * (b + 1) + i));
            let bidder = bid_forest.add_element(bid, "bidder");
            bid_forest.add_text(bidder, format!("user{}", rng.gen_range(0..20)));
        }
        if rng.gen_bool(params.intensional_bids_fraction) {
            let c = doc.add_call(bids, "getBids");
            doc.add_text(c, format!("auction-{i}"));
            bids_svc.insert(format!("auction-{i}"), bid_forest);
        } else {
            for idx in 0..bid_forest.roots().len() {
                let r = bid_forest.roots()[idx];
                doc.append_copy(bids, &bid_forest, r);
            }
        }
    }

    let people = doc.add_element(root, "people");
    seller_names.sort();
    seller_names.dedup();
    for name in seller_names {
        let mut profile = Forest::new();
        let p = profile.add_root("profile");
        let n = profile.add_element(p, "name");
        profile.add_text(n, name.clone());
        let c = profile.add_element(p, "city");
        profile.add_text(c, "Paris");
        if rng.gen_bool(params.intensional_sellers_fraction) {
            let call = doc.add_call(people, "getSellerInfo");
            doc.add_text(call, name.clone());
            sellers_svc.insert(name, profile);
        } else {
            doc.append_copy(people, &profile, profile.roots()[0]);
        }
    }

    let mut registry = Registry::new();
    registry.register(bids_svc);
    registry.register(sellers_svc);

    Scenario {
        doc,
        registry,
        schema,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_core::{Engine, EngineConfig};
    use axml_schema::validate;

    #[test]
    fn generated_site_is_schema_valid() {
        let s = generate_auctions(&AuctionParams::default());
        let errors = validate(&s.doc, &s.schema);
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn lazy_run_skips_seller_profiles() {
        let s = generate_auctions(&AuctionParams::default());
        let q = auction_query();
        let mut doc = s.doc.clone();
        let lazy = Engine::new(&s.registry, EngineConfig::default())
            .with_schema(&s.schema)
            .evaluate(&mut doc, &q);
        // the query never touches /site/people: no seller profile fetched
        assert_eq!(
            lazy.stats.invoked_by_service.get("getSellerInfo"),
            None,
            "{}",
            lazy.stats
        );
        assert!(!lazy.stats.truncated);

        // naive fetches everything; answers agree
        let mut doc2 = s.doc.clone();
        let naive = Engine::new(&s.registry, EngineConfig::naive())
            .with_schema(&s.schema)
            .evaluate(&mut doc2, &q);
        assert!(naive.stats.invoked_by_service.contains_key("getSellerInfo"));
        assert_eq!(
            axml_query::render_result(&doc, &lazy.result),
            axml_query::render_result(&doc2, &naive.result)
        );
    }

    #[test]
    fn typed_pruning_works_on_the_second_schema() {
        let s = generate_auctions(&AuctionParams {
            auctions: 30,
            ..Default::default()
        });
        let q = auction_query();
        let run = |typing| {
            let mut doc = s.doc.clone();
            let report = Engine::new(
                &s.registry,
                EngineConfig {
                    typing,
                    push_queries: false,
                    ..EngineConfig::default()
                },
            )
            .with_schema(&s.schema)
            .evaluate(&mut doc, &q);
            report.stats.calls_invoked
        };
        let untyped = run(axml_core::Typing::None);
        let exact = run(axml_core::Typing::Exact);
        assert!(exact <= untyped);
    }

    #[test]
    fn termination_analysis_passes() {
        let s = generate_auctions(&AuctionParams::default());
        assert!(matches!(
            axml_schema::check_document(&s.schema, &s.doc),
            axml_schema::Termination::Terminates { max_depth: 1 }
        ));
    }
}
