//! Schema-driven random instance generation: derive random valid AXML
//! documents (and service registries answering their calls) from a schema
//! `τ`. Powers schema-round-trip property tests and arbitrary-schema
//! stress workloads.

use axml_schema::{LabelRe, Schema};
use axml_services::{Registry, StaticService};
use axml_xml::{Document, Forest, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Knobs of the schema-driven generator.
#[derive(Clone, Debug)]
pub struct InstanceParams {
    /// RNG seed.
    pub seed: u64,
    /// Maximum element nesting (recursion in the schema is cut here by
    /// preferring ε/shorter alternatives).
    pub max_depth: usize,
    /// Maximum repetitions sampled for `*` / `+`.
    pub max_star: usize,
    /// Probability of keeping a function position as an embedded call
    /// (vs. not emitting it when optional).
    pub call_probability: f64,
}

impl Default for InstanceParams {
    fn default() -> Self {
        InstanceParams {
            seed: 5,
            max_depth: 8,
            max_star: 3,
            call_probability: 0.6,
        }
    }
}

/// Generates a random instance of the schema rooted at `root_label`,
/// together with a registry whose services answer every call the document
/// (and the services' own results, recursively) can make. Results are
/// themselves schema-derived, with depth shrinking so everything
/// terminates.
pub fn random_instance(
    schema: &Schema,
    root_label: &str,
    params: &InstanceParams,
) -> (Document, Registry) {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut doc = Document::with_root(root_label);
    let root = doc.root();
    grow_element(
        schema,
        &mut doc,
        root,
        root_label,
        params,
        &mut rng,
        params.max_depth,
    );

    // services: one static result per declared function, derived from its
    // output type at reduced depth (so nested calls bottom out)
    let mut registry = Registry::new();
    for sig in schema.functions() {
        let mut f = Forest::new();
        let word = sample_word(schema, &sig.output, params, &mut rng, params.max_depth / 2);
        for sym in word {
            emit_symbol(
                schema,
                &mut f,
                None,
                &sym,
                params,
                &mut rng,
                params.max_depth / 2,
            );
        }
        registry.register(StaticService::new(sig.name.as_str(), f));
    }
    (doc, registry)
}

/// A sampled content symbol.
#[derive(Clone, Debug)]
enum SymChoice {
    Elem(String),
    Fun(String),
    Data,
}

fn grow_element(
    schema: &Schema,
    doc: &mut Document,
    node: NodeId,
    label: &str,
    params: &InstanceParams,
    rng: &mut StdRng,
    depth: usize,
) {
    let Some(content) = schema.element(label) else {
        return; // undeclared: leave empty
    };
    let content = content.clone();
    for sym in sample_word(schema, &content, params, rng, depth) {
        emit_symbol(schema, doc, Some(node), &sym, params, rng, depth);
    }
}

fn emit_symbol(
    schema: &Schema,
    doc: &mut Document,
    parent: Option<NodeId>,
    sym: &SymChoice,
    params: &InstanceParams,
    rng: &mut StdRng,
    depth: usize,
) {
    match sym {
        SymChoice::Data => {
            let value = format!("v{}", rng.gen_range(0..100));
            match parent {
                Some(p) => {
                    doc.add_text(p, value);
                }
                None => {
                    doc.add_root_text(value);
                }
            }
        }
        SymChoice::Fun(name) => {
            let call = match parent {
                Some(p) => doc.add_call(p, name.as_str()),
                None => doc.add_root_call(name.as_str()),
            };
            // parameters sampled from the input type, data-only depth
            if let Some(sig) = schema.function(name) {
                let input = sig.input.clone();
                for psym in sample_word(schema, &input, params, rng, 1) {
                    if let SymChoice::Data = psym {
                        doc.add_text(call, format!("p{}", rng.gen_range(0..100)));
                    }
                }
            }
        }
        SymChoice::Elem(name) => {
            let e = match parent {
                Some(p) => doc.add_element(p, name.as_str()),
                None => doc.add_root(name.as_str()),
            };
            if depth > 0 {
                grow_element(schema, doc, e, name, params, rng, depth - 1);
            }
        }
    }
}

/// Samples one word of `re`'s language (bounded repetitions; at depth 0,
/// nullable expressions collapse to ε so recursion terminates).
fn sample_word(
    schema: &Schema,
    re: &LabelRe,
    params: &InstanceParams,
    rng: &mut StdRng,
    depth: usize,
) -> Vec<SymChoice> {
    match re {
        LabelRe::Empty => Vec::new(),
        LabelRe::Epsilon => Vec::new(),
        LabelRe::Data => vec![SymChoice::Data],
        // `any` positions: emit a data value (always valid)
        LabelRe::Any => vec![SymChoice::Data],
        LabelRe::Sym(l) => {
            if schema.is_function(l.as_str()) {
                vec![SymChoice::Fun(l.to_string())]
            } else {
                vec![SymChoice::Elem(l.to_string())]
            }
        }
        LabelRe::Seq(parts) => parts
            .iter()
            .flat_map(|p| sample_word(schema, p, params, rng, depth))
            .collect(),
        LabelRe::Alt(parts) => {
            // at depth 0 prefer a nullable branch to stop recursion; prefer
            // dropping optional function branches per call_probability
            let viable: Vec<&LabelRe> = if depth == 0 {
                let nullable: Vec<&LabelRe> = parts.iter().filter(|p| p.nullable()).collect();
                if nullable.is_empty() {
                    parts.iter().collect()
                } else {
                    nullable
                }
            } else {
                parts.iter().collect()
            };
            let pick = viable[rng.gen_range(0..viable.len())];
            sample_word(schema, pick, params, rng, depth)
        }
        LabelRe::Star(p) => {
            let n = if depth == 0 {
                0
            } else {
                rng.gen_range(0..=params.max_star)
            };
            (0..n)
                .flat_map(|_| sample_word(schema, p, params, rng, depth))
                .collect()
        }
        LabelRe::Plus(p) => {
            let n = 1 + if depth == 0 {
                0
            } else {
                rng.gen_range(0..params.max_star)
            };
            (0..n)
                .flat_map(|_| sample_word(schema, p, params, rng, depth))
                .collect()
        }
        LabelRe::Opt(p) => {
            let keep = depth > 0 && rng.gen_bool(params.call_probability);
            if keep {
                sample_word(schema, p, params, rng, depth)
            } else {
                Vec::new()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_schema::{figure2_schema, validate};

    #[test]
    fn generated_instances_validate() {
        let schema = figure2_schema();
        for seed in 0..30 {
            let (doc, _) = random_instance(
                &schema,
                "hotels",
                &InstanceParams {
                    seed,
                    ..Default::default()
                },
            );
            let errors = validate(&doc, &schema);
            assert!(errors.is_empty(), "seed {seed}: {errors:?}");
            doc.check_integrity().unwrap();
        }
    }

    #[test]
    fn service_results_match_their_output_types() {
        let schema = figure2_schema();
        let (_, registry) = random_instance(&schema, "hotels", &InstanceParams::default());
        for sig in schema.functions() {
            let out = registry
                .invoke(sig.name.as_str(), Forest::new(), None)
                .unwrap();
            assert!(
                axml_schema::forest_matches_type(&out.result, &sig.output),
                "{} result does not match its output type",
                sig.name
            );
        }
    }

    #[test]
    fn generation_terminates_on_recursive_schemas() {
        let schema = axml_schema::parse_schema(
            "element tree = data.tree*\nfunction f = in: data, out: tree\n",
        )
        .unwrap();
        let (doc, _) = random_instance(&schema, "tree", &InstanceParams::default());
        assert!(doc.len() < 1_000_000);
        doc.check_integrity().unwrap();
    }

    #[test]
    fn full_materialization_of_generated_instance_terminates() {
        // figure-2 style schemas have an acyclic call graph: everything
        // bottoms out even through the generated services
        let schema = figure2_schema();
        let (mut doc, registry) = random_instance(
            &schema,
            "hotels",
            &InstanceParams {
                seed: 9,
                ..Default::default()
            },
        );
        let mut guard = 0;
        loop {
            let calls = doc.calls();
            if calls.is_empty() {
                break;
            }
            guard += 1;
            assert!(guard < 100_000);
            let c = calls[0];
            let (_, svc) = doc.call_info(c).unwrap();
            let out = registry
                .invoke(svc.as_str(), doc.children_to_forest(c), None)
                .unwrap();
            doc.splice_call(c, &out.result);
        }
        let errors = validate(&doc, &schema);
        assert!(errors.is_empty(), "{errors:?}");
    }
}
