//! The paper's running example: the night-life / hotels scenario of
//! Figures 1–4, both as the exact four-hotel document of Figure 1 and as a
//! parameterized generator used by the experiment harness.

use axml_query::{parse_query, Pattern};
use axml_schema::{figure2_schema, Schema};
use axml_services::{Registry, StaticService, TableService};
use axml_xml::{Document, Forest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A ready-to-run workload: document + services + schema (shared by the
/// hotels and auctions domains).
pub struct Scenario {
    /// The AXML document (hotels with intensional parts).
    pub doc: Document,
    /// The registry answering `getHotels`, `getRating`, `getNearbyRestos`
    /// and `getNearbyMuseums`.
    pub registry: Registry,
    /// The Figure 2 schema.
    pub schema: Schema,
}

/// The query of Figure 4: names and addresses of five-star restaurants
/// near five-star "Best Western" hotels.
pub fn figure4_query() -> Pattern {
    parse_query(
        "/hotels/hotel[name=\"Best Western\"][rating=\"*****\"]\
         /nearby//restaurant[name=$X][address=$Y][rating=\"*****\"] -> $X,$Y",
    )
    .expect("figure 4 query parses")
}

fn stars(n: u32) -> String {
    "*".repeat(n as usize)
}

fn add_restaurant(f: &mut Forest, parent: axml_xml::NodeId, name: &str, addr: &str, rating: u32) {
    let r = f.add_element(parent, "restaurant");
    let n = f.add_element(r, "name");
    f.add_text(n, name);
    let a = f.add_element(r, "address");
    f.add_text(a, addr);
    let rt = f.add_element(r, "rating");
    f.add_text(rt, stars(rating));
}

fn add_museum(f: &mut Forest, parent: axml_xml::NodeId, name: &str, addr: &str) {
    let m = f.add_element(parent, "museum");
    let n = f.add_element(m, "name");
    f.add_text(n, name);
    let a = f.add_element(m, "address");
    f.add_text(a, addr);
}

/// Builds the exact document of Figure 1 (with OCR-eaten names restored):
/// four hotels and ten numbered calls; calls 1, 3, 4 and 10 are the ones
/// relevant for the Figure 4 query under typing (Section 2's discussion).
pub fn figure1() -> Scenario {
    let schema = figure2_schema();
    let mut doc = Document::with_root("hotels");
    let root = doc.root();

    // hotel 1: Best Western, 75 2nd Av, ***** extensional
    {
        let h = doc.add_element(root, "hotel");
        let n = doc.add_element(h, "name");
        doc.add_text(n, "Best Western");
        let a = doc.add_element(h, "address");
        doc.add_text(a, "75, 2nd Av.");
        let r = doc.add_element(h, "rating");
        doc.add_text(r, "*****");
        let nb = doc.add_element(h, "nearby");
        // call 1: getNearbyRestos("2nd Av.")  — relevant
        let c1 = doc.add_call(nb, "getNearbyRestos");
        doc.add_text(c1, "2nd Av.");
        // call 2: getNearbyMuseums("2nd Av.") — irrelevant under typing
        let c2 = doc.add_call(nb, "getNearbyMuseums");
        doc.add_text(c2, "2nd Av.");
    }
    // hotel 2: Best Western (Madison), rating intensional
    {
        let h = doc.add_element(root, "hotel");
        let n = doc.add_element(h, "name");
        doc.add_text(n, "Best Western");
        let a = doc.add_element(h, "address");
        doc.add_text(a, "22 Madison Av.");
        let r = doc.add_element(h, "rating");
        // call 3: getRating("Best Western Madison") — relevant
        let c3 = doc.add_call(r, "getRating");
        doc.add_text(c3, "Best Western Madison");
        let nb = doc.add_element(h, "nearby");
        // call 4: getNearbyRestos("Madison Av.") — relevant
        let c4 = doc.add_call(nb, "getNearbyRestos");
        doc.add_text(c4, "Madison Av.");
        // call 5: getNearbyMuseums("Madison Av.") — irrelevant under typing
        let c5 = doc.add_call(nb, "getNearbyMuseums");
        doc.add_text(c5, "Madison Av.");
    }
    // hotel 3: Pennsylvania — name mismatch, everything irrelevant
    {
        let h = doc.add_element(root, "hotel");
        let n = doc.add_element(h, "name");
        doc.add_text(n, "Pennsylvania");
        let a = doc.add_element(h, "address");
        doc.add_text(a, "13 Penn St.");
        let r = doc.add_element(h, "rating");
        // call 8: getRating("Pennsylvania") — irrelevant (name mismatch)
        let c8 = doc.add_call(r, "getRating");
        doc.add_text(c8, "Pennsylvania");
        let nb = doc.add_element(h, "nearby");
        // call 9: getNearbyRestos("Penn St.") — irrelevant (name mismatch)
        let c9 = doc.add_call(nb, "getNearbyRestos");
        doc.add_text(c9, "Penn St.");
    }
    // hotel 4: Best Western (34th St) — only museums nearby: under typing
    // no restaurant can ever appear, so call 6 is irrelevant too
    {
        let h = doc.add_element(root, "hotel");
        let n = doc.add_element(h, "name");
        doc.add_text(n, "Best Western");
        let a = doc.add_element(h, "address");
        doc.add_text(a, "12 34th St. W");
        let r = doc.add_element(h, "rating");
        // call 6: getRating("Best Western 34th St.")
        let c6 = doc.add_call(r, "getRating");
        doc.add_text(c6, "Best Western 34th St.");
        let nb = doc.add_element(h, "nearby");
        // call 7: getNearbyMuseums("34th St.")
        let c7 = doc.add_call(nb, "getNearbyMuseums");
        doc.add_text(c7, "34th St.");
    }
    // call 10: getHotels("NY") — relevant
    let c10 = doc.add_call(root, "getHotels");
    doc.add_text(c10, "NY");

    let mut registry = Registry::new();
    // getRating: Madison is five-star, the others are not; "Jo Madison" is
    // the nested call inside getNearbyRestos("Madison Av.")'s result
    let mut ratings = TableService::new("getRating");
    for (key, r) in [
        ("Best Western Madison", 5u32),
        ("Pennsylvania", 3),
        ("Best Western 34th St.", 2),
        ("Jo Madison", 4),
    ] {
        let mut f = Forest::new();
        f.add_root_text(stars(r));
        ratings.insert(key, f);
    }
    registry.register(ratings);

    // getNearbyRestos keyed by street
    let mut restos = TableService::new("getNearbyRestos");
    {
        let mut f = Forest::new();
        let holder = f.add_root("tmp");
        add_restaurant(&mut f, holder, "In Delis", "2nd Ave.", 5);
        add_restaurant(&mut f, holder, "The Capital", "2nd Ave.", 5);
        add_restaurant(&mut f, holder, "Grease", "2nd Ave.", 1);
        // flatten: use children of tmp as roots
        let restos_forest = flatten(&f, holder);
        restos.insert("2nd Av.", restos_forest);
    }
    {
        let mut f = Forest::new();
        let holder = f.add_root("tmp");
        add_restaurant(&mut f, holder, "Mama", "Madison Av.", 5);
        // Mama's rating arrives extensionally; add one with a nested call
        let r = f.add_element(holder, "restaurant");
        let n = f.add_element(r, "name");
        f.add_text(n, "Jo");
        let a = f.add_element(r, "address");
        f.add_text(a, "Madison Av.");
        let rt = f.add_element(r, "rating");
        let c = f.add_call(rt, "getRating");
        f.add_text(c, "Jo Madison");
        restos.insert("Madison Av.", flatten(&f, holder));
    }
    {
        let mut f = Forest::new();
        let holder = f.add_root("tmp");
        add_restaurant(&mut f, holder, "Penn Grill", "Penn St.", 5);
        restos.insert("Penn St.", flatten(&f, holder));
    }
    registry.register(restos);

    // getNearbyMuseums keyed by street
    let mut museums = TableService::new("getNearbyMuseums");
    for key in ["2nd Av.", "Madison Av.", "34th St."] {
        let mut f = Forest::new();
        let holder = f.add_root("tmp");
        add_museum(&mut f, holder, "MoMA", "53rd St.");
        museums.insert(key, flatten(&f, holder));
    }
    registry.register(museums);

    // getHotels("NY"): one extra extensional qualifying hotel
    let mut hotels_f = Forest::new();
    {
        let h = hotels_f.add_root("hotel");
        let n = hotels_f.add_element(h, "name");
        hotels_f.add_text(n, "Best Western");
        let a = hotels_f.add_element(h, "address");
        hotels_f.add_text(a, "1 Broadway");
        let r = hotels_f.add_element(h, "rating");
        hotels_f.add_text(r, "*****");
        let nb = hotels_f.add_element(h, "nearby");
        add_restaurant(&mut hotels_f, nb, "Bowling Green Cafe", "Broadway", 5);
    }
    registry.register(StaticService::new("getHotels", hotels_f));

    Scenario {
        doc,
        registry,
        schema,
    }
}

/// Rebuilds a forest from the children of a holder node.
fn flatten(f: &Forest, holder: axml_xml::NodeId) -> Forest {
    let mut out = Forest::new();
    for &c in f.children(holder) {
        let sub = f.subtree_to_forest(c);
        let root = sub.roots()[0];
        copy_into(&sub, root, &mut out, None);
    }
    out
}

fn copy_into(
    src: &Forest,
    node: axml_xml::NodeId,
    out: &mut Forest,
    parent: Option<axml_xml::NodeId>,
) {
    use axml_xml::NodeKind;
    let new = match (src.kind(node), parent) {
        (NodeKind::Element(l), Some(p)) => out.add_element(p, l.clone()),
        (NodeKind::Element(l), None) => out.add_root(l.clone()),
        (NodeKind::Text(t), Some(p)) => out.add_text(p, t.clone()),
        (NodeKind::Text(t), None) => out.add_root_text(t.clone()),
        (NodeKind::Call(_, s), Some(p)) => out.add_call(p, s.clone()),
        (NodeKind::Call(_, s), None) => out.add_root_call(s.clone()),
    };
    for &c in src.children(node) {
        copy_into(src, c, out, Some(new));
    }
}

/// Knobs of the scaled hotels workload.
#[derive(Clone, Debug)]
pub struct ScenarioParams {
    /// Number of hotels materialized in the document.
    pub hotels: usize,
    /// Fraction of hotels named "Best Western" (the query's name filter).
    pub matching_name_fraction: f64,
    /// Fraction of hotels with a five-star rating.
    pub five_star_fraction: f64,
    /// Fraction of hotels whose rating is an embedded `getRating` call.
    pub intensional_rating_fraction: f64,
    /// Fraction of hotels whose restaurants hide behind `getNearbyRestos`.
    pub intensional_restos_fraction: f64,
    /// Restaurants per hotel (served or materialized).
    pub restos_per_hotel: usize,
    /// Museums per hotel, behind `getNearbyMuseums` calls.
    pub museums_per_hotel: usize,
    /// Fraction of restaurants rated five stars (push-query selectivity).
    pub five_star_resto_fraction: f64,
    /// Extra hotels only reachable through a `getHotels` call.
    pub intensional_hotels: usize,
    /// Add a `getReviews` call per hotel under a `reviews` element — an
    /// *off-path* distractor (like the intro's `/goingout/restaurants`
    /// calls) that even position-only LPQ pruning can skip.
    pub reviews: bool,
    /// RNG seed (everything is deterministic given the seed).
    pub seed: u64,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        ScenarioParams {
            hotels: 50,
            matching_name_fraction: 0.3,
            five_star_fraction: 0.3,
            intensional_rating_fraction: 0.5,
            intensional_restos_fraction: 0.7,
            restos_per_hotel: 5,
            museums_per_hotel: 3,
            five_star_resto_fraction: 0.3,
            intensional_hotels: 5,
            reviews: true,
            seed: 42,
        }
    }
}

/// The Figure 2 schema extended with the `reviews` distractor used by the
/// scaled generator.
pub fn extended_schema() -> Schema {
    let mut s = figure2_schema();
    s.add_element(
        "hotel",
        axml_schema::parse_re("name.address.rating.nearby.reviews?").unwrap(),
    );
    s.add_element(
        "reviews",
        axml_schema::parse_re("(review | getReviews)*").unwrap(),
    );
    s.add_element("review", axml_schema::LabelRe::Data);
    s.add_function(
        "getReviews",
        axml_schema::LabelRe::Data,
        axml_schema::parse_re("review*").unwrap(),
    );
    s
}

/// Generates a scaled hotels workload.
pub fn generate(params: &ScenarioParams) -> Scenario {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let schema = extended_schema();
    let mut doc = Document::with_root("hotels");
    let root = doc.root();

    let mut ratings = TableService::new("getRating");
    let mut restos = TableService::new("getNearbyRestos");
    let mut museums = TableService::new("getNearbyMuseums");
    let mut reviews = TableService::new("getReviews");

    let emit_hotel = |doc: &mut Document,
                      parent: axml_xml::NodeId,
                      i: usize,
                      rng: &mut StdRng,
                      ratings: &mut TableService,
                      restos: &mut TableService,
                      museums: &mut TableService,
                      reviews: &mut TableService| {
        let name = if rng.gen_bool(params.matching_name_fraction) {
            "Best Western".to_string()
        } else {
            format!("Hotel {i}")
        };
        let addr = format!("{i} Main St.");
        let stars_n = if rng.gen_bool(params.five_star_fraction) {
            5
        } else {
            1 + rng.gen_range(0..4) as u32
        };
        let h = doc.add_element(parent, "hotel");
        let n = doc.add_element(h, "name");
        doc.add_text(n, name);
        let a = doc.add_element(h, "address");
        doc.add_text(a, addr.clone());
        let r = doc.add_element(h, "rating");
        if rng.gen_bool(params.intensional_rating_fraction) {
            let c = doc.add_call(r, "getRating");
            doc.add_text(c, addr.clone());
            let mut f = Forest::new();
            f.add_root_text(stars(stars_n));
            ratings.insert(addr.clone(), f);
        } else {
            doc.add_text(r, stars(stars_n));
        }
        let nb = doc.add_element(h, "nearby");
        // restaurants
        let mut resto_forest = Forest::new();
        let holder = resto_forest.add_root("tmp");
        for k in 0..params.restos_per_hotel {
            let rrating = if rng.gen_bool(params.five_star_resto_fraction) {
                5
            } else {
                1 + rng.gen_range(0..4) as u32
            };
            add_restaurant(
                &mut resto_forest,
                holder,
                &format!("Resto {i}-{k}"),
                &addr,
                rrating,
            );
        }
        let resto_forest = flatten(&resto_forest, holder);
        if rng.gen_bool(params.intensional_restos_fraction) {
            let c = doc.add_call(nb, "getNearbyRestos");
            doc.add_text(c, addr.clone());
            restos.insert(addr.clone(), resto_forest);
        } else {
            let sub_root_count = resto_forest.roots().len();
            for ri in 0..sub_root_count {
                copy_subtree_under(&resto_forest, resto_forest.roots()[ri], doc, nb);
            }
        }
        // museums are always intensional (pure distractors for the query)
        if params.museums_per_hotel > 0 {
            let c = doc.add_call(nb, "getNearbyMuseums");
            doc.add_text(c, addr.clone());
            let mut f = Forest::new();
            let holder = f.add_root("tmp");
            for k in 0..params.museums_per_hotel {
                add_museum(&mut f, holder, &format!("Museum {i}-{k}"), &addr);
            }
            museums.insert(addr.clone(), flatten(&f, holder));
        }
        // off-path distractor: reviews behind a call
        if params.reviews {
            let rv = doc.add_element(h, "reviews");
            let c = doc.add_call(rv, "getReviews");
            doc.add_text(c, addr.clone());
            let mut f = Forest::new();
            let r = f.add_root("review");
            f.add_text(r, format!("review of hotel {i}"));
            reviews.insert(addr.clone(), f);
        }
    };

    for i in 0..params.hotels {
        emit_hotel(
            &mut doc,
            root,
            i,
            &mut rng,
            &mut ratings,
            &mut restos,
            &mut museums,
            &mut reviews,
        );
    }

    // intensional hotels behind getHotels
    let mut hotels_forest = Forest::new();
    if params.intensional_hotels > 0 {
        let holder = hotels_forest.add_root("tmp");
        let mut sub = Document::with_root("tmp2");
        let sub_root = sub.root();
        for j in 0..params.intensional_hotels {
            emit_hotel(
                &mut sub,
                sub_root,
                params.hotels + j,
                &mut rng,
                &mut ratings,
                &mut restos,
                &mut museums,
                &mut reviews,
            );
        }
        for idx in 0..sub.children(sub_root).len() {
            let c = sub.children(sub_root)[idx];
            copy_subtree_under_forest(&sub, c, &mut hotels_forest, holder);
        }
        hotels_forest = flatten(&hotels_forest, holder);
        let c = doc.add_call(root, "getHotels");
        doc.add_text(c, "NY");
    }

    let mut registry = Registry::new();
    registry.register(ratings);
    registry.register(restos);
    registry.register(museums);
    registry.register(reviews);
    registry.register(StaticService::new("getHotels", hotels_forest));

    Scenario {
        doc,
        registry,
        schema,
    }
}

fn copy_subtree_under(
    src: &Forest,
    node: axml_xml::NodeId,
    dst: &mut Document,
    parent: axml_xml::NodeId,
) {
    use axml_xml::NodeKind;
    let new = match src.kind(node) {
        NodeKind::Element(l) => dst.add_element(parent, l.clone()),
        NodeKind::Text(t) => dst.add_text(parent, t.clone()),
        NodeKind::Call(_, s) => dst.add_call(parent, s.clone()),
    };
    for &c in src.children(node) {
        copy_subtree_under(src, c, dst, new);
    }
}

fn copy_subtree_under_forest(
    src: &Document,
    node: axml_xml::NodeId,
    dst: &mut Forest,
    parent: axml_xml::NodeId,
) {
    copy_subtree_under(src, node, dst, parent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_schema::validate;

    #[test]
    fn figure1_document_is_schema_valid() {
        let s = figure1();
        let errors = validate(&s.doc, &s.schema);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(s.doc.calls().len(), 10);
    }

    #[test]
    fn figure4_query_parses() {
        let q = figure4_query();
        assert_eq!(q.result_nodes().len(), 2);
    }

    #[test]
    fn generated_document_is_schema_valid() {
        let s = generate(&ScenarioParams {
            hotels: 20,
            ..Default::default()
        });
        let errors = validate(&s.doc, &s.schema);
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn generation_is_deterministic() {
        let p = ScenarioParams::default();
        let a = generate(&p);
        let b = generate(&p);
        assert_eq!(axml_xml::to_xml(&a.doc), axml_xml::to_xml(&b.doc));
    }

    #[test]
    fn intensional_fractions_drive_call_counts() {
        let none = generate(&ScenarioParams {
            hotels: 30,
            intensional_rating_fraction: 0.0,
            intensional_restos_fraction: 0.0,
            museums_per_hotel: 0,
            intensional_hotels: 0,
            reviews: false,
            ..Default::default()
        });
        assert_eq!(none.doc.calls().len(), 0);
        let all = generate(&ScenarioParams {
            hotels: 30,
            intensional_rating_fraction: 1.0,
            intensional_restos_fraction: 1.0,
            museums_per_hotel: 2,
            intensional_hotels: 0,
            reviews: false,
            ..Default::default()
        });
        // one rating + one restos + one museums call per hotel
        assert_eq!(all.doc.calls().len(), 90);
    }

    #[test]
    fn services_cover_generated_keys() {
        let s = generate(&ScenarioParams::default());
        // every call in the document is answerable
        for c in s.doc.calls() {
            let (_, svc) = s.doc.call_info(c).unwrap();
            assert!(s.registry.has_service(svc.as_str()), "{svc}");
        }
    }
}
