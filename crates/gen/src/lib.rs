#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # axml-gen — workload generators for the Active XML experiments
//!
//! * [`scenario`] — the paper's hotels/night-life running example: the
//!   exact Figure 1 document + Figure 4 query, and a parameterized scaled
//!   generator with knobs for every experiment sweep (intensional
//!   fractions, selectivities, distractor services).
//! * [`synthetic`] — seeded random AXML documents with stratified,
//!   provably terminating service registries, for property tests.

pub mod auctions;
pub mod feeds;
pub mod from_schema;
pub mod scenario;
pub mod synthetic;

pub use auctions::{auction_query, auction_schema, generate_auctions, AuctionParams};
pub use feeds::{auction_feed, price_feed, AuctionFeedParams, Feed, PriceFeedParams};
pub use from_schema::{random_instance, InstanceParams};
pub use scenario::{figure1, figure4_query, generate, Scenario, ScenarioParams};
pub use synthetic::{random_query, random_workload, SyntheticParams};
