//! Seeded random AXML workloads — documents, terminating service
//! registries and queries over a small shared alphabet. Used by the
//! cross-strategy equivalence property tests and by stress benchmarks.
//!
//! Termination is guaranteed by construction: services are stratified by
//! depth, a depth-`d` service only returns calls to depth-`d−1` services,
//! and depth-0 services return pure data.

use axml_query::{EdgeKind, PLabel, PNodeId, Pattern};
use axml_services::{Registry, StaticService};
use axml_xml::{Document, Forest, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Knobs for the random workload.
#[derive(Clone, Debug)]
pub struct SyntheticParams {
    /// RNG seed.
    pub seed: u64,
    /// Approximate number of nodes in the initial document.
    pub doc_nodes: usize,
    /// Probability that a generated leaf position holds a service call.
    pub call_probability: f64,
    /// Element alphabet size (labels `e0…`).
    pub alphabet: usize,
    /// Service strata: depth-`d` results may contain depth-`d−1` calls.
    pub service_depth: usize,
    /// Services per stratum.
    pub services_per_depth: usize,
}

impl Default for SyntheticParams {
    fn default() -> Self {
        SyntheticParams {
            seed: 7,
            doc_nodes: 120,
            call_probability: 0.25,
            alphabet: 6,
            service_depth: 2,
            services_per_depth: 3,
        }
    }
}

fn svc_name(depth: usize, k: usize) -> String {
    format!("svc{depth}_{k}")
}

/// Generates a document and a registry of terminating services.
pub fn random_workload(params: &SyntheticParams) -> (Document, Registry) {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut registry = Registry::new();

    // services, bottom stratum first
    for depth in 0..=params.service_depth {
        for k in 0..params.services_per_depth {
            let mut f = Forest::new();
            let n_roots = 1 + rng.gen_range(0..3);
            for _ in 0..n_roots {
                let root = f.add_root(format!("e{}", rng.gen_range(0..params.alphabet)));
                grow_forest(&mut f, root, depth, params, &mut rng, 3);
            }
            registry.register(StaticService::new(svc_name(depth, k), f));
        }
    }

    let mut doc = Document::with_root("root");
    let root = doc.root();
    let mut budget = params.doc_nodes;
    grow_doc(&mut doc, root, params, &mut rng, &mut budget, 6);
    (doc, registry)
}

fn grow_doc(
    doc: &mut Document,
    at: NodeId,
    params: &SyntheticParams,
    rng: &mut StdRng,
    budget: &mut usize,
    depth: usize,
) {
    if depth == 0 || *budget == 0 {
        return;
    }
    let fanout = 1 + rng.gen_range(0..4);
    for _ in 0..fanout {
        if *budget == 0 {
            return;
        }
        *budget -= 1;
        let roll: f64 = rng.gen();
        if roll < params.call_probability {
            let d = rng.gen_range(0..=params.service_depth);
            let k = rng.gen_range(0..params.services_per_depth);
            doc.add_call(at, svc_name(d, k));
        } else if roll < params.call_probability + 0.25 {
            doc.add_text(at, format!("v{}", rng.gen_range(0..5)));
        } else {
            let e = doc.add_element(at, format!("e{}", rng.gen_range(0..params.alphabet)));
            grow_doc(doc, e, params, rng, budget, depth - 1);
        }
    }
}

fn grow_forest(
    f: &mut Forest,
    at: NodeId,
    service_depth: usize,
    params: &SyntheticParams,
    rng: &mut StdRng,
    depth: usize,
) {
    if depth == 0 {
        f.add_text(at, format!("v{}", rng.gen_range(0..5)));
        return;
    }
    let fanout = 1 + rng.gen_range(0..3);
    for _ in 0..fanout {
        let roll: f64 = rng.gen();
        if service_depth > 0 && roll < 0.3 {
            // a nested call one stratum down (termination!)
            let k = rng.gen_range(0..params.services_per_depth);
            f.add_call(at, svc_name(service_depth - 1, k));
        } else if roll < 0.55 {
            f.add_text(at, format!("v{}", rng.gen_range(0..5)));
        } else {
            let e = f.add_element(at, format!("e{}", rng.gen_range(0..params.alphabet)));
            grow_forest(f, e, service_depth, params, rng, depth - 1);
        }
    }
}

/// Generates a random tree-pattern query over the same alphabet, rooted at
/// the synthetic document root.
pub fn random_query(seed: u64, alphabet: usize, max_nodes: usize) -> Pattern {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = Pattern::new();
    let root = p.set_root(PLabel::Const("root".into()));
    let mut budget = max_nodes.saturating_sub(1);
    grow_query(&mut p, root, alphabet, &mut rng, &mut budget, 3);
    // result: a random node (prefer a leaf); fall back to the root
    let ids: Vec<PNodeId> = p.node_ids().collect();
    let leaves: Vec<PNodeId> = ids
        .iter()
        .copied()
        .filter(|&i| p.node(i).children.is_empty())
        .collect();
    let pick = if leaves.is_empty() {
        root
    } else {
        leaves[rng.gen_range(0..leaves.len())]
    };
    p.mark_result(pick);
    p
}

fn grow_query(
    p: &mut Pattern,
    at: PNodeId,
    alphabet: usize,
    rng: &mut StdRng,
    budget: &mut usize,
    depth: usize,
) {
    if depth == 0 || *budget == 0 {
        return;
    }
    let fanout = 1 + rng.gen_range(0..2);
    for _ in 0..fanout {
        if *budget == 0 {
            return;
        }
        *budget -= 1;
        let edge = if rng.gen_bool(0.35) {
            EdgeKind::Descendant
        } else {
            EdgeKind::Child
        };
        let label = match rng.gen_range(0..10) {
            0 => PLabel::Wildcard,
            1 | 2 => PLabel::Const(format!("v{}", rng.gen_range(0..5)).into()),
            _ => PLabel::Const(format!("e{}", rng.gen_range(0..alphabet)).into()),
        };
        let is_value = matches!(&label, PLabel::Const(l) if l.as_str().starts_with('v'));
        let c = p.add_child(at, edge, label);
        if !is_value {
            grow_query(p, c, alphabet, rng, budget, depth - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        let p = SyntheticParams::default();
        let (d1, _) = random_workload(&p);
        let (d2, _) = random_workload(&p);
        assert_eq!(axml_xml::to_xml(&d1), axml_xml::to_xml(&d2));
    }

    #[test]
    fn all_doc_services_are_registered_and_terminate() {
        let p = SyntheticParams::default();
        let (mut doc, registry) = random_workload(&p);
        // brute-force full materialization must terminate
        let mut guard = 0;
        loop {
            let calls = doc.calls();
            if calls.is_empty() {
                break;
            }
            guard += 1;
            assert!(guard < 10_000, "materialization did not terminate");
            let c = calls[0];
            let (_, svc) = doc.call_info(c).unwrap();
            assert!(registry.has_service(svc.as_str()));
            let out = registry
                .invoke(svc.as_str(), doc.children_to_forest(c), None)
                .unwrap();
            doc.splice_call(c, &out.result);
            doc.check_integrity().unwrap();
        }
    }

    #[test]
    fn random_queries_are_well_formed() {
        for seed in 0..20 {
            let q = random_query(seed, 6, 8);
            q.check_integrity().unwrap();
            assert!(!q.result_nodes().is_empty());
            assert!(q.len() <= 8 + 1);
        }
    }
}
