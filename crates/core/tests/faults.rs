//! The fault matrix: every strategy × every fault mode.
//!
//! Modes: none, transient-then-succeed, permanent outage, timeout, and
//! failure inside a §4.4 parallel batch. For each combination the engine
//! must not panic, the completeness flag must be truthful, and — with
//! enough retries to outlast the transients — the answer must equal the
//! fault-free answer. Fault schedules are deterministic functions of the
//! seed, so every assertion here is exact, and the whole suite can be
//! replayed under a different schedule via `AXML_FAULT_SEED`.

use axml_core::{Engine, EngineConfig, EvalReport};
use axml_query::parse_query;
use axml_services::{
    BreakerConfig, CallRequest, FaultProfile, FnService, NetProfile, Registry, RetryPolicy,
};
use axml_xml::{parse, Document};
use std::collections::BTreeSet;

/// Seed for every schedule in this suite; `AXML_FAULT_SEED` (the CI fault
/// job sets it) replays the matrix under a different deterministic world.
fn seed() -> u64 {
    std::env::var("AXML_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// Two providers behind the same query: faults are injected into `svcB`
/// only, so `svcA`'s answers measure what degradation must preserve.
fn registry() -> Registry {
    let mut r = Registry::new();
    for name in ["svcA", "svcB"] {
        r.register(FnService::new(name, move |req: &CallRequest| {
            let key = req.first_text().unwrap_or("?");
            parse(&format!("<item><id>{name}-{key}</id></item>")).unwrap()
        }));
    }
    r.set_default_profile(NetProfile::latency(10.0));
    r
}

/// `<r>` with four calls to each provider, interleaved in document order.
fn doc() -> Document {
    let mut d = Document::with_root("r");
    let root = d.root();
    for i in 0..4 {
        for svc in ["svcA", "svcB"] {
            let c = d.add_call(root, svc);
            d.add_text(c, format!("{i}"));
        }
    }
    d
}

fn strategies() -> Vec<(&'static str, EngineConfig)> {
    vec![
        ("naive", EngineConfig::naive()),
        ("top-down", EngineConfig::top_down()),
        ("lpq", EngineConfig::lpq()),
        ("nfq-plain", EngineConfig::nfq_plain()),
        ("full-lazy", EngineConfig::default()),
    ]
}

fn answers(doc: &Document, report: &EvalReport) -> BTreeSet<Vec<String>> {
    axml_query::render_result(doc, &report.result)
        .into_iter()
        .collect()
}

fn run(registry: &Registry, config: EngineConfig) -> (EvalReport, Document) {
    let q = parse_query("/r/item/id/$I -> $I").unwrap();
    let mut d = doc();
    let report = Engine::new(registry, config).evaluate(&mut d, &q);
    d.check_integrity().unwrap();
    (report, d)
}

/// The full answer: all eight items, both providers.
fn fault_free_answers(config: EngineConfig) -> BTreeSet<Vec<String>> {
    let (report, d) = run(&registry(), config);
    assert!(report.complete);
    answers(&d, &report)
}

#[test]
fn mode_none_every_strategy_is_complete() {
    for (name, config) in strategies() {
        let (report, d) = run(&registry(), config);
        assert!(report.complete, "{name}: fault-free run must be complete");
        assert_eq!(report.stats.failed_calls, 0, "{name}");
        assert_eq!(report.stats.breaker_skips, 0, "{name}");
        assert_eq!(answers(&d, &report).len(), 8, "{name}");
    }
}

#[test]
fn mode_transient_retries_recover_the_full_answer() {
    for (name, config) in strategies() {
        let reference = fault_free_answers(config.clone());
        let mut r = registry();
        r.set_fault_profile("svcB", FaultProfile::transient(seed(), 2));
        r.set_retry_policy(RetryPolicy::default().with_retries(3));
        let (report, d) = run(&r, config);
        assert!(
            report.complete,
            "{name}: transients within the retry budget must not degrade"
        );
        assert_eq!(report.stats.failed_calls, 0, "{name}");
        assert_eq!(
            answers(&d, &report),
            reference,
            "{name}: answer must equal the fault-free answer"
        );
        // the recovery was paid for in retries, and only by svcB
        assert!(
            report.stats.call_attempts > report.stats.calls_invoked,
            "{name}: expected retry attempts beyond one per call"
        );
    }
}

#[test]
fn mode_transient_without_retries_degrades_instead_of_panicking() {
    for (name, config) in strategies() {
        let mut r = registry();
        r.set_fault_profile("svcB", FaultProfile::transient(seed(), 2));
        r.set_retry_policy(RetryPolicy::none());
        r.set_breaker_config(BreakerConfig::disabled());
        let (report, d) = run(&r, config);
        assert!(
            !report.complete,
            "{name}: unabsorbed faults must be flagged"
        );
        assert_eq!(report.stats.failed_calls, 4, "{name}: all svcB calls fail");
        let got = answers(&d, &report);
        assert_eq!(got.len(), 4, "{name}: svcA's answers must survive");
        assert!(
            got.iter()
                .all(|row| row.iter().all(|v| v.starts_with("svcA-"))),
            "{name}: partial answer may only contain svcA items, got {got:?}"
        );
    }
}

#[test]
fn mode_permanent_partial_answer_keeps_healthy_subtrees() {
    for (name, config) in strategies() {
        let reference = fault_free_answers(config.clone());
        let expected_partial: BTreeSet<Vec<String>> = reference
            .iter()
            .filter(|row| row.iter().all(|v| v.starts_with("svcA-")))
            .cloned()
            .collect();
        let mut r = registry();
        r.set_fault_profile("svcB", FaultProfile::permanent(seed()));
        r.set_breaker_config(BreakerConfig::disabled());
        let (report, d) = run(&r, config);
        assert!(!report.complete, "{name}");
        assert_eq!(report.stats.failed_calls, 4, "{name}");
        // default policy: 1 + 3 retries per failed call, one per success
        assert_eq!(
            report.stats.call_attempts,
            report.stats.calls_invoked + 4 * 4,
            "{name}"
        );
        assert_eq!(answers(&d, &report), expected_partial, "{name}");
    }
}

#[test]
fn mode_permanent_circuit_breaker_cuts_the_retry_storm() {
    for (name, config) in strategies() {
        let mut r = registry();
        r.set_fault_profile("svcB", FaultProfile::permanent(seed()));
        r.set_breaker_config(BreakerConfig {
            failure_threshold: 2,
            cooldown_ms: 1e9, // never half-opens within this run
        });
        let (report, d) = run(&r, config);
        assert!(!report.complete, "{name}");
        assert_eq!(
            report.stats.failed_calls + report.stats.breaker_skips,
            4,
            "{name}: every svcB call either fails or is refused"
        );
        // parallel batches dispatch before any failure is recorded, so the
        // breaker can only help strictly sequential strategies — but it
        // must never hurt: svcA is untouched either way
        let got = answers(&d, &report);
        assert_eq!(got.len(), 4, "{name}");
        assert!(got.iter().all(|row| row[0].starts_with("svcA-")), "{name}");
    }
}

#[test]
fn mode_timeout_burns_the_deadline_then_degrades() {
    for (name, config) in strategies() {
        let mut r = registry();
        r.set_fault_profile("svcB", FaultProfile::timeouts(seed()));
        r.set_retry_policy(RetryPolicy::default().with_timeout_ms(50.0));
        r.set_breaker_config(BreakerConfig::disabled());
        let (report, d) = run(&r, config);
        assert!(!report.complete, "{name}");
        assert_eq!(report.stats.failed_calls, 4, "{name}");
        let net = r.stats();
        assert_eq!(
            net.timed_out_attempts,
            4 * 4,
            "{name}: every svcB attempt must time out"
        );
        // each timed-out attempt burned the full 50 ms deadline
        assert!(
            report.stats.sim_time_ms >= 4.0 * 50.0,
            "{name}: deadline not charged to the clock ({} ms)",
            report.stats.sim_time_ms
        );
        assert_eq!(answers(&d, &report).len(), 4, "{name}");
    }
}

#[test]
fn mode_parallel_batch_failure_spares_batch_mates() {
    // failures inside a §4.4 batch, logical clock and real threads
    for threads in [false, true] {
        for (name, base) in strategies() {
            let config = EngineConfig {
                parallel: true,
                real_threads: threads,
                ..base
            };
            let reference = fault_free_answers(config.clone());
            let expected_partial: BTreeSet<Vec<String>> = reference
                .iter()
                .filter(|row| row.iter().all(|v| v.starts_with("svcA-")))
                .cloned()
                .collect();
            let mut r = registry();
            r.set_fault_profile("svcB", FaultProfile::permanent(seed()));
            r.set_breaker_config(BreakerConfig::disabled());
            let (report, d) = run(&r, config);
            assert!(!report.complete, "{name} threads={threads}");
            assert_eq!(report.stats.failed_calls, 4, "{name} threads={threads}");
            assert_eq!(
                answers(&d, &report),
                expected_partial,
                "{name} threads={threads}: batch mates of failed calls must survive"
            );
        }
    }
}

/// A printable fingerprint of everything an EvalReport determines
/// (answers, the completed document, retry counts, the simulated clock,
/// the trace) — but not CPU durations, which are measurements.
fn fingerprint(doc: &Document, report: &EvalReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "doc: {}", axml_xml::to_xml(doc)).unwrap();
    for row in answers(doc, report) {
        writeln!(out, "answer: {row:?}").unwrap();
    }
    let s = &report.stats;
    writeln!(
        out,
        "calls={} failed={} skips={} attempts={} bytes={} rounds={} sim={} complete={}",
        s.calls_invoked,
        s.failed_calls,
        s.breaker_skips,
        s.call_attempts,
        s.bytes_transferred,
        s.rounds,
        s.sim_time_ms,
        report.complete
    )
    .unwrap();
    for e in &report.trace {
        writeln!(
            out,
            "trace: r{} {} /{} pushed={} ok={} attempts={} cost={}",
            e.round, e.service, e.path, e.pushed, e.ok, e.attempts, e.cost_ms
        )
        .unwrap();
    }
    out
}

#[test]
fn same_seed_means_byte_identical_reports() {
    for (name, base) in strategies() {
        let config = EngineConfig {
            trace: true,
            ..base
        };
        let one = |()| {
            let mut r = registry();
            r.set_default_fault_profile(FaultProfile::chaos(seed(), 0.5));
            r.set_retry_policy(RetryPolicy::default().with_timeout_ms(200.0));
            let (report, d) = run(&r, config.clone());
            fingerprint(&d, &report)
        };
        assert_eq!(
            one(()),
            one(()),
            "{name}: two runs with the same fault seed must agree byte-for-byte"
        );
    }
}

// ---------------- deadline rows ----------------

#[test]
fn mode_deadline_expired_before_layer_0_invokes_nothing() {
    // a zero deadline expires before the first dispatch: the run closes
    // immediately as deadline-truncated, with every candidate pending
    for (name, base) in strategies() {
        let config = EngineConfig {
            deadline_ms: 0.0,
            ..base
        };
        let (report, d) = run(&registry(), config);
        assert!(!report.complete, "{name}");
        assert_eq!(report.stats.calls_invoked, 0, "{name}: nothing may start");
        assert_eq!(report.stats.failed_calls, 0, "{name}");
        assert!(report.stats.truncated, "{name}");
        assert!(report.stats.deadline_exceeded, "{name}");
        assert_eq!(report.stats.sim_time_ms, 0.0, "{name}");
        assert!(answers(&d, &report).is_empty(), "{name}");
    }
}

#[test]
fn mode_deadline_expiry_mid_run_yields_sound_partial_answer() {
    // sequential dispatch at 10 ms per call with a 35 ms budget: three
    // calls land, the fourth burns the remaining 5 ms to the deadline,
    // the rest are never dispatched — and the clock never passes expiry
    for (name, base) in [
        ("nfq-plain", EngineConfig::nfq_plain()),
        ("naive-seq", EngineConfig::naive()),
        ("top-down", EngineConfig::top_down()),
    ] {
        let config = EngineConfig {
            deadline_ms: 35.0,
            parallel: false,
            ..base
        };
        let (report, d) = run(&registry(), config);
        assert!(!report.complete, "{name}");
        assert_eq!(report.stats.calls_invoked, 3, "{name}: 3 × 10 ms fit");
        assert_eq!(
            report.stats.failed_calls, 1,
            "{name}: the in-flight call is cut at the deadline"
        );
        assert!(report.stats.deadline_exceeded, "{name}");
        assert!(report.stats.truncated, "{name}");
        assert!(
            report.stats.sim_time_ms <= 35.0 + 1e-9,
            "{name}: clock overran the deadline ({} ms)",
            report.stats.sim_time_ms
        );
        assert_eq!(answers(&d, &report).len(), 3, "{name}");
    }
}

#[test]
fn mode_deadline_expiry_mid_batch_clips_every_leg() {
    // a parallel batch dispatched with 5 ms of budget left: every 10 ms
    // call is clipped, burns exactly the remainder, and fails with the
    // deadline cause; the batch advance lands the clock exactly on expiry
    let config = EngineConfig {
        deadline_ms: 5.0,
        ..EngineConfig::default()
    };
    let (report, d) = run(&registry(), config);
    assert!(!report.complete);
    assert_eq!(report.stats.calls_invoked, 0);
    assert_eq!(report.stats.failed_calls, 8, "all batch legs cut");
    assert_eq!(report.stats.sim_time_ms, 5.0, "clock stops at expiry");
    assert!(answers(&d, &report).is_empty());
}

#[test]
fn mode_deadline_expiry_during_backoff_never_overruns() {
    // transient faults force retries whose backoff sleeps dwarf the
    // deadline budget: the scheduled pauses must be clipped so the clock
    // never passes expiry, and the cut is reported as deadline truncation
    for deadline_ms in [15.0, 40.0, 80.0] {
        let mut r = registry();
        r.set_fault_profile("svcB", FaultProfile::transient(seed(), 3));
        r.set_retry_policy(RetryPolicy {
            max_retries: 4,
            base_backoff_ms: 50.0,
            backoff_factor: 2.0,
            timeout_ms: f64::INFINITY,
        });
        let config = EngineConfig {
            deadline_ms,
            parallel: false,
            ..EngineConfig::default()
        };
        let (report, _) = run(&r, config);
        assert!(!report.complete, "deadline {deadline_ms}");
        assert!(
            report.stats.sim_time_ms <= deadline_ms + 1e-9,
            "deadline {deadline_ms}: backoff overran the budget ({} ms)",
            report.stats.sim_time_ms
        );
        assert!(
            report.stats.deadline_exceeded || report.stats.failed_calls > 0,
            "deadline {deadline_ms}: the cut must surface as degradation"
        );
    }
}

#[test]
fn different_seeds_reach_the_same_complete_answer_when_absorbed() {
    // chaos transients are absorbed by the default retry budget, so the
    // *answer* is seed-independent even though the schedules differ
    let reference = fault_free_answers(EngineConfig::default());
    for s in [seed(), seed() ^ 0x9e37_79b9, 7, 12345] {
        let mut r = registry();
        r.set_default_fault_profile(FaultProfile::chaos(s, 0.7));
        let (report, d) = run(&r, EngineConfig::default());
        assert!(report.complete, "seed {s}");
        assert_eq!(answers(&d, &report), reference, "seed {s}");
    }
}
