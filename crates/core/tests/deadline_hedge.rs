//! Deadline-aware evaluation: hedged invocations, adaptive load shedding
//! and end-to-end deadlines, exercised at the engine level.
//!
//! Everything here runs on the simulated clock with deterministic fault
//! schedules, so assertions are exact: hedging never makes a batch
//! slower, a hedged pair records exactly one breaker outcome, shedding
//! degrades to a sound partial answer, and two runs with the same seed
//! and flags produce byte-identical JSONL traces — threaded or not.

use axml_core::{Engine, EngineConfig, EngineStats, HedgeConfig, ShedConfig};
use axml_obs::{check_all, to_jsonl, Event, EventKind, RingSink};
use axml_query::parse_query;
use axml_services::{
    BreakerConfig, CallRequest, FaultProfile, FnService, NetProfile, Registry, RetryPolicy,
};
use axml_xml::{parse, Document};
use std::collections::BTreeSet;

fn registry() -> Registry {
    let mut r = Registry::new();
    for name in ["svcA", "svcB"] {
        r.register(FnService::new(name, move |req: &CallRequest| {
            let key = req.first_text().unwrap_or("?");
            parse(&format!("<item><id>{name}-{key}</id></item>")).unwrap()
        }));
    }
    r.set_default_profile(NetProfile::latency(10.0));
    r
}

/// `<r>` with four calls to each provider, interleaved in document order.
fn doc() -> Document {
    let mut d = Document::with_root("r");
    let root = d.root();
    for i in 0..4 {
        for svc in ["svcA", "svcB"] {
            let c = d.add_call(root, svc);
            d.add_text(c, format!("{i}"));
        }
    }
    d
}

/// A latency profile with a heavy tail: no failures, but a fraction of
/// call sites run `slowdown_factor` times slower — the workload hedging
/// is for.
fn tail_profile(seed: u64) -> FaultProfile {
    FaultProfile {
        seed,
        fail_prob: 0.0,
        transient_failures: 0,
        timeout_prob: 0.0,
        slowdown_prob: 0.7,
        slowdown_factor: 10.0,
    }
}

fn answers(doc: &Document, report: &axml_core::EvalReport) -> BTreeSet<Vec<String>> {
    axml_query::render_result(doc, &report.result)
        .into_iter()
        .collect()
}

fn run_traced(r: &Registry, config: EngineConfig) -> (axml_core::EvalReport, Document, Vec<Event>) {
    let q = parse_query("/r/item/id/$I -> $I").unwrap();
    let mut d = doc();
    let ring = RingSink::unbounded();
    let report = Engine::new(r, config)
        .with_observer(&ring)
        .evaluate(&mut d, &q);
    d.check_integrity().unwrap();
    (report, d, ring.events())
}

fn assert_oracle_clean(events: &[Event], stats: &EngineStats, label: &str) {
    let violations = check_all(events, Some(&stats.view()));
    assert!(
        violations.is_empty(),
        "{label}: oracle violations:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

// ---------------- hedging ----------------

#[test]
fn hedging_cuts_tail_latency_without_changing_the_answer() {
    // A parallel batch completes at the max over its calls, so a won
    // hedge race only shortens the batch when it wins on the critical
    // path. Sweep seeds: hedging must never hurt on ANY seed, must fire
    // on the tail profile, and must strictly help on at least one seed.
    let config = EngineConfig {
        hedge: HedgeConfig {
            threshold_ms: 15.0,
            latency_factor: f64::INFINITY,
        },
        ..EngineConfig::default()
    };
    let mut any_hedged = false;
    let mut any_strictly_faster = false;
    for seed in 1..=100u64 {
        let mut base_reg = registry();
        base_reg.set_default_fault_profile(tail_profile(seed));
        let (base, base_doc, base_events) = run_traced(&base_reg, EngineConfig::default());
        assert!(base.complete);
        assert_oracle_clean(&base_events, &base.stats, "baseline");

        let mut hedged_reg = registry();
        hedged_reg.set_default_fault_profile(tail_profile(seed));
        let (hedged, hedged_doc, hedged_events) = run_traced(&hedged_reg, config.clone());
        assert!(hedged.complete);
        assert_oracle_clean(&hedged_events, &hedged.stats, "hedged");

        assert_eq!(
            answers(&hedged_doc, &hedged),
            answers(&base_doc, &base),
            "seed {seed}: hedging must not change the answer"
        );
        assert!(
            hedged.stats.sim_time_ms <= base.stats.sim_time_ms,
            "seed {seed}: hedging made the batch slower ({} > {})",
            hedged.stats.sim_time_ms,
            base.stats.sim_time_ms
        );
        // the wasted-work bound: each loser leg wastes at most its own
        // cost, which the tail profile caps at slowdown_factor × latency
        assert!(
            hedged.stats.hedge_wasted_ms <= hedged.stats.hedged_calls as f64 * 100.0,
            "seed {seed}: wasted work exceeds the per-leg bound"
        );
        // exactly one logical outcome per call, hedged or not
        assert_eq!(hedged.stats.calls_invoked, base.stats.calls_invoked);
        assert_eq!(hedged.stats.failed_calls, 0);
        any_hedged |= hedged.stats.hedged_calls > 0;
        any_strictly_faster |= hedged.stats.sim_time_ms < base.stats.sim_time_ms;
    }
    assert!(any_hedged, "the tail profile must trigger hedges");
    assert!(
        any_strictly_faster,
        "across 100 seeds hedging must win the critical path at least once"
    );
}

#[test]
fn hedge_events_stay_within_the_batch_budget() {
    let mut r = registry();
    r.set_default_fault_profile(tail_profile(7));
    let config = EngineConfig {
        hedge: HedgeConfig {
            threshold_ms: 15.0,
            latency_factor: f64::INFINITY,
        },
        ..EngineConfig::default()
    };
    let (report, _, events) = run_traced(&r, config);
    let hedges: Vec<_> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Hedge {
                fired_at_ms,
                primary_cost_ms,
                hedge_cost_ms,
                hedge_won,
                ..
            } => Some((*fired_at_ms, *primary_cost_ms, *hedge_cost_ms, *hedge_won)),
            _ => None,
        })
        .collect();
    assert_eq!(hedges.len(), report.stats.hedged_calls);
    for (fired_at, primary_cost, hedge_cost, hedge_won) in hedges {
        assert!(
            primary_cost > fired_at,
            "a hedge only fires once the primary outlives the trigger"
        );
        assert!(hedge_cost >= 0.0);
        if hedge_won {
            assert!(
                fired_at + hedge_cost < primary_cost,
                "a winning hedge must have completed before the primary"
            );
        }
    }
}

/// Searches for a fault seed under which the primary leg of the single
/// `svcB` call fails permanently while its hedge leg (whose fingerprint
/// is salted, so it has an independent deterministic fate) succeeds.
fn rescue_seed(params: &axml_xml::Forest) -> u64 {
    for seed in 1..10_000u64 {
        let r = {
            let mut r = registry();
            r.set_retry_policy(RetryPolicy::none());
            r.set_fault_profile(
                "svcB",
                FaultProfile {
                    seed,
                    fail_prob: 0.5,
                    transient_failures: usize::MAX,
                    timeout_prob: 0.0,
                    slowdown_prob: 0.0,
                    slowdown_factor: 1.0,
                },
            );
            r
        };
        let primary = r.invoke_within("svcB", params.clone(), None, f64::INFINITY);
        let hedge = r.invoke_hedge("svcB", params.clone(), None, f64::INFINITY);
        if primary.is_err() && hedge.is_ok() {
            return seed;
        }
    }
    panic!("no rescue seed found in 10k candidates");
}

#[test]
fn hedged_pair_records_exactly_one_breaker_outcome() {
    // regression: a hedged pair against a recovering (half-open) breaker
    // must record exactly one outcome — the winner's. If the losing
    // primary's failure were recorded too, the re-closed breaker would
    // trip again at threshold 1 and the next dispatch would be refused.
    let mut d = Document::with_root("r");
    let root = d.root();
    let c = d.add_call(root, "svcB");
    d.add_text(c, "0");
    let node = d.calls()[0];
    let params = d.children_to_forest(node);
    let seed = rescue_seed(&params);

    let mut r = registry();
    r.set_retry_policy(RetryPolicy::none());
    r.set_breaker_config(BreakerConfig {
        failure_threshold: 1,
        cooldown_ms: 30.0,
    });
    r.set_fault_profile(
        "svcB",
        FaultProfile {
            seed,
            fail_prob: 0.5,
            transient_failures: usize::MAX,
            timeout_prob: 0.0,
            slowdown_prob: 0.0,
            slowdown_factor: 1.0,
        },
    );
    // phase 1: trip the breaker, then let the cooldown pass
    r.breaker_record("svcB", false, 0.0);
    assert!(!r.breaker_allows("svcB", 10.0), "breaker must be open");
    assert!(r.breaker_allows("svcB", 40.0), "breaker must half-open");

    // phase 2: the half-open probe is a hedged call whose primary fails
    // and whose hedge leg rescues it
    let config = EngineConfig {
        push_queries: false,
        hedge: HedgeConfig {
            threshold_ms: 5.0,
            latency_factor: f64::INFINITY,
        },
        ..EngineConfig::default()
    };
    let q = parse_query("/r/item/id/$I -> $I").unwrap();
    let ring = RingSink::unbounded();
    let report = Engine::new(&r, config)
        .starting_at(40.0)
        .with_observer(&ring)
        .evaluate(&mut d, &q);

    assert!(report.complete, "the hedge leg must rescue the call");
    assert_eq!(report.stats.calls_invoked, 1);
    assert_eq!(report.stats.failed_calls, 0);
    assert_eq!(report.stats.hedged_calls, 1);
    assert_eq!(report.stats.hedge_wins, 1);
    let state = r.breaker_state("svcB").expect("breaker state exists");
    assert_eq!(
        state.consecutive_failures, 0,
        "the losing primary's failure must not be recorded"
    );
    assert_eq!(
        state.trips, 1,
        "the hedge leg must not re-open the breaker its twin closed"
    );
    assert!(
        r.breaker_allows("svcB", 100.0),
        "the breaker must stay closed after the rescued probe"
    );
    assert_oracle_clean(&ring.events(), &report.stats, "half-open hedge");
}

// ---------------- shedding ----------------

#[test]
fn inflight_shedding_degrades_to_a_sound_partial_answer() {
    let config = EngineConfig {
        shed: ShedConfig {
            max_inflight_per_batch: 1,
            ewma_limit_ms: f64::INFINITY,
        },
        ..EngineConfig::default()
    };
    let (report, d, events) = run_traced(&registry(), config);
    assert!(!report.complete, "shed calls must flag degradation");
    assert_eq!(report.stats.calls_invoked, 2, "one admitted per service");
    assert_eq!(report.stats.shed_skips, 6, "the rest are shed");
    let got = answers(&d, &report);
    assert_eq!(got.len(), 2, "admitted calls' answers survive");
    let sheds = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Shed { .. }))
        .count();
    assert_eq!(sheds, 6);
    assert_oracle_clean(&events, &report.stats, "inflight shed");
}

#[test]
fn latency_shedding_cuts_off_a_degraded_service() {
    // sequential dispatch: the first svcB call seeds the latency EWMA at
    // 100 ms, after which the gate sheds every further svcB candidate
    let mut r = registry();
    r.set_fault_profile(
        "svcB",
        FaultProfile {
            seed: 1,
            fail_prob: 0.0,
            transient_failures: 0,
            timeout_prob: 0.0,
            slowdown_prob: 1.0,
            slowdown_factor: 10.0,
        },
    );
    let config = EngineConfig {
        parallel: false,
        shed: ShedConfig {
            max_inflight_per_batch: usize::MAX,
            ewma_limit_ms: 50.0,
        },
        ..EngineConfig::default()
    };
    let (report, d, events) = run_traced(&r, config);
    assert!(!report.complete);
    assert_eq!(
        report.stats.shed_skips, 3,
        "after the first 100 ms observation every further svcB call is shed"
    );
    assert_eq!(report.stats.calls_invoked, 5, "4 × svcA + the first svcB");
    assert_eq!(answers(&d, &report).len(), 5);
    assert!(events
        .iter()
        .any(|e| matches!(&e.kind, EventKind::Shed { reason, .. }
            if *reason == axml_obs::ShedReason::Latency)));
    assert_oracle_clean(&events, &report.stats, "latency shed");
}

// ---------------- determinism with everything on ----------------

/// A printable fingerprint of a run: answers, stats and the full
/// deterministic JSONL trace.
fn fingerprint(doc: &Document, report: &axml_core::EvalReport, events: &[Event]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for row in answers(doc, report) {
        writeln!(out, "answer: {row:?}").unwrap();
    }
    let s = &report.stats;
    writeln!(
        out,
        "calls={} failed={} sheds={} hedges={} wins={} wasted={} deadline={} sim={}",
        s.calls_invoked,
        s.failed_calls,
        s.shed_skips,
        s.hedged_calls,
        s.hedge_wins,
        s.hedge_wasted_ms,
        s.deadline_exceeded,
        s.sim_time_ms
    )
    .unwrap();
    out.push_str(&to_jsonl(events));
    out
}

#[test]
fn all_mechanisms_on_are_deterministic_even_with_real_threads() {
    let config_for = |threads: bool| EngineConfig {
        real_threads: threads,
        deadline_ms: 150.0,
        hedge: HedgeConfig {
            threshold_ms: 15.0,
            latency_factor: 3.0,
        },
        shed: ShedConfig {
            max_inflight_per_batch: 3,
            ewma_limit_ms: 500.0,
        },
        ..EngineConfig::default()
    };
    let one = |threads: bool| {
        let mut r = registry();
        r.set_default_fault_profile(FaultProfile::chaos(42, 0.5));
        r.set_retry_policy(RetryPolicy::default().with_timeout_ms(200.0));
        let (report, d, events) = run_traced(&r, config_for(threads));
        assert_oracle_clean(&events, &report.stats, "all-on");
        fingerprint(&d, &report, &events)
    };
    let sequential = one(false);
    assert_eq!(
        sequential,
        one(false),
        "two sequential runs must agree byte-for-byte"
    );
    assert_eq!(
        sequential,
        one(true),
        "threaded dispatch must reproduce the sequential trace exactly"
    );
    assert_eq!(sequential, one(true), "and be stable across its own runs");
}
