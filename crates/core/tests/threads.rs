//! Real-thread batch dispatch: when services do real work, parallel
//! batches overlap on the wall clock too — and answers stay identical and
//! deterministic.

use axml_core::{Engine, EngineConfig};
use axml_query::parse_query;
use axml_services::{BreakerConfig, FaultProfile, FnService, NetProfile, Registry};
use axml_xml::parse;
use std::time::{Duration, Instant};

fn slow_registry(delay: Duration) -> Registry {
    let mut r = Registry::new();
    r.register(FnService::new(
        "slow",
        move |req: &axml_services::CallRequest| {
            std::thread::sleep(delay);
            let key = req.first_text().unwrap_or("?").to_string();
            parse(&format!("<item><id>{key}</id></item>")).unwrap()
        },
    ));
    r
}

fn doc_with_calls(n: usize) -> axml_xml::Document {
    let mut d = axml_xml::Document::with_root("r");
    let root = d.root();
    for i in 0..n {
        let c = d.add_call(root, "slow");
        d.add_text(c, format!("{i}"));
    }
    d
}

#[test]
fn threaded_batches_overlap_real_latency() {
    let delay = Duration::from_millis(15);
    let registry = slow_registry(delay);
    let q = parse_query("/r/item/id/$I -> $I").unwrap();
    let n = 8;

    let run = |threads: bool| {
        let mut doc = doc_with_calls(n);
        let t = Instant::now();
        let report = Engine::new(
            &registry,
            EngineConfig {
                parallel: true,
                real_threads: threads,
                push_queries: false,
                ..EngineConfig::default()
            },
        )
        .evaluate(&mut doc, &q);
        (t.elapsed(), report.result.len(), report.stats.calls_invoked)
    };

    let (seq_time, seq_answers, seq_calls) = run(false);
    let (par_time, par_answers, par_calls) = run(true);
    assert_eq!(seq_answers, n);
    assert_eq!(par_answers, n);
    assert_eq!(seq_calls, par_calls);
    // sequential pays n × delay; threads pay ~one delay per batch.
    // generous margins to stay robust on loaded machines
    assert!(
        seq_time >= delay * (n as u32 - 1),
        "sequential too fast: {seq_time:?}"
    );
    assert!(
        par_time < seq_time,
        "threads did not overlap: {par_time:?} vs {seq_time:?}"
    );
}

#[test]
fn threaded_results_are_deterministic() {
    let registry = slow_registry(Duration::from_millis(1));
    let q = parse_query("/r/item/id/$I -> $I").unwrap();
    let render = |threads: bool| {
        let mut doc = doc_with_calls(12);
        let report = Engine::new(
            &registry,
            EngineConfig {
                parallel: true,
                real_threads: threads,
                ..EngineConfig::default()
            },
        )
        .evaluate(&mut doc, &q);
        axml_xml::to_xml(&doc) + &format!("{:?}", report.result.len())
    };
    let a = render(true);
    let b = render(true);
    let c = render(false);
    assert_eq!(a, b, "two threaded runs must splice identically");
    assert_eq!(a, c, "threaded and sequential must splice identically");
}

/// A mid-batch failure under real threads: the batch's doomed calls are
/// dispatched (reserving budget), fail on their worker threads, and must
/// refund the reservation so their healthy successors still run. The
/// doomed calls come first in document order and their reservations cover
/// the *entire* budget — without the refund, zero healthy calls would
/// ever be invoked.
#[test]
fn threaded_mid_batch_failure_refunds_budget_and_matches_logical_clock() {
    let run = |threads: bool| {
        let mut registry = Registry::new();
        for name in ["bad", "good"] {
            registry.register(FnService::new(
                name,
                move |req: &axml_services::CallRequest| {
                    let key = req.first_text().unwrap_or("?").to_string();
                    parse(&format!("<item><id>{name}-{key}</id></item>")).unwrap()
                },
            ));
        }
        registry.set_default_profile(NetProfile::latency(10.0));
        registry.set_fault_profile("bad", FaultProfile::permanent(9));
        registry.set_breaker_config(BreakerConfig::disabled());
        let mut doc = axml_xml::Document::with_root("r");
        let root = doc.root();
        for svc in ["bad", "bad", "bad", "bad", "good", "good", "good", "good"] {
            let c = doc.add_call(root, svc);
            doc.add_text(c, svc.to_string());
        }
        let q = parse_query("/r/item/id/$I -> $I").unwrap();
        let report = Engine::new(
            &registry,
            EngineConfig {
                parallel: true,
                real_threads: threads,
                max_invocations: 4, // exactly the doomed batch's size
                push_queries: false,
                ..EngineConfig::default()
            },
        )
        .evaluate(&mut doc, &q);
        doc.check_integrity().unwrap();
        (report, axml_xml::to_xml(&doc))
    };

    let (logical, doc_logical) = run(false);
    let (threaded, doc_threaded) = run(true);

    for (mode, report) in [("logical", &logical), ("threaded", &threaded)] {
        assert_eq!(
            report.stats.calls_invoked, 4,
            "{mode}: refunded budget must cover the healthy calls"
        );
        assert_eq!(report.stats.failed_calls, 4, "{mode}");
        assert_eq!(report.result.len(), 4, "{mode}: all good answers present");
        assert!(!report.complete, "{mode}: failures must flag the answer");
        assert!(
            !report.stats.truncated,
            "{mode}: a refunded budget is not an exhausted budget"
        );
    }

    // logical-clock and real-thread dispatch must agree exactly
    assert_eq!(doc_logical, doc_threaded);
    assert_eq!(logical.stats.calls_invoked, threaded.stats.calls_invoked);
    assert_eq!(logical.stats.failed_calls, threaded.stats.failed_calls);
    assert_eq!(logical.stats.call_attempts, threaded.stats.call_attempts);
    assert_eq!(
        logical.stats.bytes_transferred,
        threaded.stats.bytes_transferred
    );
    assert_eq!(logical.stats.rounds, threaded.stats.rounds);
    assert_eq!(logical.stats.sim_time_ms, threaded.stats.sim_time_ms);
}

#[test]
fn threaded_budget_is_respected() {
    let registry = slow_registry(Duration::from_millis(1));
    let q = parse_query("/r/item/id/$I -> $I").unwrap();
    let mut doc = doc_with_calls(10);
    let report = Engine::new(
        &registry,
        EngineConfig {
            parallel: true,
            real_threads: true,
            max_invocations: 4,
            ..EngineConfig::default()
        },
    )
    .evaluate(&mut doc, &q);
    assert_eq!(report.stats.calls_invoked, 4);
    assert!(report.stats.truncated);
    doc.check_integrity().unwrap();
}
