//! The differential plan-equivalence oracle: for random documents,
//! queries and schemas, evaluation through a [`CompiledQuery`] must be
//! **observationally identical** to the interpreter — same answers, same
//! structured trace byte for byte, same statistics — across every engine
//! mode: all strategy/optimization combinations, fault schedules with
//! retries, a shared call cache warmed across queries, and both serve
//! schedulers with the store's plan cache on and off.
//!
//! The compiled side attaches an explicitly pre-compiled plan with
//! [`Engine::with_plan`]; the interpreted side gets the *same* plan but
//! runs with `use_plans: false`, which also proves the gate: an attached
//! plan must be inert when the knob is off.

use axml_core::{CompiledQuery, Engine, EngineConfig, EngineStats};
use axml_gen::synthetic::{random_query, random_workload, SyntheticParams};
use axml_obs::{to_jsonl, RingSink, StatsView};
use axml_query::{render_result, Pattern};
use axml_schema::Schema;
use axml_services::{FaultProfile, Registry, RetryPolicy};
use axml_store::{
    CacheConfig, CallCache, DocumentStore, PlanCacheConfig, QueryOutcome, SchedulerMode,
    SessionOptions, SessionSpec,
};
use axml_xml::Document;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

type Answers = BTreeSet<Vec<String>>;

/// Everything one evaluation observably produced. Two runs that agree on
/// this value are indistinguishable to any consumer of the engine.
#[derive(Debug, PartialEq)]
struct Observation {
    answers: Answers,
    complete: bool,
    trace_jsonl: String,
    stats: StatsView,
    /// Engine-internal counters not part of the [`StatsView`] projection
    /// (the CPU `Duration`s stay excluded: wall clock is not semantics).
    extra: (
        usize,
        usize,
        usize,
        usize,
        usize,
        usize,
        usize,
        usize,
        usize,
        usize,
    ),
}

fn extra_counters(
    s: &EngineStats,
) -> (
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
) {
    (
        s.rounds,
        s.relevance_evals,
        s.queries_pruned,
        s.speculative_rounds,
        s.type_violations,
        s.nfq_evals_skipped,
        s.nfq_delta_evals,
        s.splice_degradations,
        s.guide_nodes,
        s.final_doc_size,
    )
}

/// Runs one evaluation. `plan` is attached whenever given — the engine's
/// `use_plans` flag in `config` decides whether it may be consulted.
/// `cache`, when given, wires a shared call cache (each side of a
/// differential pair gets its own, identically configured).
fn observe(
    doc: &Document,
    q: &Pattern,
    registry: &Registry,
    schema: Option<&Schema>,
    config: EngineConfig,
    plan: Option<&Arc<CompiledQuery>>,
    cache: Option<&CallCache>,
) -> Observation {
    let ring = RingSink::unbounded();
    let mut d = doc.clone();
    let mut engine = Engine::new(registry, config).with_observer(&ring);
    if let Some(plan) = plan {
        engine = engine.with_plan(Arc::clone(plan));
    }
    if let Some(schema) = schema {
        engine = engine.with_schema(schema);
    }
    if let Some(cache) = cache {
        engine = engine.with_cache(cache);
    }
    let report = engine.evaluate(&mut d, q);
    d.check_integrity().unwrap();
    Observation {
        answers: render_result(&d, &report.result).into_iter().collect(),
        complete: report.complete,
        trace_jsonl: to_jsonl(&ring.events()),
        stats: report.stats.view(),
        extra: extra_counters(&report.stats),
    }
}

/// The differential heart: interpreted (`use_plans: false`, plan attached
/// but necessarily inert) vs compiled (`use_plans: true`, same plan).
fn assert_plan_equivalent(
    label: &str,
    doc: &Document,
    q: &Pattern,
    registry: &Registry,
    schema: Option<&Schema>,
    config: &EngineConfig,
) -> Result<(), TestCaseError> {
    let plan = Arc::new(CompiledQuery::compile(q, schema, config));
    let interpreted = observe(
        doc,
        q,
        registry,
        schema,
        EngineConfig {
            use_plans: false,
            ..config.clone()
        },
        Some(&plan),
        None,
    );
    let compiled = observe(
        doc,
        q,
        registry,
        schema,
        EngineConfig {
            use_plans: true,
            ..config.clone()
        },
        Some(&plan),
        None,
    );
    prop_assert_eq!(
        &compiled,
        &interpreted,
        "mode {} observably diverges between compiled and interpreted",
        label
    );
    Ok(())
}

/// The full engine-mode matrix (mirrors the cross-strategy equivalence
/// suite): every strategy and optimization combination the engine ships.
fn configs() -> Vec<(&'static str, EngineConfig)> {
    use axml_core::{Speculation, Strategy};
    vec![
        ("naive", EngineConfig::naive()),
        ("topdown", EngineConfig::top_down()),
        ("lpq", EngineConfig::lpq()),
        (
            "lpq-par",
            EngineConfig {
                parallel: true,
                ..EngineConfig::lpq()
            },
        ),
        ("nfq-plain", EngineConfig::nfq_plain()),
        (
            "nfq-layered",
            EngineConfig {
                layering: true,
                simplify_layers: true,
                ..EngineConfig::nfq_plain()
            },
        ),
        (
            "nfq-fguide",
            EngineConfig {
                use_fguide: true,
                ..EngineConfig::nfq_plain()
            },
        ),
        (
            "nfq-push",
            EngineConfig {
                push_queries: true,
                ..EngineConfig::nfq_plain()
            },
        ),
        (
            "nfq-relaxed",
            EngineConfig {
                relax_xpath: true,
                ..EngineConfig::nfq_plain()
            },
        ),
        (
            "nfq-incremental-layered",
            EngineConfig {
                incremental_detection: true,
                layering: true,
                simplify_layers: true,
                ..EngineConfig::nfq_plain()
            },
        ),
        (
            "nfq-no-containment",
            EngineConfig {
                containment_pruning: false,
                ..EngineConfig::nfq_plain()
            },
        ),
        (
            "nfq-speculative",
            EngineConfig {
                speculation: Speculation::Always,
                ..EngineConfig::nfq_plain()
            },
        ),
        (
            "nfq-everything",
            EngineConfig {
                strategy: Strategy::Nfq,
                use_fguide: true,
                push_queries: true,
                layering: true,
                simplify_layers: true,
                ..EngineConfig::default()
            },
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Compiled-vs-interpreted invariance across the full mode matrix on
    /// random synthetic workloads: answers, traces (byte for byte) and
    /// stats all agree, in every mode.
    #[test]
    fn compiled_path_is_observably_identical_in_every_mode(
        wseed in 0u64..10_000,
        qseed in 0u64..10_000,
        doc_nodes in 30usize..100,
        call_probability in 0.05f64..0.5,
    ) {
        let params = SyntheticParams {
            seed: wseed,
            doc_nodes,
            call_probability,
            ..Default::default()
        };
        let (doc, registry) = random_workload(&params);
        let q = random_query(qseed, params.alphabet, 7);
        for (name, config) in configs() {
            assert_plan_equivalent(name, &doc, &q, &registry, None, &config)?;
        }
    }

    /// Same invariance under a random deterministic fault schedule with a
    /// retry budget that outlasts the transients: the compiled path must
    /// reproduce the interpreter's retries, breaker bookkeeping and fault
    /// accounting event for event.
    #[test]
    fn compiled_path_is_identical_under_faults_and_retries(
        wseed in 0u64..10_000,
        qseed in 0u64..10_000,
        fseed in 1u64..10_000,
        fail_prob in 0.0f64..1.0,
        transients in 1usize..3,
    ) {
        let params = SyntheticParams { seed: wseed, ..Default::default() };
        let (doc, mut registry) = random_workload(&params);
        let q = random_query(qseed, params.alphabet, 7);
        registry.set_default_fault_profile(FaultProfile {
            seed: fseed,
            fail_prob,
            transient_failures: transients,
            timeout_prob: 0.25,
            slowdown_prob: 0.1,
            slowdown_factor: 3.0,
        });
        registry.set_retry_policy(RetryPolicy::default().with_retries(3));
        for (name, config) in [
            ("default", EngineConfig::default()),
            (
                "layered",
                EngineConfig {
                    layering: true,
                    simplify_layers: true,
                    ..EngineConfig::nfq_plain()
                },
            ),
        ] {
            assert_plan_equivalent(name, &doc, &q, &registry, None, &config)?;
        }
    }

    /// Schema-typed invariance on instances generated straight from τ:
    /// the plan's baked schema DFAs must type exactly as the interpreter's
    /// transient ones, including typing-driven pruning decisions.
    #[test]
    fn compiled_path_is_identical_with_schema_typing(seed in 0u64..10_000) {
        use axml_gen::from_schema::{random_instance, InstanceParams};
        let schema = axml_schema::figure2_schema();
        let (doc, registry) = random_instance(
            &schema,
            "hotels",
            &InstanceParams { seed, ..Default::default() },
        );
        let q = axml_gen::figure4_query();
        for (name, config) in [
            ("typed-default", EngineConfig::default()),
            ("typed-naive", EngineConfig::naive()),
            (
                "typed-layered",
                EngineConfig {
                    layering: true,
                    simplify_layers: true,
                    ..EngineConfig::nfq_plain()
                },
            ),
        ] {
            assert_plan_equivalent(name, &doc, &q, &registry, Some(&schema), &config)?;
        }
    }

    /// Shared-call-cache invariance: each side gets its *own* identically
    /// configured cache and runs two queries back to back, so the second
    /// query's hit/stale pattern — and the cache-probe events it emits —
    /// must reproduce exactly through the compiled path.
    #[test]
    fn compiled_path_is_identical_through_a_warming_call_cache(
        wseed in 0u64..10_000,
        qseed in 0u64..10_000,
    ) {
        let params = SyntheticParams { seed: wseed, ..Default::default() };
        let (doc, registry) = random_workload(&params);
        let queries = [
            random_query(qseed, params.alphabet, 7),
            random_query(qseed.wrapping_add(1), params.alphabet, 7),
            random_query(qseed, params.alphabet, 7), // repeat: warm hits
        ];
        let config = EngineConfig::default();
        let run_side = |use_plans: bool| {
            let cache = CallCache::new(CacheConfig::default());
            let side_config = EngineConfig { use_plans, ..config.clone() };
            queries
                .iter()
                .map(|q| {
                    let plan = Arc::new(CompiledQuery::compile(q, None, &config));
                    observe(&doc, q, &registry, None, side_config.clone(), Some(&plan), Some(&cache))
                })
                .collect::<Vec<_>>()
        };
        let interpreted = run_side(false);
        let compiled = run_side(true);
        prop_assert_eq!(
            &compiled, &interpreted,
            "cache-warmed sequence diverges (wseed={}, qseed={})", wseed, qseed
        );
    }
}

/// The interleaving-independent projection of a [`QueryOutcome`] (drops
/// `wall_ms`, the only wall-clock field).
fn sim_outcome(o: &QueryOutcome) -> (Answers, bool, usize, usize, f64, u64) {
    (
        o.answers.clone(),
        o.complete,
        o.calls_invoked,
        o.cache_hits,
        o.sim_time_ms,
        o.doc_version,
    )
}

fn serve_store(params: &SyntheticParams) -> (DocumentStore, Registry, Vec<SessionSpec>) {
    let (doc, registry) = random_workload(params);
    let mut store = DocumentStore::with_configs(CacheConfig::default(), PlanCacheConfig::default());
    store.insert("doc", doc);
    let specs: Vec<SessionSpec> = (0..3)
        .map(|i| {
            let mut spec = SessionSpec::new(
                format!("s{i}"),
                "doc",
                vec![
                    random_query(params.seed.wrapping_add(i), params.alphabet, 7),
                    random_query(params.seed.wrapping_add(i + 10), params.alphabet, 7),
                ],
            );
            spec.options = SessionOptions {
                plan_cache: i % 2 == 0, // mixed: some sessions share plans, some compile transiently
                ..SessionOptions::default()
            };
            spec
        })
        .collect();
    (store, registry, specs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Concurrent-serving invariance: a deterministic-seeded serve run
    /// with the store's plan cache enabled produces exactly the outcomes
    /// of the same run with every session compiling transiently — per
    /// query, per session, including cache counters and simulated time.
    #[test]
    fn deterministic_serve_is_identical_with_plan_cache_on_and_off(
        wseed in 0u64..10_000,
        sched_seed in 0u64..10_000,
    ) {
        let params = SyntheticParams { seed: wseed, ..Default::default() };
        let mode = SchedulerMode::DeterministicSeeded { seed: sched_seed };
        let run = |plan_cache: bool| {
            let (store, registry, mut specs) = serve_store(&params);
            for spec in &mut specs {
                spec.options.plan_cache = plan_cache;
            }
            let report = store.serve(&specs, &registry, None, &mode, None);
            report
                .sessions
                .iter()
                .map(|s| (s.name.clone(), s.queries.iter().map(sim_outcome).collect::<Vec<_>>(), s.clock_ms))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(
            run(true),
            run(false),
            "plan cache changed a served outcome (wseed={}, sched_seed={})",
            wseed, sched_seed
        );
    }

    /// Under the real thread pool the interleaving is free, so only the
    /// interleaving-independent projection is compared — and the store's
    /// plan cache must have compiled each distinct (query, config) at most
    /// once while serving every plan-enabled session.
    #[test]
    fn concurrent_serve_agrees_and_shares_compiled_plans(wseed in 0u64..10_000) {
        let params = SyntheticParams { seed: wseed, ..Default::default() };
        let (store, registry, specs) = serve_store(&params);
        let report = store.serve(
            &specs,
            &registry,
            None,
            &SchedulerMode::Concurrent { workers: 4 },
            None,
        );
        let plan_stats = store.plans().stats();
        prop_assert!(
            plan_stats.compiles <= 4,
            "3 sessions × 2 queries share ≤ 4 distinct plan-enabled queries, \
             but the cache compiled {} times", plan_stats.compiles
        );

        // reference: same specs, fresh store, serial deterministic run
        let (store2, registry2, specs2) = serve_store(&params);
        let reference = store2.serve(
            &specs2,
            &registry2,
            None,
            &SchedulerMode::DeterministicSeeded { seed: 0 },
            None,
        );
        for (got, want) in report.sessions.iter().zip(&reference.sessions) {
            prop_assert_eq!(&got.name, &want.name);
            for (g, w) in got.queries.iter().zip(&want.queries) {
                prop_assert_eq!(&g.answers, &w.answers, "session {} diverges", got.name);
                prop_assert_eq!(g.complete, w.complete, "session {} diverges", got.name);
            }
        }
    }
}

/// Remap correctness at the engine level: one warm plan cache serves two
/// documents whose symbol tables assign *different* ids to the same
/// labels; the shared compiled plan must answer both exactly as the
/// interpreter does.
#[test]
fn one_cached_plan_serves_documents_with_permuted_symbol_tables() {
    let params = SyntheticParams {
        seed: 11,
        ..Default::default()
    };
    let (doc_a, registry) = random_workload(&params);
    // doc_b interns the alphabet in reverse before growing its content,
    // permuting every symbol id relative to doc_a
    let mut doc_b = Document::with_root("root");
    let warm = doc_b.add_element(doc_b.root(), "warmup");
    for i in (0..params.alphabet).rev() {
        doc_b.add_element(warm, format!("e{i}"));
    }
    let mut parent = doc_b.root();
    for i in 0..20 {
        let e = doc_b.add_element(parent, format!("e{}", i % params.alphabet));
        doc_b.add_text(e, format!("v{}", i % 3));
        if i % 4 == 0 {
            parent = e;
        }
    }
    doc_b.check_integrity().unwrap();

    let q = random_query(3, params.alphabet, 7);
    let config = EngineConfig::default();
    let plans = axml_store::PlanCache::new(PlanCacheConfig::default());
    let plan = plans.fetch(&q, None, &config);
    for doc in [&doc_a, &doc_b] {
        let compiled = observe(doc, &q, &registry, None, config.clone(), Some(&plan), None);
        let interpreted = observe(
            doc,
            &q,
            &registry,
            None,
            EngineConfig {
                use_plans: false,
                ..config.clone()
            },
            None,
            None,
        );
        assert_eq!(
            compiled, interpreted,
            "shared plan mis-answers under a permuted symbol table"
        );
    }
    let stats = plans.stats();
    assert_eq!(stats.compiles, 1, "the second fetch must reuse the plan");
}
