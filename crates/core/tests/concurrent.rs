//! The concurrency test oracle: random multi-tenant session mixes run
//! through the store's scheduler, pinned by two properties.
//!
//! * **Serial replay** — a seeded deterministic run records the exact
//!   interleaving it played; replaying that schedule serially on a fresh,
//!   identically-built world reproduces every per-session outcome,
//!   including invocation and cache-hit counts. Any hidden shared state
//!   beyond the (deterministic) cache and published document versions
//!   would diverge here.
//! * **Answer independence** — with snapshot isolation and an
//!   answer-invisible cache, a session's answers under real concurrent
//!   execution equal the answers the same query stream produces alone on
//!   a private store. Interleaving may move *costs* (who pays the miss),
//!   never answers.
//!
//! Sessions randomly mix snapshot mode and persistent (publishing) mode;
//! the persistent sessions also exercise concurrent version publication,
//! checked against the document's structural-integrity invariant.

use axml_gen::synthetic::{random_query, random_workload, SyntheticParams};
use axml_query::Pattern;
use axml_services::Registry;
use axml_store::{
    CacheConfig, DocumentStore, SchedulerMode, ServeReport, SessionOptions, SessionSpec,
};
use axml_xml::Document;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// The interleaving-independent projection of a run compared by the
/// replay oracle: everything `QueryOutcome` carries except wall-clock
/// latency (which is real time, not simulated, so never reproducible).
type Projection = Vec<Vec<(BTreeSet<Vec<String>>, bool, usize, usize, f64, u64)>>;

fn project(report: &ServeReport) -> Projection {
    report
        .sessions
        .iter()
        .map(|s| {
            s.queries
                .iter()
                .map(|q| {
                    (
                        q.answers.clone(),
                        q.complete,
                        q.calls_invoked,
                        q.cache_hits,
                        q.sim_time_ms,
                        q.doc_version,
                    )
                })
                .collect()
        })
        .collect()
}

fn world(wseed: u64, doc_nodes: usize, call_probability: f64) -> (Document, Registry, usize) {
    let params = SyntheticParams {
        seed: wseed,
        doc_nodes,
        call_probability,
        ..Default::default()
    };
    let (doc, registry) = random_workload(&params);
    (doc, registry, params.alphabet)
}

/// `n` session specs drawing 3 queries each from a shared pool (so some
/// sessions overlap — shared cache keys — and some do not), with the
/// sessions selected by `persist_mask` running in persistent mode.
fn session_mix(qseed: u64, alphabet: usize, n: usize, persist_mask: u8) -> Vec<SessionSpec> {
    let pool: Vec<Pattern> = (0..4)
        .map(|i| random_query(qseed.wrapping_add(i * 7919), alphabet, 7))
        .collect();
    (0..n)
        .map(|i| {
            let queries = vec![
                pool[i % pool.len()].clone(),
                pool[(i + 1) % pool.len()].clone(),
                pool[i % pool.len()].clone(),
            ];
            let mut spec = SessionSpec::new(format!("tenant-{i}"), "d", queries);
            if persist_mask & (1 << i) != 0 {
                spec.options = SessionOptions {
                    snapshot_per_query: false,
                    ..SessionOptions::default()
                };
            }
            spec
        })
        .collect()
}

fn fresh_store(doc: &Document, shards: usize, ttl_ms: f64) -> DocumentStore {
    let mut store =
        DocumentStore::with_cache_config(CacheConfig::with_ttl_ms(ttl_ms).with_shards(shards));
    store.insert("d", doc.clone());
    store
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Serial-replay oracle: a seeded run and the serial replay of its
    /// recorded schedule, each on a fresh world, agree on every
    /// per-session outcome — answers, completeness, invocations, cache
    /// hits, simulated time, and the document version each query read.
    #[test]
    fn seeded_interleavings_replay_serially(
        wseed in 0u64..10_000,
        qseed in 0u64..10_000,
        seed in 0u64..10_000,
        sessions in 2usize..6,
        persist_mask in 0u8..64,
        shards_idx in 0usize..3,
    ) {
        let shards = [1usize, 4, 8][shards_idx];
        let (doc, registry, alphabet) = world(wseed, 60, 0.2);
        let specs = session_mix(qseed, alphabet, sessions, persist_mask);
        let mode = SchedulerMode::DeterministicSeeded { seed };

        let one = fresh_store(&doc, shards, f64::INFINITY)
            .serve(&specs, &registry, None, &mode, None);
        prop_assert_eq!(one.total_queries, 3 * sessions);
        prop_assert_eq!(one.schedule.len(), 3 * sessions);

        // same seed, fresh world: identical schedule and outcomes
        let again = fresh_store(&doc, shards, f64::INFINITY)
            .serve(&specs, &registry, None, &mode, None);
        prop_assert_eq!(&one.schedule, &again.schedule);
        prop_assert_eq!(project(&one), project(&again));

        // the recorded schedule replayed serially on a fresh world
        let replay = fresh_store(&doc, shards, f64::INFINITY)
            .serve_schedule(&specs, &registry, None, &one.schedule, None);
        prop_assert_eq!(project(&one), project(&replay));
    }

    /// Answer independence: per-session answers under the concurrent
    /// work-stealing pool equal the answers the same query stream
    /// produces alone on a private store — the interleaving moves cache
    /// costs between tenants but never changes what anyone sees.
    #[test]
    fn concurrent_session_answers_match_standalone_runs(
        wseed in 0u64..10_000,
        qseed in 0u64..10_000,
        sessions in 2usize..6,
        workers in 1usize..5,
        ttl_idx in 0usize..2,
    ) {
        let ttl_ms = [f64::INFINITY, 40.0][ttl_idx];
        let (doc, registry, alphabet) = world(wseed, 60, 0.2);
        // snapshot mode only: persistent publication intentionally leaks
        // across tenants, so "standalone" is only an oracle without it
        let specs = session_mix(qseed, alphabet, sessions, 0);

        let shared = fresh_store(&doc, 4, ttl_ms);
        let report = shared.serve(
            &specs,
            &registry,
            None,
            &SchedulerMode::Concurrent { workers },
            None,
        );

        for (i, spec) in specs.iter().enumerate() {
            let solo_store = fresh_store(&doc, 1, ttl_ms);
            let mut solo = solo_store
                .session("d", &registry, None, spec.options.clone())
                .unwrap();
            for (j, q) in spec.queries.iter().enumerate() {
                let want = solo.query(q);
                let got = &report.sessions[i].queries[j];
                prop_assert_eq!(
                    &got.answers, &want.answers,
                    "session {} query {} diverged (wseed={}, qseed={}, workers={})",
                    i, j, wseed, qseed, workers
                );
                prop_assert_eq!(got.complete, want.complete);
            }
        }
    }

    /// Snapshot isolation under concurrent publication: persistent
    /// sessions publish new document versions while others read; every
    /// published version is structurally intact, every query reads a
    /// version that existed, and versions only grow.
    #[test]
    fn concurrent_publication_preserves_document_integrity(
        wseed in 0u64..10_000,
        qseed in 0u64..10_000,
        sessions in 2usize..6,
        workers in 2usize..5,
    ) {
        let (doc, registry, alphabet) = world(wseed, 60, 0.3);
        let specs = session_mix(qseed, alphabet, sessions, 0xFF); // all persistent
        let store = fresh_store(&doc, 4, f64::INFINITY);
        let report = store.serve(
            &specs,
            &registry,
            None,
            &SchedulerMode::Concurrent { workers },
            None,
        );

        let snapshot = store.get("d").unwrap();
        prop_assert!(snapshot.check_integrity().is_ok(), "published version torn");
        let publishes = report.total_queries as u64;
        prop_assert!(
            snapshot.version() <= publishes,
            "version {} after only {} queries",
            snapshot.version(),
            publishes
        );
        for s in &report.sessions {
            for q in &s.queries {
                prop_assert!(q.doc_version <= publishes);
                prop_assert!(q.complete, "healthy workloads stay complete");
            }
        }
    }
}

/// Persistent-mode publication is compare-and-swap: two sessions that
/// concurrently materialize *disjoint* call sites of one document must
/// both land — the loser re-snapshots the winner and retries instead of
/// clobbering it. (Under last-writer-wins publication this fails
/// whenever the two publications race.)
#[test]
fn concurrent_persistent_publications_are_not_lost() {
    use axml_services::{CallRequest, FnService};
    use axml_xml::parse;
    use std::sync::Barrier;

    fn query_for(side: &str) -> Pattern {
        axml_query::parse_query(&format!("/r/{side}/item/$X -> $X")).unwrap()
    }

    let mut registry = Registry::new();
    for name in ["svcA", "svcB"] {
        registry.register(FnService::new(name, move |_req: &CallRequest| {
            parse(&format!("<item>{name}</item>")).unwrap()
        }));
    }
    let persist = SessionOptions {
        snapshot_per_query: false,
        ..SessionOptions::default()
    };

    for round in 0..25 {
        let mut doc = Document::with_root("r");
        for (side, svc) in [("a", "svcA"), ("b", "svcB")] {
            let n = doc.add_element(doc.root(), side);
            doc.add_call(n, svc);
        }
        // caching off: materialization is the only cross-query channel,
        // so a lost publication shows up as a re-invoked call below
        let mut store = DocumentStore::with_cache_config(CacheConfig::with_ttl_ms(0.0));
        store.insert("d", doc);
        let barrier = Barrier::new(2);
        std::thread::scope(|s| {
            for side in ["a", "b"] {
                let store = &store;
                let registry = &registry;
                let barrier = &barrier;
                let persist = persist.clone();
                s.spawn(move || {
                    let mut session = store.session("d", registry, None, persist).unwrap();
                    barrier.wait();
                    let rep = session.query(&query_for(side));
                    assert!(rep.complete);
                });
            }
        });
        // both materializations must survive in the published version:
        // re-asking either query finds no call left to invoke or probe
        for side in ["a", "b"] {
            let mut check = store
                .session("d", &registry, None, SessionOptions::default())
                .unwrap();
            let rep = check.query(&query_for(side));
            assert!(rep.complete);
            let probes = rep.stats.cache_hits + rep.stats.cache_misses + rep.stats.cache_stale;
            assert_eq!(
                (rep.stats.calls_invoked, probes),
                (0, 0),
                "round {round}: side {side}'s materialization was lost"
            );
        }
    }
}

/// Per-session trace streams from a concurrent run each pass the trace
/// oracle on their own: one session's stream is internally ordered and
/// well-formed even while other sessions emit in parallel into theirs.
#[test]
fn per_session_trace_streams_stay_well_formed_under_concurrency() {
    use axml_obs::PerSessionSinks;

    let (doc, registry, alphabet) = world(11, 60, 0.3);
    let specs = session_mix(23, alphabet, 4, 0);
    let store = fresh_store(&doc, 4, f64::INFINITY);
    let sinks = PerSessionSinks::new(specs.len());
    let handles = sinks.handles();
    let report = store.serve(
        &specs,
        &registry,
        None,
        &SchedulerMode::Concurrent { workers: 3 },
        Some(&handles),
    );
    assert_eq!(report.total_queries, 12);
    for i in 0..specs.len() {
        let events = sinks.events(i);
        assert!(
            !events.is_empty(),
            "session {i} produced no events with observe on"
        );
        axml_obs::assert_clean(&events, None);
    }
}
