//! Cross-strategy equivalence (the safety theorem behind Definition 4):
//! on terminating workloads, every engine configuration — naive, top-down,
//! LPQ, NFQ, with or without layering, parallelism, F-guide, pushing and
//! relaxations — must compute the same full query result.

use axml_core::{Engine, EngineConfig, Speculation, Strategy};
use axml_gen::synthetic::{random_query, random_workload, SyntheticParams};
use axml_query::{render_result, Pattern};
use axml_services::{BreakerConfig, FaultProfile, Registry, RetryPolicy};
use axml_xml::Document;
use proptest::prelude::*;
use std::collections::BTreeSet;

type Answers = BTreeSet<Vec<String>>;

fn run(doc: &Document, q: &Pattern, registry: &Registry, config: EngineConfig) -> Answers {
    let mut d = doc.clone();
    let report = Engine::new(registry, config).evaluate(&mut d, q);
    assert!(!report.stats.truncated, "synthetic workloads terminate");
    d.check_integrity().unwrap();
    render_result(&d, &report.result).into_iter().collect()
}

fn configs() -> Vec<(&'static str, EngineConfig)> {
    vec![
        ("naive", EngineConfig::naive()),
        ("topdown", EngineConfig::top_down()),
        ("lpq", EngineConfig::lpq()),
        (
            "lpq-par",
            EngineConfig {
                parallel: true,
                ..EngineConfig::lpq()
            },
        ),
        ("nfq-plain", EngineConfig::nfq_plain()),
        (
            "nfq-layered",
            EngineConfig {
                layering: true,
                simplify_layers: true,
                ..EngineConfig::nfq_plain()
            },
        ),
        (
            "nfq-parallel",
            EngineConfig {
                layering: true,
                parallel: true,
                ..EngineConfig::nfq_plain()
            },
        ),
        (
            "nfq-fguide",
            EngineConfig {
                use_fguide: true,
                ..EngineConfig::nfq_plain()
            },
        ),
        (
            "nfq-push",
            EngineConfig {
                push_queries: true,
                ..EngineConfig::nfq_plain()
            },
        ),
        (
            "nfq-relaxed",
            EngineConfig {
                relax_xpath: true,
                ..EngineConfig::nfq_plain()
            },
        ),
        (
            "nfq-incremental",
            EngineConfig {
                incremental_detection: true,
                ..EngineConfig::nfq_plain()
            },
        ),
        (
            "nfq-incremental-layered",
            EngineConfig {
                incremental_detection: true,
                layering: true,
                parallel: true,
                simplify_layers: true,
                ..EngineConfig::nfq_plain()
            },
        ),
        (
            "nfq-no-containment",
            EngineConfig {
                containment_pruning: false,
                ..EngineConfig::nfq_plain()
            },
        ),
        (
            "nfq-speculative",
            EngineConfig {
                speculation: Speculation::Always,
                ..EngineConfig::nfq_plain()
            },
        ),
        (
            "nfq-speculative-cost",
            EngineConfig {
                speculation: Speculation::CostBased {
                    latency_threshold_ms: 5.0,
                },
                push_queries: true,
                ..EngineConfig::nfq_plain()
            },
        ),
        (
            "nfq-everything",
            EngineConfig {
                strategy: Strategy::Nfq,
                use_fguide: true,
                push_queries: true,
                parallel: true,
                layering: true,
                simplify_layers: true,
                relax_xpath: false,
                ..EngineConfig::default()
            },
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_configurations_compute_the_same_full_result(
        wseed in 0u64..10_000,
        qseed in 0u64..10_000,
        doc_nodes in 30usize..120,
        call_probability in 0.05f64..0.5,
    ) {
        let params = SyntheticParams {
            seed: wseed,
            doc_nodes,
            call_probability,
            ..Default::default()
        };
        let (doc, registry) = random_workload(&params);
        let q = random_query(qseed, params.alphabet, 7);

        let mut reference: Option<Answers> = None;
        for (name, config) in configs() {
            let answers = run(&doc, &q, &registry, config);
            match &reference {
                None => reference = Some(answers),
                Some(r) => prop_assert_eq!(
                    &answers, r,
                    "strategy {} disagrees (wseed={}, qseed={})",
                    name, wseed, qseed
                ),
            }
        }
    }

    #[test]
    fn lazy_strategies_never_invoke_more_than_naive(
        wseed in 0u64..10_000,
        qseed in 0u64..10_000,
    ) {
        let params = SyntheticParams { seed: wseed, ..Default::default() };
        let (doc, registry) = random_workload(&params);
        let q = random_query(qseed, params.alphabet, 7);

        let count = |config: EngineConfig| {
            let mut d = doc.clone();
            let report = Engine::new(&registry, config).evaluate(&mut d, &q);
            report.stats.calls_invoked
        };
        let naive = count(EngineConfig::naive());
        let lpq = count(EngineConfig::lpq());
        let nfq = count(EngineConfig::nfq_plain());
        prop_assert!(lpq <= naive, "lpq {} > naive {}", lpq, naive);
        prop_assert!(nfq <= lpq, "nfq {} > lpq {}", nfq, lpq);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Proposition 2 on random workloads: once NFQA terminates, the
    /// document is complete for the query — no NFQ retrieves anything.
    #[test]
    fn completed_documents_retrieve_nothing(
        wseed in 0u64..10_000,
        qseed in 0u64..10_000,
    ) {
        let params = SyntheticParams { seed: wseed, ..Default::default() };
        let (doc, registry) = random_workload(&params);
        let q = random_query(qseed, params.alphabet, 7);
        let mut d = doc.clone();
        let report = Engine::new(&registry, EngineConfig::nfq_plain()).evaluate(&mut d, &q);
        prop_assert!(!report.stats.truncated);
        for nfq in axml_core::build_nfqs(&q) {
            let retrieved = axml_query::eval(&nfq.pattern, &d).bindings_of(nfq.output);
            prop_assert!(
                retrieved.is_empty(),
                "incomplete after NFQA: {:?} still retrieved (wseed={}, qseed={})",
                retrieved, wseed, qseed
            );
        }
    }

    /// Fault-tolerant equivalence: under a random deterministic fault
    /// schedule whose transients are strictly outlasted by the retry
    /// budget, every strategy completes — and lazy-with-retries must
    /// compute exactly the same full result as naive-with-retries.
    #[test]
    fn lazy_with_retries_agrees_with_naive_with_retries(
        wseed in 0u64..10_000,
        qseed in 0u64..10_000,
        fseed in 1u64..10_000,
        fail_prob in 0.0f64..1.0,
        transients in 1usize..3,
    ) {
        let params = SyntheticParams { seed: wseed, ..Default::default() };
        let (doc, mut registry) = random_workload(&params);
        let q = random_query(qseed, params.alphabet, 7);
        registry.set_default_fault_profile(FaultProfile {
            seed: fseed,
            fail_prob,
            transient_failures: transients,
            timeout_prob: 0.25, // degrade to fast failures (no deadline set)
            slowdown_prob: 0.1,
            slowdown_factor: 3.0,
        });
        // 3 retries > 2 transient failures: every call eventually lands
        registry.set_retry_policy(RetryPolicy::default().with_retries(3));

        let run = |config: EngineConfig| {
            let mut d = doc.clone();
            let report = Engine::new(&registry, config).evaluate(&mut d, &q);
            prop_assert!(
                report.complete,
                "absorbed transients must leave the answer complete \
                 (wseed={}, fseed={}, p={})", wseed, fseed, fail_prob
            );
            d.check_integrity().unwrap();
            Ok(render_result(&d, &report.result).into_iter().collect::<Answers>())
        };
        let naive = run(EngineConfig::naive())?;
        let lazy = run(EngineConfig::default())?;
        let lazy_threaded = run(EngineConfig {
            real_threads: true,
            ..EngineConfig::default()
        })?;
        prop_assert_eq!(&naive, &lazy, "wseed={}, qseed={}, fseed={}", wseed, qseed, fseed);
        prop_assert_eq!(&lazy, &lazy_threaded, "threads diverge: wseed={}, fseed={}", wseed, fseed);
    }

    /// Degradation soundness: when faults are permanent and calls die for
    /// good, every strategy's partial answer is a subset of the fault-free
    /// full answer, and the completeness flag tells the truth.
    #[test]
    fn degraded_answers_are_sound_subsets(
        wseed in 0u64..10_000,
        qseed in 0u64..10_000,
        fseed in 1u64..10_000,
        fail_prob in 0.0f64..0.8,
    ) {
        let params = SyntheticParams { seed: wseed, ..Default::default() };
        let (doc, mut registry) = random_workload(&params);
        let q = random_query(qseed, params.alphabet, 7);
        let reference = run(&doc, &q, &registry, EngineConfig::naive());

        registry.set_default_fault_profile(FaultProfile {
            seed: fseed,
            fail_prob,
            transient_failures: usize::MAX,
            ..FaultProfile::none()
        });
        registry.set_breaker_config(BreakerConfig::disabled());
        for (name, config) in [
            ("naive", EngineConfig::naive()),
            ("topdown", EngineConfig::top_down()),
            ("lazy", EngineConfig::default()),
        ] {
            let mut d = doc.clone();
            let report = Engine::new(&registry, config).evaluate(&mut d, &q);
            d.check_integrity().unwrap();
            let partial: Answers = render_result(&d, &report.result).into_iter().collect();
            prop_assert!(
                partial.is_subset(&reference),
                "{}: partial answer invented results (wseed={}, fseed={}, p={})",
                name, wseed, fseed, fail_prob
            );
            prop_assert_eq!(
                report.complete,
                report.stats.failed_calls == 0 && report.stats.breaker_skips == 0
                    && report.stats.skipped_unknown == 0 && !report.stats.truncated,
                "{}: completeness flag out of sync (wseed={}, fseed={})",
                name, wseed, fseed
            );
        }
    }

    /// Schema-derived random instances: the lazy engine agrees with naive
    /// materialization on documents generated straight from τ.
    #[test]
    fn schema_generated_workloads_agree(seed in 0u64..10_000) {
        use axml_gen::from_schema::{random_instance, InstanceParams};
        let schema = axml_schema::figure2_schema();
        let (doc, registry) = random_instance(
            &schema,
            "hotels",
            &InstanceParams { seed, ..Default::default() },
        );
        let q = axml_gen::figure4_query();
        let run = |config: EngineConfig| {
            let mut d = doc.clone();
            let report = Engine::new(&registry, config)
                .with_schema(&schema)
                .evaluate(&mut d, &q);
            prop_assert!(!report.stats.truncated);
            Ok(render_result(&d, &report.result)
                .into_iter()
                .collect::<Answers>())
        };
        let naive = run(EngineConfig::naive())?;
        let lazy = run(EngineConfig::default())?;
        prop_assert_eq!(naive, lazy, "seed={}", seed);
    }
}
