//! Regression test for the splice-log `splice_floor` degradation path:
//! when the bounded splice ring overflows mid-query, cached NFQ state
//! whose history was evicted must *degrade* to a full re-evaluation —
//! same answers, with the degradation visible in the stats — rather
//! than silently reusing stale candidate sets.

use axml_core::{Engine, EngineConfig, EngineStats};
use axml_gen::scenario::{figure1, figure4_query};
use axml_query::render_result;

fn run(config: EngineConfig) -> (Vec<Vec<String>>, EngineStats) {
    let s = figure1();
    let mut doc = s.doc;
    let q = figure4_query();
    let engine = Engine::new(&s.registry, config).with_schema(&s.schema);
    let report = engine.evaluate(&mut doc, &q);
    let mut answers = render_result(&doc, &report.result);
    answers.sort();
    (answers, report.stats)
}

#[test]
fn ring_overflow_degrades_to_full_reeval_with_identical_answers() {
    let (reference, baseline) = run(EngineConfig::nfq_plain());
    assert_eq!(baseline.splice_degradations, 0);

    // a one-record ring cannot cover the gap between two evaluations of
    // the same NFQ on figure 1 (each round splices several results), so
    // every cached entry's history is evicted before it is consulted
    let (answers, stats) = run(EngineConfig {
        incremental_detection: true,
        splice_log_capacity: 1,
        ..EngineConfig::nfq_plain()
    });
    assert_eq!(answers, reference, "degraded run changed the answer");
    assert!(
        stats.splice_degradations > 0,
        "ring overflow must be recorded as a degradation: {stats}"
    );
    // a degraded entry must not be served by the skip/delta fast paths
    // in the same consultation — the work was done in full
    assert_eq!(stats.calls_invoked, baseline.calls_invoked);
}

#[test]
fn ample_ring_does_not_degrade() {
    let (reference, _) = run(EngineConfig::nfq_plain());
    let (answers, stats) = run(EngineConfig {
        incremental_detection: true,
        splice_log_capacity: 4096,
        ..EngineConfig::nfq_plain()
    });
    assert_eq!(answers, reference);
    assert_eq!(stats.splice_degradations, 0, "{stats}");
    assert!(stats.nfq_evals_skipped > 0, "{stats}");
}
