//! Multi-query evaluation (§4.1's multi-query-optimization pointer) and
//! the exchange-oriented `complete_for` API.

use axml_core::{Engine, EngineConfig};
use axml_gen::scenario::{figure1, figure4_query};
use axml_query::{eval, parse_query, render_result};
use std::collections::BTreeSet;

#[test]
fn shared_rewriting_invokes_shared_calls_once() {
    let s = figure1();
    let q1 = figure4_query();
    // a second query over the same hotels: museum names near Best Westerns
    let q2 =
        parse_query("/hotels/hotel[name=\"Best Western\"]/nearby//museum[name=$M] -> $M").unwrap();

    // separately: two full runs
    let mut d1 = s.doc.clone();
    let r1 = Engine::new(&s.registry, EngineConfig::default())
        .with_schema(&s.schema)
        .evaluate(&mut d1, &q1);
    let mut d2 = s.doc.clone();
    let r2 = Engine::new(&s.registry, EngineConfig::default())
        .with_schema(&s.schema)
        .evaluate(&mut d2, &q2);
    let separate_calls = r1.stats.calls_invoked + r2.stats.calls_invoked;

    // shared: one rewriting
    let mut dm = s.doc.clone();
    let reports = Engine::new(&s.registry, EngineConfig::default())
        .with_schema(&s.schema)
        .evaluate_many(&mut dm, &[q1.clone(), q2.clone()]);
    assert_eq!(reports.len(), 2);
    let shared_calls = reports[0].stats.calls_invoked;
    assert!(
        shared_calls < separate_calls,
        "shared {shared_calls} vs separate {separate_calls}"
    );

    // answers agree with the single-query runs
    let a1: BTreeSet<_> = render_result(&dm, &reports[0].result).into_iter().collect();
    let b1: BTreeSet<_> = render_result(&d1, &r1.result).into_iter().collect();
    assert_eq!(a1, b1);
    let a2: BTreeSet<_> = render_result(&dm, &reports[1].result).into_iter().collect();
    let b2: BTreeSet<_> = render_result(&d2, &r2.result).into_iter().collect();
    assert_eq!(a2, b2);
}

#[test]
fn multi_query_superset_of_single_query_calls() {
    // the union rewriting must cover both queries' needs: every call a
    // single-query run fires is fired by the shared run too
    let s = figure1();
    let q1 = figure4_query();
    let q2 = parse_query("/hotels/hotel[name=\"Pennsylvania\"]/rating/$R -> $R").unwrap();
    let mut dm = s.doc.clone();
    let reports = Engine::new(&s.registry, EngineConfig::default())
        .with_schema(&s.schema)
        .evaluate_many(&mut dm, &[q1, q2.clone()]);
    // q2 needs Pennsylvania's getRating, which q1 alone would prune
    assert!(!reports[1].result.is_empty());
    let rendered = render_result(&dm, &reports[1].result);
    assert_eq!(rendered, vec![vec!["***".to_string()]]);
}

#[test]
fn empty_query_set() {
    let s = figure1();
    let mut doc = s.doc.clone();
    let reports = Engine::new(&s.registry, EngineConfig::default())
        .with_schema(&s.schema)
        .evaluate_many(&mut doc, &[]);
    assert!(reports.is_empty());
    assert_eq!(doc.calls().len(), 10, "nothing invoked");
}

#[test]
fn complete_for_materializes_without_evaluating() {
    let s = figure1();
    let q = figure4_query();
    let mut doc = s.doc.clone();
    let engine = Engine::new(&s.registry, EngineConfig::default()).with_schema(&s.schema);
    let stats = engine.complete_for(&mut doc, &q);
    assert_eq!(stats.calls_invoked, 5);
    // the shipped document answers the query by plain evaluation, no
    // further service interaction needed
    let snapshot = eval(&q, &doc);
    assert_eq!(snapshot.len(), 4);
    // and the calls irrelevant to the query are still pending in it
    assert!(!doc.calls().is_empty());
}

#[test]
fn trace_records_each_invocation() {
    let s = figure1();
    let mut doc = s.doc.clone();
    let q = figure4_query();
    let report = Engine::new(
        &s.registry,
        EngineConfig {
            trace: true,
            ..EngineConfig::default()
        },
    )
    .with_schema(&s.schema)
    .evaluate(&mut doc, &q);
    assert_eq!(report.trace.len(), report.stats.calls_invoked);
    assert!(report
        .trace
        .iter()
        .any(|e| e.service == "getNearbyRestos" && e.path.starts_with("hotels/hotel/nearby")));
    assert!(report.trace.iter().any(|e| e.pushed));
    // untraced runs carry no events
    let mut doc2 = s.doc.clone();
    let quiet = Engine::new(&s.registry, EngineConfig::default())
        .with_schema(&s.schema)
        .evaluate(&mut doc2, &q);
    assert!(quiet.trace.is_empty());
}
