//! Output-type enforcement: Section 2 *assumes* service results match
//! their declared output type; with `enforce_output_types` the engine
//! verifies the assumption and reports violations.

use axml_core::{Engine, EngineConfig};
use axml_gen::scenario::figure4_query;
use axml_query::parse_query;
use axml_schema::figure2_schema;
use axml_services::{Registry, StaticService, TableService};
use axml_xml::{parse, Forest};

fn checked_config() -> EngineConfig {
    EngineConfig {
        enforce_output_types: true,
        push_queries: false, // pruned results intentionally deviate
        ..EngineConfig::default()
    }
}

#[test]
fn well_typed_services_report_no_violations() {
    let schema = figure2_schema();
    let mut registry = Registry::new();
    let mut ratings = TableService::new("getRating");
    let mut f = Forest::new();
    f.add_root_text("*****");
    ratings.insert("k", f);
    registry.register(ratings);
    let mut doc = parse(
        "<hotels><hotel><name>Best Western</name><address>a</address>\
           <rating><axml:call service=\"getRating\">k</axml:call></rating>\
           <nearby><restaurant><name>Jo</name><address>a</address>\
             <rating>*****</rating></restaurant></nearby></hotel></hotels>",
    )
    .unwrap();
    let q = figure4_query();
    let report = Engine::new(&registry, checked_config())
        .with_schema(&schema)
        .evaluate(&mut doc, &q);
    assert_eq!(report.stats.type_violations, 0);
    assert_eq!(report.stats.calls_invoked, 1);
}

#[test]
fn misbehaving_service_is_flagged_but_run_continues() {
    let schema = figure2_schema();
    let mut registry = Registry::new();
    // getNearbyRestos declares restaurant* but returns museums
    registry.register(StaticService::new(
        "getNearbyRestos",
        parse("<museum><name>MoMA</name><address>53rd</address></museum>").unwrap(),
    ));
    let mut doc = parse(
        "<hotels><hotel><name>Best Western</name><address>a</address>\
           <rating>*****</rating>\
           <nearby><axml:call service=\"getNearbyRestos\">a</axml:call></nearby>\
         </hotel></hotels>",
    )
    .unwrap();
    let q = figure4_query();
    let report = Engine::new(&registry, checked_config())
        .with_schema(&schema)
        .evaluate(&mut doc, &q);
    assert_eq!(report.stats.type_violations, 1);
    assert!(report.result.is_empty());
    doc.check_integrity().unwrap();
}

#[test]
fn content_model_violations_inside_results_are_flagged() {
    let schema = figure2_schema();
    let mut registry = Registry::new();
    // root word matches (restaurant*), but the restaurant lacks address
    registry.register(StaticService::new(
        "getNearbyRestos",
        parse("<restaurant><name>Jo</name></restaurant>").unwrap(),
    ));
    let mut doc = parse(
        "<hotels><hotel><name>Best Western</name><address>a</address>\
           <rating>*****</rating>\
           <nearby><axml:call service=\"getNearbyRestos\">a</axml:call></nearby>\
         </hotel></hotels>",
    )
    .unwrap();
    let q = figure4_query();
    let report = Engine::new(&registry, checked_config())
        .with_schema(&schema)
        .evaluate(&mut doc, &q);
    assert_eq!(report.stats.type_violations, 1);
}

#[test]
fn enforcement_off_by_default() {
    let schema = figure2_schema();
    let mut registry = Registry::new();
    registry.register(StaticService::new(
        "getNearbyRestos",
        parse("<museum><name>MoMA</name><address>53rd</address></museum>").unwrap(),
    ));
    let mut doc = parse(
        "<hotels><hotel><name>Best Western</name><address>a</address>\
           <rating>*****</rating>\
           <nearby><axml:call service=\"getNearbyRestos\">a</axml:call></nearby>\
         </hotel></hotels>",
    )
    .unwrap();
    let q = parse_query("/hotels/hotel/nearby//museum/name").unwrap();
    let report = Engine::new(&registry, EngineConfig::naive())
        .with_schema(&schema)
        .evaluate(&mut doc, &q);
    assert_eq!(report.stats.type_violations, 0);
    assert_eq!(report.result.len(), 1);
}
