//! The §4.4 speculative-invocation mode: batching all relevant calls
//! "just in case", unconditionally or driven by the observed-cost model.

use axml_core::{Engine, EngineConfig, Speculation};
use axml_gen::scenario::{figure4_query, generate, ScenarioParams};
use axml_services::NetProfile;

fn scenario() -> axml_gen::Scenario {
    generate(&ScenarioParams {
        hotels: 40,
        ..Default::default()
    })
}

fn run(config: EngineConfig, latency_ms: f64) -> axml_core::EngineStats {
    let mut sc = scenario();
    sc.registry
        .set_default_profile(NetProfile::latency(latency_ms));
    let mut doc = sc.doc.clone();
    let report = Engine::new(&sc.registry, config)
        .with_schema(&sc.schema)
        .evaluate(&mut doc, &figure4_query());
    report.stats
}

#[test]
fn always_speculating_minimizes_rounds() {
    let strict = run(
        EngineConfig {
            layering: true,
            parallel: true,
            ..EngineConfig::nfq_plain()
        },
        100.0,
    );
    let spec = run(
        EngineConfig {
            speculation: Speculation::Always,
            ..EngineConfig::nfq_plain()
        },
        100.0,
    );
    assert!(
        spec.rounds < strict.rounds,
        "{} vs {}",
        spec.rounds,
        strict.rounds
    );
    assert!(spec.speculative_rounds >= 1);
    // wall-clock wins, possibly at the cost of extra calls
    assert!(spec.sim_time_ms < strict.sim_time_ms);
    assert!(spec.calls_invoked >= strict.calls_invoked);
}

#[test]
fn cost_based_speculation_stays_strict_on_cheap_services() {
    let stats = run(
        EngineConfig {
            speculation: Speculation::CostBased {
                latency_threshold_ms: 1e9,
            },
            ..EngineConfig::nfq_plain()
        },
        1.0,
    );
    assert_eq!(stats.speculative_rounds, 0, "{stats}");
    // strict NFQA semantics: one call per round
    assert_eq!(stats.rounds, stats.calls_invoked);
}

#[test]
fn cost_based_speculation_kicks_in_on_expensive_services() {
    let stats = run(
        EngineConfig {
            speculation: Speculation::CostBased {
                latency_threshold_ms: 50.0,
            },
            ..EngineConfig::nfq_plain()
        },
        200.0,
    );
    // the first probe call is sequential, the rest batch
    assert!(stats.speculative_rounds >= 1, "{stats}");
    assert!(stats.rounds < stats.calls_invoked);
}

#[test]
fn speculative_answers_match_strict() {
    let q = figure4_query();
    let sc = scenario();
    let answers = |config: EngineConfig| {
        let mut doc = sc.doc.clone();
        let report = Engine::new(&sc.registry, config)
            .with_schema(&sc.schema)
            .evaluate(&mut doc, &q);
        let mut v = axml_query::render_result(&doc, &report.result);
        v.sort();
        v
    };
    let strict = answers(EngineConfig::default());
    let spec = answers(EngineConfig {
        speculation: Speculation::Always,
        ..EngineConfig::default()
    });
    assert_eq!(strict, spec);
}
