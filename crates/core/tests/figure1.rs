//! Paper-fidelity tests on the exact Figure 1 document and Figure 4 query:
//! the relevance discussion of Section 2 ("The relevant functions here are
//! 1, 3, 4 and 10") must be reproduced by the engine.

use axml_core::{Engine, EngineConfig, Strategy, Typing};
use axml_gen::scenario::{figure1, figure4_query};
use axml_query::render_result;

fn invoked_services(stats: &axml_core::EngineStats) -> Vec<(String, usize)> {
    stats
        .invoked_by_service
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

/// All strategies must compute the same full result: In Delis, The Capital
/// (near the 2nd Av. Best Western), Mama (near the Madison Best Western,
/// whose rating arrives via getRating), and Bowling Green Cafe (in the
/// hotel returned by getHotels). Grease (1★), Jo (4★ via nested call) and
/// Penn Grill (wrong hotel name) never qualify.
fn expected_answers() -> Vec<Vec<String>> {
    let mut v = vec![
        vec!["In Delis".to_string(), "2nd Ave.".to_string()],
        vec!["The Capital".to_string(), "2nd Ave.".to_string()],
        vec!["Mama".to_string(), "Madison Av.".to_string()],
        vec!["Bowling Green Cafe".to_string(), "Broadway".to_string()],
    ];
    v.sort();
    v
}

fn run(config: EngineConfig) -> (Vec<Vec<String>>, axml_core::EngineStats) {
    let s = figure1();
    let mut doc = s.doc;
    let q = figure4_query();
    let engine = Engine::new(&s.registry, config).with_schema(&s.schema);
    let report = engine.evaluate(&mut doc, &q);
    let mut answers = render_result(&doc, &report.result);
    answers.sort();
    (answers, report.stats)
}

#[test]
fn naive_materializes_everything() {
    let (answers, stats) = run(EngineConfig::naive());
    assert_eq!(answers, expected_answers());
    // 10 original calls + Jo's nested getRating = 11
    assert_eq!(stats.calls_invoked, 11);
    assert!(!stats.truncated);
}

#[test]
fn typed_nfq_invokes_exactly_the_relevant_calls() {
    let (answers, stats) = run(EngineConfig::default());
    assert_eq!(answers, expected_answers());
    // the paper's relevant set {1, 3, 4, 10} plus Jo's nested getRating,
    // which becomes relevant when call 4's result arrives
    assert_eq!(stats.calls_invoked, 5, "{stats}");
    let by = invoked_services(&stats);
    assert_eq!(
        by,
        vec![
            ("getHotels".to_string(), 1),
            ("getNearbyRestos".to_string(), 2),
            ("getRating".to_string(), 2),
        ]
    );
    // no museum call is ever fired under typing
    assert!(!stats.invoked_by_service.contains_key("getNearbyMuseums"));
}

#[test]
fn untyped_nfq_also_fires_type_prunable_calls() {
    let (answers, stats) = run(EngineConfig::nfq_plain());
    assert_eq!(answers, expected_answers());
    // more than the typed 5 (museum calls are position-plausible), but
    // never the Pennsylvania calls (extensional name mismatch)
    assert!(stats.calls_invoked > 5);
    let penn_restos_invoked = stats
        .invoked_by_service
        .get("getNearbyRestos")
        .copied()
        .unwrap_or(0);
    assert_eq!(penn_restos_invoked, 2, "Penn St. must not be fetched");
}

#[test]
fn lpq_prunes_nothing_on_figure1_but_stays_correct() {
    // every Figure 1 call sits on a query path, so LPQ ≈ naive here
    let (answers, stats) = run(EngineConfig::lpq());
    assert_eq!(answers, expected_answers());
    assert_eq!(stats.calls_invoked, 11);
}

#[test]
fn top_down_is_correct_but_restarts_a_lot() {
    let (answers, stats) = run(EngineConfig::top_down());
    assert_eq!(answers, expected_answers());
    // one invocation per round, by construction
    assert_eq!(stats.rounds, stats.calls_invoked);
}

#[test]
fn all_strategy_combinations_agree() {
    let mut reference: Option<Vec<Vec<String>>> = None;
    for strategy in [
        Strategy::Naive,
        Strategy::TopDown,
        Strategy::Lpq,
        Strategy::Nfq,
    ] {
        for typing in [Typing::None, Typing::Lenient, Typing::Exact] {
            for use_fguide in [false, true] {
                for push in [false, true] {
                    for parallel in [false, true] {
                        for layering in [false, true] {
                            let config = EngineConfig {
                                strategy,
                                typing,
                                use_fguide,
                                push_queries: push,
                                parallel,
                                layering,
                                ..EngineConfig::default()
                            };
                            let (answers, stats) = run(config);
                            assert!(!stats.truncated);
                            match &reference {
                                None => reference = Some(answers),
                                Some(r) => assert_eq!(
                                    &answers, r,
                                    "{strategy:?}/{typing:?}/fg={use_fguide}/push={push}/par={parallel}/lay={layering}"
                                ),
                            }
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn typed_lazy_beats_naive_on_every_metric() {
    let (_, lazy) = run(EngineConfig::default());
    let (_, naive) = run(EngineConfig::naive());
    assert!(lazy.calls_invoked < naive.calls_invoked);
    assert!(lazy.bytes_transferred <= naive.bytes_transferred);
}

#[test]
fn push_reduces_bytes() {
    let with_push = run(EngineConfig {
        push_queries: true,
        ..EngineConfig::default()
    });
    let without_push = run(EngineConfig {
        push_queries: false,
        ..EngineConfig::default()
    });
    assert_eq!(with_push.0, without_push.0);
    assert!(
        with_push.1.bytes_transferred < without_push.1.bytes_transferred,
        "push: {} vs plain: {}",
        with_push.1.bytes_transferred,
        without_push.1.bytes_transferred
    );
    assert!(with_push.1.pushed_calls > 0);
}

#[test]
fn budget_truncation_is_reported() {
    let s = figure1();
    let mut doc = s.doc;
    let q = figure4_query();
    let engine = Engine::new(
        &s.registry,
        EngineConfig {
            max_invocations: 2,
            ..EngineConfig::naive()
        },
    );
    let report = engine.evaluate(&mut doc, &q);
    assert!(report.stats.truncated);
    assert_eq!(report.stats.calls_invoked, 2);
}

#[test]
fn unknown_services_are_skipped_not_fatal() {
    let s = figure1();
    let mut doc = s.doc;
    // add a call to a service nobody registered
    let root = doc.root();
    doc.add_call(root, "getGossip");
    let q = figure4_query();
    let report = Engine::new(&s.registry, EngineConfig::naive()).evaluate(&mut doc, &q);
    assert!(report.stats.skipped_unknown >= 1);
    let mut answers = render_result(&doc, &report.result);
    answers.sort();
    assert_eq!(answers, expected_answers());
}

#[test]
fn incremental_detection_skips_and_agrees() {
    let (answers, stats) = run(EngineConfig {
        incremental_detection: true,
        ..EngineConfig::nfq_plain()
    });
    assert_eq!(answers, expected_answers());
    assert!(stats.nfq_evals_skipped > 0, "{stats}");
    // and with the full lazy stack on top
    let (answers2, _) = run(EngineConfig {
        incremental_detection: true,
        ..EngineConfig::default()
    });
    assert_eq!(answers2, expected_answers());
}

#[test]
fn completed_document_retrieves_no_more_calls() {
    // Proposition 2: when NFQA terminates, the document is complete for
    // the query — re-running every NFQ on the final document must retrieve
    // nothing
    use axml_core::build_nfqs;
    let s = figure1();
    let mut doc = s.doc;
    let q = figure4_query();
    let report = Engine::new(&s.registry, EngineConfig::nfq_plain()).evaluate(&mut doc, &q);
    assert!(!report.stats.truncated);
    for nfq in build_nfqs(&q) {
        let retrieved = axml_query::eval(&nfq.pattern, &doc).bindings_of(nfq.output);
        assert!(
            retrieved.is_empty(),
            "NFQ of {:?} still retrieves {:?} after completion",
            nfq.focus,
            retrieved
        );
    }
}
