//! Construction of the call-finding queries: LPQs (Section 3.1) and NFQs
//! (Section 3.2, Figure 5).
//!
//! For a query `q` and each of its nodes `v`:
//!
//! * the **LPQ** of `v` is the linear root-to-`parent(v)` path followed by
//!   a star-labeled function node reached through `v`'s edge — it retrieves
//!   every call sitting at a position where `v`-matching data could appear;
//! * the **NFQ** of `v` keeps, in addition, all the *filtering conditions*
//!   of `q` outside `v`'s subtree, each condition node `u` relaxed into
//!   `OR(u, ())` because a function call could still produce the data that
//!   satisfies it (Figure 5). Nodes on the root-to-output path keep only
//!   their data branch (Fig. 5 step 11's simplification).
//!
//! Proposition 1: with unconstrained output types, the NFQs retrieve
//! exactly the relevant calls.

use axml_query::{EdgeKind, FunMatch, LinearPath, PLabel, PNodeId, Pattern};

/// A node-focused query, with the bookkeeping needed for typing refinement
/// (Section 5) and the influence analysis (Section 4.2).
#[derive(Clone, Debug)]
pub struct Nfq {
    /// The query node `v` this NFQ is focused on (id in the original query).
    pub focus: PNodeId,
    /// The extended pattern to evaluate; its single result node is the
    /// function node standing in for `v`.
    pub pattern: Pattern,
    /// The output (function) node inside `pattern`.
    pub output: PNodeId,
    /// `q_v^lin`: the linear path from the root to `v` (exclusive).
    pub lin: LinearPath,
    /// The edge kind through which `v` hangs off its parent.
    pub via: EdgeKind,
    /// Function-branch nodes inside `pattern`, paired with the original
    /// query node whose position they guard (`v` itself for `output`).
    /// Used to refine `()` into concrete function lists (Section 5).
    pub fun_branches: Vec<(PNodeId, PNodeId)>,
}

/// Builds the NFQs of a query — one per query node (Figure 5).
///
/// ```
/// use axml_core::build_nfqs;
/// use axml_query::parse_query;
///
/// let q = parse_query("/hotels/hotel[rating=\"*****\"]/name").unwrap();
/// let nfqs = build_nfqs(&q);
/// assert_eq!(nfqs.len(), q.len());      // one per query node
/// // the name-position NFQ keeps the rating condition, relaxed with ()
/// let name_nfq = nfqs.iter().find(|n| n.lin.to_string() == "/hotels/hotel").unwrap();
/// assert!(axml_query::render(&name_nfq.pattern).contains("*()"));
/// ```
pub fn build_nfqs(q: &Pattern) -> Vec<Nfq> {
    q.node_ids().map(|v| build_nfq(q, v)).collect()
}

/// Builds the NFQ focused on query node `v`.
pub fn build_nfq(q: &Pattern, v: PNodeId) -> Nfq {
    // root-to-v chain in the original query
    let mut chain = Vec::new();
    let mut cur = Some(v);
    while let Some(n) = cur {
        chain.push(n);
        cur = q.parent(n);
    }
    chain.reverse();

    let mut pattern = Pattern::new();
    let mut fun_branches = Vec::new();
    let mut output = None;

    // copy the path nodes (plain) and their side subtrees (OR-wrapped)
    let mut parent_in_p: Option<PNodeId> = None;
    for (i, &u) in chain.iter().enumerate() {
        if u == v {
            // the focus: a star function node in place of v, subtree dropped
            let edge = node_edge(q, u);
            let f = match parent_in_p {
                None => pattern.set_root(PLabel::Fun(FunMatch::Any)),
                Some(p) => pattern.add_child(p, edge, PLabel::Fun(FunMatch::Any)),
            };
            pattern.mark_result(f);
            fun_branches.push((f, v));
            output = Some(f);
            break;
        }
        let label = q.node(u).label.clone();
        let edge = node_edge(q, u);
        let copied = match parent_in_p {
            None => pattern.set_root(label),
            Some(p) => pattern.add_child(p, edge, label),
        };
        // side branches: every child of u except the chain continuation
        let next_on_chain = chain[i + 1];
        for &c in &q.node(u).children {
            if c != next_on_chain {
                copy_or_wrapped(q, c, &mut pattern, copied, &mut fun_branches);
            }
        }
        parent_in_p = Some(copied);
    }

    let output = output.expect("chain always ends at v");
    Nfq {
        focus: v,
        pattern,
        output,
        lin: LinearPath::to_node(q, v, false),
        via: node_edge(q, v),
        fun_branches,
    }
}

fn node_edge(q: &Pattern, u: PNodeId) -> EdgeKind {
    if q.parent(u).is_none() {
        EdgeKind::Child
    } else {
        q.node(u).edge
    }
}

/// Copies the subtree of `u` under `parent`, wrapping every node in
/// `OR(node, ())` (Figure 5 step 4) and recording the `()` branches.
fn copy_or_wrapped(
    q: &Pattern,
    u: PNodeId,
    into: &mut Pattern,
    parent: PNodeId,
    fun_branches: &mut Vec<(PNodeId, PNodeId)>,
) {
    let or = into.add_child(parent, node_edge(q, u), PLabel::Or);
    let data = into.add_child(or, EdgeKind::Child, q.node(u).label.clone());
    let f = into.add_child(or, EdgeKind::Child, PLabel::Fun(FunMatch::Any));
    fun_branches.push((f, u));
    for &c in &q.node(u).children {
        copy_or_wrapped(q, c, into, data, fun_branches);
    }
}

/// Builds the deduplicated LPQ set of a query (Section 3.1): one linear
/// path query per node position, each ending in a star function output.
pub fn build_lpqs(q: &Pattern) -> Vec<Lpq> {
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    for v in q.node_ids() {
        let lin = LinearPath::to_node(q, v, false);
        let via = node_edge(q, v);
        let key = format!("{lin}#{via:?}");
        if seen.insert(key) {
            let pattern = lin.to_lpq(via);
            let output = pattern.result_nodes()[0];
            out.push(Lpq {
                focus: v,
                pattern,
                output,
                lin,
                via,
            });
        }
    }
    out
}

/// A linear path query: the relaxed, position-only variant of an NFQ.
#[derive(Clone, Debug)]
pub struct Lpq {
    /// A representative query node at this position.
    pub focus: PNodeId,
    /// The pattern: linear path ending in a `()` output.
    pub pattern: Pattern,
    /// The output (function) node inside `pattern`.
    pub output: PNodeId,
    /// The linear path (root to focus, exclusive).
    pub lin: LinearPath,
    /// Edge into the output function node.
    pub via: EdgeKind,
}

/// Relaxes an NFQ by dropping its value-join variables (the "XPath
/// approximation" of Section 6.1): every variable node becomes a wildcard,
/// so evaluation never needs join enumeration. Position and structural
/// conditions are kept.
pub fn relax_nfq_to_xpath(nfq: &Nfq) -> Nfq {
    let mut relaxed = nfq.clone();
    for id in relaxed.pattern.node_ids().collect::<Vec<_>>() {
        if matches!(relaxed.pattern.node(id).label, PLabel::Var(_)) {
            relaxed.pattern.set_label(id, PLabel::Wildcard);
        }
    }
    relaxed
}

#[cfg(test)]
mod tests {
    use super::*;
    use axml_query::{parse_query, render};
    use axml_xml::parse;

    fn fig4() -> Pattern {
        parse_query(
            "/hotel[name=\"Best Western\"][rating=\"*****\"]\
             /nearby//restaurant[name=$X][address=$Y][rating=\"*****\"] -> $X,$Y",
        )
        .unwrap()
    }

    #[test]
    fn one_nfq_per_query_node() {
        let q = fig4();
        let nfqs = build_nfqs(&q);
        assert_eq!(nfqs.len(), q.len());
    }

    #[test]
    fn nfq_path_nodes_are_plain_side_nodes_are_ored() {
        let q = fig4();
        // NFQ of the restaurant node: path hotel/nearby is plain, the
        // name/rating conditions of the hotel are OR'd
        let restaurant = q
            .node_ids()
            .find(|&i| matches!(&q.node(i).label, PLabel::Const(l) if l.as_str() == "restaurant"))
            .unwrap();
        let nfq = build_nfq(&q, restaurant);
        let s = render(&nfq.pattern);
        assert!(s.starts_with("/hotel"), "{s}");
        assert!(s.contains("(name"), "{s}");
        assert!(s.contains("*()"), "{s}");
        assert_eq!(nfq.lin.to_string(), "/hotel/nearby");
        assert_eq!(nfq.via, EdgeKind::Descendant);
        // output node is a function node marked as result
        assert!(matches!(
            nfq.pattern.node(nfq.output).label,
            PLabel::Fun(FunMatch::Any)
        ));
        assert!(nfq.pattern.node(nfq.output).is_result);
        nfq.pattern.check_integrity().unwrap();
    }

    #[test]
    fn nfq_of_root_is_root_function() {
        let q = fig4();
        let nfq = build_nfq(&q, q.root());
        assert_eq!(nfq.pattern.len(), 1);
        assert!(nfq.lin.is_empty());
    }

    #[test]
    fn nfq_retrieves_calls_that_could_contribute() {
        // Figure 1-like state: BW hotel with extensional 5-star rating and
        // an unexpanded getNearbyRestos; Penn hotel with a 2-star rating.
        let d = parse(
            "<hotel><name>Best Western</name><rating>*****</rating>\
              <nearby><axml:call service=\"getNearbyRestos\"/></nearby></hotel>",
        )
        .unwrap();
        let q = fig4();
        let restaurant = q
            .node_ids()
            .find(|&i| matches!(&q.node(i).label, PLabel::Const(l) if l.as_str() == "restaurant"))
            .unwrap();
        let nfq = build_nfq(&q, restaurant);
        let r = axml_query::eval(&nfq.pattern, &d);
        assert_eq!(r.len(), 1, "the getNearbyRestos call is relevant");
    }

    #[test]
    fn nfq_conditions_prune_hopeless_calls() {
        // rating is extensional and too low: the restaurants call cannot
        // contribute anymore (the paper's function 9 / hotel Pennsylvania)
        let d = parse(
            "<hotel><name>Pennsylvania</name><rating>**</rating>\
              <nearby><axml:call service=\"getNearbyRestos\"/></nearby></hotel>",
        )
        .unwrap();
        let q = fig4();
        let restaurant = q
            .node_ids()
            .find(|&i| matches!(&q.node(i).label, PLabel::Const(l) if l.as_str() == "restaurant"))
            .unwrap();
        let nfq = build_nfq(&q, restaurant);
        let r = axml_query::eval(&nfq.pattern, &d);
        assert!(r.is_empty(), "name and rating conditions both fail");
    }

    #[test]
    fn nfq_or_branch_accepts_pending_condition_calls() {
        // the rating is itself intensional: the restaurants call stays
        // relevant because getRating might return *****
        let d = parse(
            "<hotel><name>Best Western</name>\
              <rating><axml:call service=\"getRating\"/></rating>\
              <nearby><axml:call service=\"getNearbyRestos\"/></nearby></hotel>",
        )
        .unwrap();
        let q = fig4();
        let restaurant = q
            .node_ids()
            .find(|&i| matches!(&q.node(i).label, PLabel::Const(l) if l.as_str() == "restaurant"))
            .unwrap();
        let nfq = build_nfq(&q, restaurant);
        let r = axml_query::eval(&nfq.pattern, &d);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn lpqs_deduplicate_positions() {
        let q = fig4();
        let lpqs = build_lpqs(&q);
        // 13 nodes but name/address/rating of restaurant share prefixes
        // with their value children collapsing onto distinct paths:
        // /() , /hotel/() , /hotel/name/() , /hotel/rating/() ,
        // /hotel/nearby/() (child) … /hotel/nearby//() (desc) ,
        // /hotel/nearby//restaurant/() , …/name/() , …/address/() ,
        // …/rating/()
        let paths: Vec<String> = lpqs
            .iter()
            .map(|l| {
                let prefix = if l.lin.is_empty() {
                    String::new()
                } else {
                    l.lin.to_string()
                };
                format!(
                    "{prefix}{}",
                    if l.via == EdgeKind::Descendant {
                        "//()"
                    } else {
                        "/()"
                    }
                )
            })
            .collect();
        assert!(paths.contains(&"/()".to_string()), "{paths:?}");
        assert!(
            paths.contains(&"/hotel/nearby//()".to_string()),
            "{paths:?}"
        );
        assert!(
            paths.contains(&"/hotel/nearby//restaurant/rating/()".to_string()),
            "{paths:?}"
        );
        assert_eq!(paths.len(), 9, "{paths:?}");
    }

    #[test]
    fn lpq_is_a_superset_of_nfq() {
        // LPQs ignore conditions: they retrieve the hopeless call that the
        // NFQ above pruned
        let d = parse(
            "<hotel><name>Pennsylvania</name><rating>**</rating>\
              <nearby><axml:call service=\"getNearbyRestos\"/></nearby></hotel>",
        )
        .unwrap();
        let q = fig4();
        let lpqs = build_lpqs(&q);
        let mut found = false;
        for lpq in &lpqs {
            if !axml_query::eval(&lpq.pattern, &d).is_empty() {
                found = true;
            }
        }
        assert!(found, "LPQs retrieve by position only");
    }

    #[test]
    fn xpath_relaxation_drops_variables() {
        let q = fig4();
        let restaurant = q
            .node_ids()
            .find(|&i| matches!(&q.node(i).label, PLabel::Const(l) if l.as_str() == "restaurant"))
            .unwrap();
        let nfq = build_nfq(&q, restaurant);
        let relaxed = relax_nfq_to_xpath(&nfq);
        assert!(relaxed
            .pattern
            .node_ids()
            .all(|i| !matches!(relaxed.pattern.node(i).label, PLabel::Var(_))));
    }

    #[test]
    fn fun_branches_map_back_to_query_nodes() {
        let q = fig4();
        let restaurant = q
            .node_ids()
            .find(|&i| matches!(&q.node(i).label, PLabel::Const(l) if l.as_str() == "restaurant"))
            .unwrap();
        let nfq = build_nfq(&q, restaurant);
        // the output branch maps to the focus
        assert!(nfq
            .fun_branches
            .iter()
            .any(|&(f, u)| f == nfq.output && u == restaurant));
        // and the side branches map to name / "Best Western" / rating / "*****"
        assert!(nfq.fun_branches.len() >= 5);
        for &(f, u) in &nfq.fun_branches {
            assert!(matches!(nfq.pattern.node(f).label, PLabel::Fun(_)));
            assert!(u.index() < q.len());
        }
    }
}
