//! Type-based refinement of NFQs (Section 5).
//!
//! The star-labeled `()` alternatives of an NFQ accept *any* function call;
//! with signatures available, only the functions whose output type can
//! (after recursive expansion — *derived instances*) produce data matching
//! the guarded query subtree are kept. The refined NFQs retrieve exactly
//! the relevant calls. When invocations bring calls to previously unseen
//! functions into the document, the refinement is recomputed for the new
//! names only (the per-name verdicts are cached).

use crate::nfq::Nfq;
use axml_query::{EdgeKind, FunMatch, PLabel, PNodeId, Pattern};
use axml_schema::{SatMode, Satisfier, Schema};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Shared satisfiability-verdict store: (function name, guarded query
/// node) → satisfies? Verdicts depend only on the `(schema, query, mode)`
/// triple, never on a document, so a [`crate::CompiledQuery`] can carry
/// one across sessions and hand it to every run's refiner.
pub type SatVerdicts = Arc<Mutex<HashMap<(String, PNodeId), bool>>>;

/// Caching refinement engine for one `(schema, query)` pair.
pub struct TypeRefiner<'s, 'q> {
    schema: &'s Schema,
    query: &'q Pattern,
    mode: SatMode,
    /// (function name, guarded query node) → satisfies?
    cache: SatVerdicts,
    /// per query node: its subquery `sub_q_u` and incoming edge
    subqueries: HashMap<PNodeId, (Pattern, EdgeKind)>,
}

impl<'s, 'q> TypeRefiner<'s, 'q> {
    /// Creates a refiner with a private verdict cache.
    pub fn new(schema: &'s Schema, query: &'q Pattern, mode: SatMode) -> Self {
        Self::with_verdicts(schema, query, mode, SatVerdicts::default())
    }

    /// Creates a refiner backed by a shared verdict cache. The caller must
    /// key the cache by `(schema, query, mode)` — verdicts are only valid
    /// for the exact triple they were computed under.
    pub fn with_verdicts(
        schema: &'s Schema,
        query: &'q Pattern,
        mode: SatMode,
        verdicts: SatVerdicts,
    ) -> Self {
        TypeRefiner {
            schema,
            query,
            mode,
            cache: verdicts,
            subqueries: HashMap::new(),
        }
    }

    /// Does `fname` satisfy the subquery rooted at query node `u`
    /// (Definition 6), memoized?
    pub fn satisfies(&mut self, fname: &str, u: PNodeId) -> bool {
        if let Some(&b) = self
            .cache
            .lock()
            .expect("verdict cache poisoned")
            .get(&(fname.to_string(), u))
        {
            return b;
        }
        let (sub, via) = self.subquery(u);
        let b = Satisfier::new(self.schema, &sub, self.mode).function_satisfies(fname, via);
        self.cache
            .lock()
            .expect("verdict cache poisoned")
            .insert((fname.to_string(), u), b);
        b
    }

    fn subquery(&mut self, u: PNodeId) -> (Pattern, EdgeKind) {
        if let Some(entry) = self.subqueries.get(&u) {
            return entry.clone();
        }
        let sub = self.query.subtree(u);
        let via = if self.query.parent(u).is_none() {
            EdgeKind::Child
        } else {
            self.query.node(u).edge
        };
        self.subqueries.insert(u, (sub.clone(), via));
        (sub, via)
    }

    /// Refines an NFQ against the currently known function names:
    /// every `()` branch becomes the concrete list of satisfying names.
    ///
    /// Returns `None` when no function can satisfy the *output* position —
    /// the NFQ can never retrieve a relevant call and is dropped entirely.
    /// Side branches with an empty list lose their function alternative
    /// (only extensional data can satisfy that condition).
    pub fn refine(&mut self, nfq: &Nfq, known_functions: &[String]) -> Option<Nfq> {
        let mut refined = nfq.clone();
        let mut dead_side_branches: Vec<PNodeId> = Vec::new();
        for &(fnode, u) in &nfq.fun_branches {
            let allowed: Vec<axml_xml::Label> = known_functions
                .iter()
                .filter(|f| self.satisfies(f, u))
                .map(axml_xml::Label::new)
                .collect();
            if allowed.is_empty() {
                if fnode == nfq.output {
                    return None;
                }
                dead_side_branches.push(fnode);
            } else {
                refined
                    .pattern
                    .set_label(fnode, PLabel::Fun(FunMatch::OneOf(allowed)));
            }
        }
        for fnode in dead_side_branches {
            refined.pattern.remove_subtree(fnode);
        }
        Some(refined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfq::build_nfq;
    use axml_query::parse_query;
    use axml_schema::figure2_schema;
    use axml_xml::parse;

    fn fig4() -> Pattern {
        parse_query(
            "/hotel[name=\"Best Western\"][rating=\"*****\"]\
             /nearby//restaurant[name=$X][address=$Y][rating=\"*****\"] -> $X,$Y",
        )
        .unwrap()
    }

    fn node_named(q: &Pattern, name: &str) -> PNodeId {
        q.node_ids()
            .find(|&i| matches!(&q.node(i).label, PLabel::Const(l) if l.as_str() == name))
            .unwrap()
    }

    fn all_services() -> Vec<String> {
        [
            "getHotels",
            "getRating",
            "getNearbyRestos",
            "getNearbyMuseums",
        ]
        .into_iter()
        .map(String::from)
        .collect()
    }

    #[test]
    fn refined_restaurant_nfq_excludes_museum_service() {
        // the paper's §5 example: discard getNearbyMuseums retrieved by the
        // NFQ of Figure 6(b)
        let q = fig4();
        let s = figure2_schema();
        for mode in [SatMode::Exact, SatMode::Lenient] {
            let mut refiner = TypeRefiner::new(&s, &q, mode);
            let nfq = build_nfq(&q, node_named(&q, "restaurant"));
            let refined = refiner.refine(&nfq, &all_services()).unwrap();
            match &refined.pattern.node(refined.output).label {
                PLabel::Fun(FunMatch::OneOf(names)) => {
                    let names: Vec<&str> = names.iter().map(|l| l.as_str()).collect();
                    assert!(names.contains(&"getNearbyRestos"), "{names:?}");
                    assert!(!names.contains(&"getNearbyMuseums"), "{names:?}");
                    assert!(!names.contains(&"getRating"), "{names:?}");
                    // getHotels outputs hotels, not restaurants, and the
                    // call sits below nearby: a hotel cannot appear there…
                    // but satisfiability is positional-type only: hotel
                    // trees *contain* restaurants, and the restaurant node
                    // is reached by a descendant edge, so getHotels remains
                    assert!(names.contains(&"getHotels"), "{names:?}");
                }
                other => panic!("expected refined list, got {other:?}"),
            }
        }
    }

    #[test]
    fn refined_nfq_changes_evaluation() {
        let q = fig4();
        let s = figure2_schema();
        let d = parse(
            "<hotel><name>Best Western</name><rating>*****</rating>\
              <nearby><axml:call service=\"getNearbyRestos\"/>\
                      <axml:call service=\"getNearbyMuseums\"/></nearby></hotel>",
        )
        .unwrap();
        let nfq = build_nfq(&q, node_named(&q, "restaurant"));
        // unrefined: both calls retrieved
        assert_eq!(axml_query::eval(&nfq.pattern, &d).len(), 2);
        // refined: only getNearbyRestos
        let mut refiner = TypeRefiner::new(&s, &q, SatMode::Exact);
        let refined = refiner
            .refine(&nfq, &["getNearbyRestos".into(), "getNearbyMuseums".into()])
            .unwrap();
        let r = axml_query::eval(&refined.pattern, &d);
        assert_eq!(r.len(), 1);
        let call = r.bindings_of(refined.output)[0];
        assert_eq!(d.call_info(call).unwrap().1.as_str(), "getNearbyRestos");
    }

    #[test]
    fn side_branches_refine_too() {
        // the getRating call numbered 6 in Figure 1: retrieved by the
        // rating-value NFQ; a side condition on nearby can only be
        // satisfied by restaurant data — getNearbyMuseums' () branch on
        // the restaurant condition disappears
        let q = fig4();
        let s = figure2_schema();
        let mut refiner = TypeRefiner::new(&s, &q, SatMode::Exact);
        let rating_value = node_named(&q, "*****"); // first occurrence: hotel rating value
        let nfq = build_nfq(&q, rating_value);
        let refined = refiner.refine(&nfq, &all_services()).unwrap();
        // the output must list getRating (it can produce the value)
        match &refined.pattern.node(refined.output).label {
            PLabel::Fun(FunMatch::OneOf(names)) => {
                assert!(names.iter().any(|l| l.as_str() == "getRating"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nfq_with_unsatisfiable_output_is_dropped() {
        // a query over an element no function can produce: a bare leaf
        // would still be satisfiable by a data value spelled "pool", so use
        // a pattern with children — data values have none
        let q = parse_query("/hotel/pool[depth=\"3\"]").unwrap();
        let s = figure2_schema();
        let mut refiner = TypeRefiner::new(&s, &q, SatMode::Exact);
        let pool = node_named(&q, "pool");
        let nfq = build_nfq(&q, pool);
        // none of the four services can produce a pool element
        assert!(refiner.refine(&nfq, &all_services()).is_none());
    }

    #[test]
    fn unknown_functions_are_kept() {
        let q = fig4();
        let s = figure2_schema();
        let mut refiner = TypeRefiner::new(&s, &q, SatMode::Exact);
        let nfq = build_nfq(&q, node_named(&q, "restaurant"));
        let refined = refiner
            .refine(&nfq, &["mystery".into()])
            .expect("unknown functions are never pruned");
        match &refined.pattern.node(refined.output).label {
            PLabel::Fun(FunMatch::OneOf(names)) => {
                assert_eq!(names.len(), 1);
                assert_eq!(names[0].as_str(), "mystery");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn verdicts_are_cached() {
        let q = fig4();
        let s = figure2_schema();
        let mut refiner = TypeRefiner::new(&s, &q, SatMode::Exact);
        let u = node_named(&q, "restaurant");
        assert!(refiner.satisfies("getNearbyRestos", u));
        assert!(refiner.satisfies("getNearbyRestos", u)); // hits the cache
        assert_eq!(refiner.cache.lock().unwrap().len(), 1);
    }

    #[test]
    fn shared_verdicts_survive_refiner_teardown() {
        let q = fig4();
        let s = figure2_schema();
        let verdicts = SatVerdicts::default();
        let u = node_named(&q, "restaurant");
        {
            let mut refiner =
                TypeRefiner::with_verdicts(&s, &q, SatMode::Exact, Arc::clone(&verdicts));
            assert!(refiner.satisfies("getNearbyRestos", u));
        }
        assert_eq!(verdicts.lock().unwrap().len(), 1);
        // a second refiner sees the verdict without recomputation
        let mut refiner2 = TypeRefiner::with_verdicts(&s, &q, SatMode::Exact, verdicts);
        assert!(refiner2.satisfies("getNearbyRestos", u));
    }
}
