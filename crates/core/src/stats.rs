//! Execution statistics — the quantities the paper's evaluation reports:
//! calls invoked, data transferred, simulated network time, relevance
//! detection effort, and CPU time.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// Everything measured during one engine run.
#[derive(Clone, Debug, Default)]
pub struct EngineStats {
    /// Service calls actually invoked.
    pub calls_invoked: usize,
    /// Result bytes moved over the (simulated) network.
    pub bytes_transferred: usize,
    /// Simulated wall-clock spent on service calls — sequential calls sum,
    /// parallel batches contribute their maximum (Section 4.4).
    pub sim_time_ms: f64,
    /// Number of call-finding query evaluations (NFQ/LPQ runs, or F-guide
    /// lookups).
    pub relevance_evals: usize,
    /// CPU time spent detecting relevant calls.
    pub relevance_cpu: Duration,
    /// Iterations of the invoke/re-evaluate loop.
    pub rounds: usize,
    /// Calls whose invocation carried a pushed query.
    pub pushed_calls: usize,
    /// Calls skipped because their service is unknown to the registry.
    pub skipped_unknown: usize,
    /// Calls that exhausted their retry budget and failed permanently;
    /// their subtrees are missing from the (partial) answer.
    pub failed_calls: usize,
    /// Calls refused outright by an open per-service circuit breaker.
    pub breaker_skips: usize,
    /// Service attempts made across all calls, successful or not
    /// (≥ `calls_invoked + failed_calls`; the excess is retries).
    pub call_attempts: usize,
    /// Call-finding queries eliminated by containment pruning (§4.1).
    pub queries_pruned: usize,
    /// Rounds where all relevant calls were fired speculatively in one
    /// batch (§4.4's "just in case" mode).
    pub speculative_rounds: usize,
    /// Service results that violated their declared output type (only
    /// counted when `enforce_output_types` is on).
    pub type_violations: usize,
    /// NFQ evaluations skipped by incremental detection (cached candidate
    /// sets reused because no splice touched the NFQ's region).
    pub nfq_evals_skipped: usize,
    /// NFQ re-evaluations served by the delta-scoped path: the cached
    /// positional candidate set was updated from the splice log and the
    /// call-id watermark instead of re-walking the whole document. Counted
    /// inside `relevance_evals` (a delta evaluation is still an
    /// evaluation).
    pub nfq_delta_evals: usize,
    /// Incremental-detection degradations: a cached NFQ state predated
    /// the splice log's floor (ring overflow evicted its history), so the
    /// evaluator fell back to a sound full re-evaluation. Nonzero means
    /// `splice_log_capacity` is too small for the document's churn.
    pub splice_degradations: usize,
    /// Relevant calls answered from the cross-query call-result cache at
    /// zero network cost (reconstructed §7). Not counted in
    /// `calls_invoked` — a hit performs no service invocation.
    pub cache_hits: usize,
    /// Cache probes that found nothing (the call proceeded to a real
    /// invocation).
    pub cache_misses: usize,
    /// Cache probes that found an entry past its validity window; the
    /// call fell through to the normal invoke/retry/breaker path.
    pub cache_stale: usize,
    /// True when the invocation budget was exhausted before completeness.
    pub truncated: bool,
    /// True when truncation was caused by the end-to-end deadline rather
    /// than the invocation budget (`truncated` is also set).
    pub deadline_exceeded: bool,
    /// Candidate calls shed by the admission gate (in-flight or latency
    /// limit); like breaker skips, their subtrees are missing from the
    /// (partial) answer.
    pub shed_skips: usize,
    /// Hedge legs fired inside parallel batches (at most one per call).
    pub hedged_calls: usize,
    /// Hedged calls whose duplicate leg finished first and won the race.
    pub hedge_wins: usize,
    /// Simulated ms of work thrown away by cancelled hedge losers — the
    /// losing leg's cost up to the winner's completion instant. Never
    /// charged to `sim_time_ms`; tracked to bound hedging waste.
    pub hedge_wasted_ms: f64,
    /// Per-service invocation counts.
    pub invoked_by_service: BTreeMap<String, usize>,
    /// CPU time of the final snapshot evaluation.
    pub final_eval_cpu: Duration,
    /// Total CPU time of the whole run.
    pub total_cpu: Duration,
    /// F-guide size (nodes), when one was used.
    pub guide_nodes: usize,
    /// Document size (live nodes) when evaluation finished.
    pub final_doc_size: usize,
}

impl EngineStats {
    /// Simulated time plus measured CPU time, in milliseconds — the
    /// "total query evaluation time" of the paper's experiments.
    pub fn total_time_ms(&self) -> f64 {
        self.sim_time_ms + self.total_cpu.as_secs_f64() * 1e3
    }

    /// The fraction of cache probes answered by a valid entry, or 0.0
    /// when no cache was consulted. Note that the denominator counts
    /// **all** probes — hits, misses *and* stale (expired) entries — so a
    /// probe that found an entry past its validity window drags the rate
    /// down exactly like a miss.
    pub fn cache_hit_rate(&self) -> f64 {
        let probes = self.cache_hits + self.cache_misses + self.cache_stale;
        if probes == 0 {
            0.0
        } else {
            self.cache_hits as f64 / probes as f64
        }
    }

    /// Whether the run resolved every relevant call: no permanent
    /// failures, no breaker refusals, no unknown services, no shed calls,
    /// and no budget or deadline truncation. This is the engine's
    /// answer-completeness criterion —
    /// when it holds, the result is the full answer; otherwise the answer
    /// is partial (missing exactly the subtrees below unresolved calls).
    pub fn is_complete(&self) -> bool {
        self.failed_calls == 0
            && self.breaker_skips == 0
            && self.skipped_unknown == 0
            && self.shed_skips == 0
            && !self.truncated
    }

    /// Mirrors the counters into the observability crate's
    /// [`axml_obs::StatsView`], the dependency-free form the trace-oracle
    /// accounting checks ([`axml_obs::check_stats`]) compare a trace
    /// against.
    pub fn view(&self) -> axml_obs::StatsView {
        axml_obs::StatsView {
            calls_invoked: self.calls_invoked,
            call_attempts: self.call_attempts,
            failed_calls: self.failed_calls,
            breaker_skips: self.breaker_skips,
            skipped_unknown: self.skipped_unknown,
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            cache_stale: self.cache_stale,
            pushed_calls: self.pushed_calls,
            bytes_transferred: self.bytes_transferred,
            sim_time_ms: self.sim_time_ms,
            truncated: self.truncated,
            deadline_exceeded: self.deadline_exceeded,
            shed_skips: self.shed_skips,
            hedged_calls: self.hedged_calls,
            hedge_wins: self.hedge_wins,
            complete: self.is_complete(),
            invoked_by_service: self.invoked_by_service.clone(),
            // the engine doesn't know the cache's shard layout; harnesses
            // that hold the cache fill this in (see CallCache::shard_stats)
            cache_shards: Vec::new(),
        }
    }
}

/// The pluralization suffix for `n` of something: empty for exactly one,
/// `suffix` otherwise. Shared by the stats display and the CLI's trace
/// printer so count lines always agree on grammar.
pub fn plural(n: usize, suffix: &'static str) -> &'static str {
    if n == 1 {
        ""
    } else {
        suffix
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "calls: {} ({} pushed, {} skipped){}",
            self.calls_invoked,
            self.pushed_calls,
            self.skipped_unknown,
            if self.deadline_exceeded {
                " [DEADLINE]"
            } else if self.truncated {
                " [TRUNCATED]"
            } else if !self.is_complete() {
                " [PARTIAL]"
            } else {
                ""
            }
        )?;
        if self.failed_calls > 0 || self.breaker_skips > 0 {
            writeln!(
                f,
                "  {} calls failed permanently, {} refused by open breaker",
                self.failed_calls, self.breaker_skips
            )?;
        }
        if self.shed_skips > 0 {
            writeln!(
                f,
                "  {} call{} shed by the admission gate [SHED]",
                self.shed_skips,
                plural(self.shed_skips, "s")
            )?;
        }
        if self.hedged_calls > 0 {
            writeln!(
                f,
                "  {} hedge leg{} fired, {} win{}, {:.1} ms wasted [HEDGED]",
                self.hedged_calls,
                plural(self.hedged_calls, "s"),
                self.hedge_wins,
                plural(self.hedge_wins, "s"),
                self.hedge_wasted_ms
            )?;
        }
        let retries = self
            .call_attempts
            .saturating_sub(self.calls_invoked + self.failed_calls);
        if retries > 0 {
            writeln!(f, "  {retries} retry attempts absorbed")?;
        }
        writeln!(f, "bytes transferred: {}", self.bytes_transferred)?;
        writeln!(
            f,
            "time: {:.1} ms simulated network + {:.1} ms cpu = {:.1} ms",
            self.sim_time_ms,
            self.total_cpu.as_secs_f64() * 1e3,
            self.total_time_ms()
        )?;
        writeln!(
            f,
            "relevance: {} evaluations over {} rounds ({:.1} ms cpu)",
            self.relevance_evals,
            self.rounds,
            self.relevance_cpu.as_secs_f64() * 1e3
        )?;
        if self.nfq_evals_skipped > 0 {
            writeln!(
                f,
                "  {} evaluations skipped (incremental)",
                self.nfq_evals_skipped
            )?;
        }
        if self.nfq_delta_evals > 0 {
            writeln!(
                f,
                "  {} evaluations delta-scoped (incremental)",
                self.nfq_delta_evals
            )?;
        }
        if self.splice_degradations > 0 {
            writeln!(
                f,
                "  {} degraded to full re-evaluation (splice log overflow)",
                self.splice_degradations
            )?;
        }
        if self.cache_hits + self.cache_misses + self.cache_stale > 0 {
            writeln!(
                f,
                "call cache: {} hit{}, {} miss{}, {} expired ({:.0}% hit rate)",
                self.cache_hits,
                plural(self.cache_hits, "s"),
                self.cache_misses,
                plural(self.cache_misses, "es"),
                self.cache_stale,
                self.cache_hit_rate() * 100.0
            )?;
        }
        if self.queries_pruned > 0 {
            writeln!(
                f,
                "  {} call-finding queries pruned (containment)",
                self.queries_pruned
            )?;
        }
        if self.speculative_rounds > 0 {
            writeln!(f, "  {} speculative rounds", self.speculative_rounds)?;
        }
        if self.type_violations > 0 {
            writeln!(f, "  {} output-type violations", self.type_violations)?;
        }
        for (svc, n) in &self.invoked_by_service {
            writeln!(f, "  {svc}: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_time_combines_sim_and_cpu() {
        let s = EngineStats {
            sim_time_ms: 100.0,
            total_cpu: Duration::from_millis(50),
            ..Default::default()
        };
        assert!((s.total_time_ms() - 150.0).abs() < 1e-6);
    }

    #[test]
    fn display_renders() {
        let mut s = EngineStats::default();
        s.invoked_by_service.insert("getRating".into(), 3);
        s.truncated = true;
        s.queries_pruned = 4;
        s.speculative_rounds = 2;
        let out = s.to_string();
        assert!(out.contains("getRating: 3"));
        assert!(out.contains("TRUNCATED"));
        assert!(out.contains("4 call-finding queries pruned"));
        assert!(out.contains("2 speculative rounds"));
        // zero-valued extras stay silent
        let quiet = EngineStats::default().to_string();
        assert!(!quiet.contains("speculative"));
        assert!(!quiet.contains("violations"));
        assert!(!quiet.contains("call cache"));
        assert!(!quiet.contains("SHED"));
        assert!(!quiet.contains("HEDGED"));
        assert!(!quiet.contains("DEADLINE"));
    }

    #[test]
    fn deadline_hedge_shed_render() {
        let s = EngineStats {
            truncated: true,
            deadline_exceeded: true,
            shed_skips: 1,
            hedged_calls: 2,
            hedge_wins: 1,
            hedge_wasted_ms: 12.5,
            ..Default::default()
        };
        let out = s.to_string();
        assert!(out.contains("[DEADLINE]"), "{out}");
        assert!(
            out.contains("1 call shed by the admission gate [SHED]"),
            "{out}"
        );
        assert!(
            out.contains("2 hedge legs fired, 1 win, 12.5 ms wasted [HEDGED]"),
            "{out}"
        );
        assert!(!s.is_complete());
        // shed alone degrades completeness too
        let shed_only = EngineStats {
            shed_skips: 3,
            ..Default::default()
        };
        assert!(!shed_only.is_complete());
        assert!(shed_only.to_string().contains("3 calls shed"));
    }

    #[test]
    fn plural_helper() {
        assert_eq!(plural(0, "s"), "s");
        assert_eq!(plural(1, "s"), "");
        assert_eq!(plural(2, "es"), "es");
    }

    #[test]
    fn cache_counters_render_and_rate() {
        let s = EngineStats {
            cache_hits: 3,
            cache_misses: 1,
            cache_stale: 0,
            ..Default::default()
        };
        assert!((s.cache_hit_rate() - 0.75).abs() < 1e-9);
        let out = s.to_string();
        assert!(out.contains("call cache: 3 hits, 1 miss, 0 expired"));
        assert!(out.contains("75% hit rate"));
        assert_eq!(EngineStats::default().cache_hit_rate(), 0.0);
    }
}
