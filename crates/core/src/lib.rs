#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # axml-core — Lazy Query Evaluation for Active XML
//!
//! The central contribution of *Lazy Query Evaluation for Active XML*
//! (Abiteboul, Benjelloun, Cautis, Manolescu, Milo, Preda — SIGMOD 2004):
//! given an AXML document (XML with embedded Web-service calls) and a
//! tree-pattern query, invoke **only the calls whose results may
//! contribute to the answer**, in an order that never fires a call that
//! has already become irrelevant, then evaluate the query on the completed
//! document.
//!
//! * [`nfq`] — LPQ and NFQ construction (Sections 3.1–3.2, Figure 5)
//! * [`influence`] — may-influence, layers, condition (✳) (Section 4)
//! * [`typed`] — type-based NFQ refinement (Section 5)
//! * [`fguide`] — the function-call guide (Section 6.2)
//! * [`engine`] — the NFQA rewriting loop and all strategy knobs
//!
//! ```no_run
//! use axml_core::{Engine, EngineConfig};
//! use axml_query::parse_query;
//! use axml_services::Registry;
//! use axml_xml::parse;
//!
//! let registry = Registry::new(); // register services here
//! let mut doc = parse("<hotels><axml:call service=\"getHotels\"/></hotels>").unwrap();
//! let q = parse_query("/hotels/hotel[rating=\"*****\"]/name").unwrap();
//! let report = Engine::new(&registry, EngineConfig::default()).evaluate(&mut doc, &q);
//! println!("{}", report.stats);
//! ```

pub mod containment;
pub mod engine;
pub mod fguide;
pub mod influence;
pub mod nfq;
pub mod plan;
pub mod scope;
pub mod stats;
pub mod typed;

pub use containment::{lpq_subsumes, nfq_subsumes, prune_subsumed_lpqs, prune_subsumed_nfqs};
pub use engine::{
    Engine, EngineConfig, EvalReport, HedgeConfig, ShedConfig, Speculation, Strategy, TraceEvent,
    Typing,
};
pub use fguide::{filter_candidates, FGuide};
pub use influence::{compute_layers, may_influence, Layers};
pub use nfq::{build_lpqs, build_nfq, build_nfqs, relax_nfq_to_xpath, Lpq, Nfq};
pub use plan::{plan_fingerprint, CompiledQuery};
pub use scope::QueryScope;
pub use stats::{plural, EngineStats};
pub use typed::{SatVerdicts, TypeRefiner};

/// The paper's first contribution as a one-shot API: "an algorithm that,
/// given a query q and a document d, finds all the function calls in d
/// that are relevant for q" (Section 2, *The results*, item 1).
///
/// Without a schema, this is exactly Proposition 1 (NFQ retrieval); with
/// one, the refined NFQs of Section 5 prune by output types too.
///
/// ```
/// use axml_core::relevant_calls;
/// use axml_query::parse_query;
/// use axml_xml::parse;
///
/// let doc = parse(
///     "<hotels><hotel><name>BW</name><rating>*</rating>\
///        <nearby><axml:call service=\"getNearbyRestos\"/></nearby></hotel>\
///      <hotel><name>BW</name><rating>*****</rating>\
///        <nearby><axml:call service=\"getNearbyRestos\"/></nearby></hotel></hotels>",
/// ).unwrap();
/// let q = parse_query("/hotels/hotel[rating=\"*****\"]/nearby//restaurant").unwrap();
/// // only the five-star hotel's call is relevant
/// assert_eq!(relevant_calls(&doc, &q, None, axml_schema::SatMode::Exact).len(), 1);
/// ```
pub fn relevant_calls(
    doc: &axml_xml::Document,
    query: &axml_query::Pattern,
    schema: Option<&axml_schema::Schema>,
    mode: axml_schema::SatMode,
) -> Vec<(axml_xml::NodeId, axml_xml::CallId, String)> {
    let nfqs = build_nfqs(query);
    let mut refiner = schema.map(|s| TypeRefiner::new(s, query, mode));
    let known: Vec<String> = {
        let mut v: Vec<String> = doc
            .calls()
            .into_iter()
            .filter_map(|c| doc.call_info(c).map(|(_, s)| s.to_string()))
            .collect();
        v.sort();
        v.dedup();
        v
    };
    let mut out: Vec<(axml_xml::NodeId, axml_xml::CallId, String)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for nfq in &nfqs {
        let effective = match refiner.as_mut() {
            Some(r) => match r.refine(nfq, &known) {
                Some(refined) => refined,
                None => continue,
            },
            None => nfq.clone(),
        };
        for node in axml_query::eval(&effective.pattern, doc).bindings_of(effective.output) {
            if let Some((id, svc)) = doc.call_info(node) {
                if seen.insert(id) {
                    out.push((node, id, svc.to_string()));
                }
            }
        }
    }
    out.sort_by(|a, b| doc.cmp_document_order(a.0, b.0));
    out
}
